#include "expr/expr.h"

#include <algorithm>
#include <sstream>

namespace gisql {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
    case ArithOp::kMod: return "%";
  }
  return "?";
}

CompareOp ReverseCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return CompareOp::kEq;
    case CompareOp::kNe: return CompareOp::kNe;
    case CompareOp::kLt: return CompareOp::kGt;
    case CompareOp::kLe: return CompareOp::kGe;
    case CompareOp::kGt: return CompareOp::kLt;
    case CompareOp::kGe: return CompareOp::kLe;
  }
  return op;
}

ExprPtr Expr::Clone() const {
  auto out = std::make_shared<Expr>(kind);
  out->type = type;
  out->column_index = column_index;
  out->column_name = column_name;
  out->literal = literal;
  out->compare_op = compare_op;
  out->arith_op = arith_op;
  out->logic_op = logic_op;
  out->negated = negated;
  out->has_else = has_else;
  out->func_name = func_name;
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  return out;
}

bool Expr::Equals(const Expr& other) const {
  if (kind != other.kind || type != other.type) return false;
  switch (kind) {
    case ExprKind::kColumn:
      if (column_index != other.column_index) return false;
      break;
    case ExprKind::kLiteral:
      if (literal.is_null() != other.literal.is_null()) return false;
      if (!literal.is_null() && literal != other.literal) return false;
      break;
    case ExprKind::kCompare:
      if (compare_op != other.compare_op) return false;
      break;
    case ExprKind::kArith:
      if (arith_op != other.arith_op) return false;
      break;
    case ExprKind::kLogic:
      if (logic_op != other.logic_op) return false;
      break;
    case ExprKind::kFunc:
      if (func_name != other.func_name) return false;
      break;
    default: break;
  }
  if (negated != other.negated || has_else != other.has_else) return false;
  if (children.size() != other.children.size()) return false;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

std::string Expr::ToString() const {
  std::ostringstream oss;
  switch (kind) {
    case ExprKind::kColumn:
      if (!column_name.empty()) {
        oss << column_name;
      } else {
        oss << "$" << column_index;
      }
      break;
    case ExprKind::kLiteral:
      oss << literal.ToString();
      break;
    case ExprKind::kCompare:
      oss << "(" << children[0]->ToString() << " "
          << CompareOpName(compare_op) << " " << children[1]->ToString()
          << ")";
      break;
    case ExprKind::kArith:
      oss << "(" << children[0]->ToString() << " " << ArithOpName(arith_op)
          << " " << children[1]->ToString() << ")";
      break;
    case ExprKind::kLogic:
      oss << "(" << children[0]->ToString()
          << (logic_op == LogicOp::kAnd ? " AND " : " OR ")
          << children[1]->ToString() << ")";
      break;
    case ExprKind::kNot:
      oss << "(NOT " << children[0]->ToString() << ")";
      break;
    case ExprKind::kIsNull:
      oss << "(" << children[0]->ToString() << " IS"
          << (negated ? " NOT" : "") << " NULL)";
      break;
    case ExprKind::kLike:
      oss << "(" << children[0]->ToString() << (negated ? " NOT" : "")
          << " LIKE " << children[1]->ToString() << ")";
      break;
    case ExprKind::kIn: {
      oss << "(" << children[0]->ToString() << (negated ? " NOT" : "")
          << " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) oss << ", ";
        oss << children[i]->ToString();
      }
      oss << "))";
      break;
    }
    case ExprKind::kCast:
      oss << "CAST(" << children[0]->ToString() << " AS " << TypeName(type)
          << ")";
      break;
    case ExprKind::kFunc: {
      oss << func_name << "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) oss << ", ";
        oss << children[i]->ToString();
      }
      oss << ")";
      break;
    }
    case ExprKind::kCase: {
      oss << "CASE";
      const size_t pairs = (children.size() - (has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        oss << " WHEN " << children[2 * i]->ToString() << " THEN "
            << children[2 * i + 1]->ToString();
      }
      if (has_else) oss << " ELSE " << children.back()->ToString();
      oss << " END";
      break;
    }
  }
  return oss.str();
}

void Expr::CollectColumns(std::vector<size_t>* out) const {
  if (kind == ExprKind::kColumn) {
    if (std::find(out->begin(), out->end(), column_index) == out->end()) {
      out->push_back(column_index);
    }
    return;
  }
  for (const auto& c : children) c->CollectColumns(out);
}

bool Expr::ColumnsWithin(size_t lo, size_t hi) const {
  if (kind == ExprKind::kColumn) {
    return column_index >= lo && column_index < hi;
  }
  for (const auto& c : children) {
    if (!c->ColumnsWithin(lo, hi)) return false;
  }
  return true;
}

ExprPtr MakeColumn(size_t index, TypeId type, std::string name) {
  auto e = std::make_shared<Expr>(ExprKind::kColumn);
  e->column_index = index;
  e->type = type;
  e->column_name = std::move(name);
  return e;
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_shared<Expr>(ExprKind::kLiteral);
  e->type = v.type();
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeCompare(CompareOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>(ExprKind::kCompare);
  e->compare_op = op;
  e->type = TypeId::kBool;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr MakeArith(ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>(ExprKind::kArith);
  e->arith_op = op;
  // Result type: double if either side double, else int64.
  e->type = (l->type == TypeId::kDouble || r->type == TypeId::kDouble)
                ? TypeId::kDouble
                : TypeId::kInt64;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr MakeLogic(LogicOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>(ExprKind::kLogic);
  e->logic_op = op;
  e->type = TypeId::kBool;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr MakeNot(ExprPtr c) {
  auto e = std::make_shared<Expr>(ExprKind::kNot);
  e->type = TypeId::kBool;
  e->children = {std::move(c)};
  return e;
}

ExprPtr MakeIsNull(ExprPtr c, bool negated) {
  auto e = std::make_shared<Expr>(ExprKind::kIsNull);
  e->type = TypeId::kBool;
  e->negated = negated;
  e->children = {std::move(c)};
  return e;
}

ExprPtr MakeCast(ExprPtr c, TypeId to) {
  auto e = std::make_shared<Expr>(ExprKind::kCast);
  e->type = to;
  e->children = {std::move(c)};
  return e;
}

ExprPtr ConjoinAll(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return MakeLiteral(Value::Bool(true));
  ExprPtr acc = std::move(conjuncts[0]);
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = MakeLogic(LogicOp::kAnd, std::move(acc), std::move(conjuncts[i]));
  }
  return acc;
}

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kLogic && e->logic_op == LogicOp::kAnd) {
    SplitConjuncts(e->children[0], out);
    SplitConjuncts(e->children[1], out);
    return;
  }
  out->push_back(e);
}

Result<ExprPtr> RemapColumns(const Expr& e,
                             const std::vector<size_t>& mapping) {
  if (e.kind == ExprKind::kColumn) {
    if (e.column_index >= mapping.size() ||
        mapping[e.column_index] == static_cast<size_t>(-1)) {
      return Status::Internal("column $", e.column_index,
                              " has no mapping during remap");
    }
    auto out = e.Clone();
    out->column_index = mapping[e.column_index];
    return out;
  }
  auto out = std::make_shared<Expr>(e);  // shallow copy of payloads
  out->children.clear();
  for (const auto& c : e.children) {
    GISQL_ASSIGN_OR_RETURN(ExprPtr nc, RemapColumns(*c, mapping));
    out->children.push_back(std::move(nc));
  }
  return out;
}

ExprPtr ShiftColumns(const Expr& e, size_t delta) {
  auto out = std::make_shared<Expr>(e);
  out->children.clear();
  if (e.kind == ExprKind::kColumn) {
    out->column_index += delta;
    return out;
  }
  for (const auto& c : e.children) {
    out->children.push_back(ShiftColumns(*c, delta));
  }
  return out;
}

}  // namespace gisql
