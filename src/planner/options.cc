#include "planner/options.h"

#include <cstdlib>
#include <string>

namespace gisql {

namespace {

/// Each parser overwrites `*out` only on a full, clean parse, so a
/// typo'd variable leaves the compiled-in default intact.
void EnvInt(const char* name, int* out) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end != nullptr && *end == '\0') *out = static_cast<int>(v);
}

void EnvInt64(const char* name, int64_t* out) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end != nullptr && *end == '\0') *out = static_cast<int64_t>(v);
}

void EnvUint64(const char* name, uint64_t* out) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end != nullptr && *end == '\0') *out = static_cast<uint64_t>(v);
}

void EnvDouble(const char* name, double* out) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end != nullptr && *end == '\0') *out = v;
}

void EnvBool(const char* name, bool* out) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return;
  const std::string v(text);
  if (v == "1" || v == "true" || v == "TRUE" || v == "on" || v == "ON" ||
      v == "yes" || v == "YES") {
    *out = true;
  } else if (v == "0" || v == "false" || v == "FALSE" || v == "off" ||
             v == "OFF" || v == "no" || v == "NO") {
    *out = false;
  }
}

}  // namespace

void PlannerOptions::ApplyEnv() {
  EnvBool("GISQL_ADMISSION_CONTROL", &admission_control);
  EnvInt("GISQL_MAX_CONCURRENT", &max_concurrent_queries);
  EnvInt("GISQL_ADMISSION_QUEUE", &admission_queue_limit);
  EnvDouble("GISQL_ADMISSION_WAIT_MS", &admission_max_wait_ms);
  EnvInt64("GISQL_QUERY_MEM_BYTES", &query_mem_bytes);
  EnvInt64("GISQL_MEDIATOR_MEM_BYTES", &mediator_mem_bytes);
  EnvBool("GISQL_CIRCUIT_BREAKER", &circuit_breaker);
  EnvInt("GISQL_BREAKER_FAILURES", &breaker_open_failures);
  EnvInt("GISQL_BREAKER_COOLDOWN", &breaker_cooldown_skips);
  EnvDouble("GISQL_BREAKER_PROBE_RATIO", &breaker_probe_ratio);
  EnvUint64("GISQL_BREAKER_SEED", &breaker_seed);
  EnvBool("GISQL_HEALTH_ROUTING", &health_aware_routing);
  EnvInt64("GISQL_CURSOR_CHUNK_ROWS", &cursor_chunk_rows);
  EnvDouble("GISQL_CURSOR_LEASE_MS", &cursor_lease_ms);
  EnvInt("GISQL_CURSOR_MAX_OPEN", &cursor_max_open);
  EnvInt("GISQL_TXN_MAX_ACTIVE", &txn_max_active);
  EnvInt("GISQL_TXN_MAX_RETRIES", &txn_max_prepare_retries);
  EnvBool("GISQL_TXN_GC", &txn_gc);
  EnvBool("GISQL_INDEX_RANGE_SCAN", &enable_index_range_scan);
  EnvBool("GISQL_INDEX_JOIN", &enable_index_join);
  EnvBool("GISQL_SLO_ENABLED", &slo_enabled);
  EnvDouble("GISQL_SLO_FAST_WINDOW_MS", &slo_fast_window_ms);
  EnvDouble("GISQL_SLO_SLOW_WINDOW_MS", &slo_slow_window_ms);
  EnvDouble("GISQL_SLO_BURN_ALERT", &slo_burn_alert);
  EnvBool("GISQL_FLIGHT_RECORDER", &flight_recorder);
  EnvInt("GISQL_FLIGHT_RING", &flight_ring);
  EnvInt("GISQL_FLIGHT_MAX_INCIDENTS", &flight_max_incidents);
  EnvDouble("GISQL_FLIGHT_COOLDOWN_MS", &flight_cooldown_ms);
  EnvInt("GISQL_FLIGHT_SHED_SPIKE", &flight_shed_spike);
  EnvDouble("GISQL_FLIGHT_SHED_WINDOW_MS", &flight_shed_window_ms);
  EnvInt("GISQL_TENANT_MAX_TRACKED", &tenant_max_tracked);
  EnvBool("GISQL_ADVISOR", &advisor_enabled);
  EnvDouble("GISQL_ADVISOR_INTERVAL_MS", &advisor_interval_ms);
  EnvDouble("GISQL_ADVISOR_WINDOW_MS", &advisor_window_ms);
  EnvInt("GISQL_ADVISOR_HOT_THRESHOLD", &advisor_hot_threshold);
  EnvInt("GISQL_ADVISOR_MAX_VIEWS", &advisor_max_views);
  EnvDouble("GISQL_ADVISOR_MIN_GAIN_MS", &advisor_min_gain_ms);
  EnvInt("GISQL_ADVISOR_COLD_TICKS", &advisor_cold_ticks);
  EnvInt("GISQL_ADVISOR_LOG", &advisor_log_capacity);
  EnvBool("GISQL_ADVISOR_MATERIALIZE", &advisor_materialize);
  EnvBool("GISQL_ADVISOR_PLACEMENT", &advisor_placement);
  EnvBool("GISQL_ADVISOR_TUNE", &advisor_tune);
  // The kill switch trumps everything above, including a programmatic
  // advisor_enabled=true: operators flip one variable to stop the
  // advisor from acting, whatever the embedding code asked for.
  bool kill = false;
  EnvBool("GISQL_ADVISOR_KILL", &kill);
  if (kill) advisor_enabled = false;
}

PlannerOptions PlannerOptions::FromEnv() {
  PlannerOptions o;
  o.ApplyEnv();
  return o;
}

}  // namespace gisql
