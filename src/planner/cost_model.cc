#include "planner/cost_model.h"

#include <algorithm>
#include <cmath>

namespace gisql {

namespace {
constexpr double kDefaultEqSelectivity = 0.05;
constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;
constexpr double kDefaultLikeSelectivity = 0.25;
}  // namespace

const ColumnStats* CostModel::TraceColumnStats(const PlanNode& node,
                                               size_t col) const {
  switch (node.kind) {
    case PlanKind::kSourceScan: {
      auto t = catalog_.GetTable(node.scan_global_name);
      if (!t.ok()) return nullptr;
      const TableStats& stats = (*t)->stats;
      return col < stats.columns.size() ? &stats.columns[col] : nullptr;
    }
    case PlanKind::kRemoteFragment: {
      if (node.fragment.has_aggregate) return nullptr;
      // Map an output column back to a base table column, through the
      // fragment's projection list if present.
      size_t table_col = col;
      if (!node.fragment.projections.empty()) {
        if (col >= node.fragment.projections.size()) return nullptr;
        const Expr* e = node.fragment.projections[col].get();
        while (e->kind == ExprKind::kCast) e = e->children[0].get();
        if (e->kind != ExprKind::kColumn) return nullptr;
        table_col = e->column_index;
      }
      auto t = catalog_.GetTable(node.scan_global_name.empty()
                                     ? node.fragment.table
                                     : node.scan_global_name);
      if (!t.ok()) return nullptr;
      const TableStats& stats = (*t)->stats;
      return table_col < stats.columns.size() ? &stats.columns[table_col]
                                              : nullptr;
    }
    case PlanKind::kFilter:
    case PlanKind::kSort:
    case PlanKind::kLimit:
    case PlanKind::kDistinct:
      return TraceColumnStats(*node.children[0], col);
    case PlanKind::kProject: {
      if (col >= node.projections.size()) return nullptr;
      const Expr* e = node.projections[col].get();
      while (e->kind == ExprKind::kCast) e = e->children[0].get();
      if (e->kind != ExprKind::kColumn) return nullptr;
      return TraceColumnStats(*node.children[0], e->column_index);
    }
    case PlanKind::kJoin: {
      const size_t lw = node.children[0]->output_schema->num_fields();
      if (col < lw) return TraceColumnStats(*node.children[0], col);
      return TraceColumnStats(*node.children[1], col - lw);
    }
    case PlanKind::kUnionAll:
      // Heterogeneous members; use the first as a representative.
      return node.children.empty()
                 ? nullptr
                 : TraceColumnStats(*node.children[0], col);
    case PlanKind::kValues:
    case PlanKind::kVirtualScan:  // live snapshots carry no statistics
    case PlanKind::kAggregate:
      return nullptr;
  }
  return nullptr;
}

int64_t CostModel::EstimateDistinct(const PlanNode& node, size_t col) const {
  const ColumnStats* cs = TraceColumnStats(node, col);
  return cs != nullptr ? cs->distinct_count : 0;
}

double CostModel::EstimateSelectivity(const Expr& pred,
                                      const PlanNode& input) const {
  // The recursive body composes estimates (NOT subtracts, OR adds);
  // clamp at every level so one out-of-range leaf cannot push a parent
  // outside [0, 1] — a negative selectivity would corrupt every
  // cardinality estimate above it.
  return std::clamp(EstimateSelectivityImpl(pred, input), 0.0, 1.0);
}

double CostModel::EstimateSelectivityImpl(const Expr& pred,
                                          const PlanNode& input) const {
  switch (pred.kind) {
    case ExprKind::kLiteral:
      if (pred.literal.is_null()) return 0.0;
      if (pred.type == TypeId::kBool) return pred.literal.AsBool() ? 1.0 : 0.0;
      return 1.0;
    case ExprKind::kLogic: {
      const double l = EstimateSelectivity(*pred.children[0], input);
      const double r = EstimateSelectivity(*pred.children[1], input);
      if (pred.logic_op == LogicOp::kAnd) return l * r;
      return std::min(1.0, l + r - l * r);
    }
    case ExprKind::kNot:
      return 1.0 - EstimateSelectivity(*pred.children[0], input);
    case ExprKind::kCompare: {
      // col <op> literal (possibly through casts, either orientation).
      auto unwrap = [](const Expr& e) -> const Expr* {
        const Expr* p = &e;
        while (p->kind == ExprKind::kCast) p = p->children[0].get();
        return p;
      };
      const Expr* l = unwrap(*pred.children[0]);
      const Expr* r = unwrap(*pred.children[1]);
      const Expr* col = nullptr;
      const Expr* lit = nullptr;
      CompareOp op = pred.compare_op;
      if (l->kind == ExprKind::kColumn && r->kind == ExprKind::kLiteral) {
        col = l;
        lit = r;
      } else if (r->kind == ExprKind::kColumn &&
                 l->kind == ExprKind::kLiteral) {
        col = r;
        lit = l;
        op = ReverseCompareOp(op);
      }
      if (col == nullptr) {
        return op == CompareOp::kEq ? kDefaultEqSelectivity
                                    : kDefaultRangeSelectivity;
      }
      const ColumnStats* cs = TraceColumnStats(input, col->column_index);
      switch (op) {
        case CompareOp::kEq:
          if (cs != nullptr && cs->distinct_count > 0) {
            return 1.0 / static_cast<double>(cs->distinct_count);
          }
          return kDefaultEqSelectivity;
        case CompareOp::kNe:
          if (cs != nullptr && cs->distinct_count > 0) {
            return 1.0 - 1.0 / static_cast<double>(cs->distinct_count);
          }
          return 1.0 - kDefaultEqSelectivity;
        case CompareOp::kLt:
        case CompareOp::kLe:
        case CompareOp::kGt:
        case CompareOp::kGe: {
          if (cs == nullptr || lit->literal.is_null()) {
            return kDefaultRangeSelectivity;
          }
          // Prefer the equi-depth histogram: it captures skew that
          // min/max interpolation cannot.
          const double below = cs->FractionBelow(lit->literal);
          if (below >= 0.0) {
            double frac = below;
            if (op == CompareOp::kGt || op == CompareOp::kGe) {
              frac = 1.0 - frac;
            }
            return std::clamp(frac, 0.0, 1.0);
          }
          if (cs->min.is_null() || cs->max.is_null() ||
              !IsNumeric(lit->literal.type())) {
            return kDefaultRangeSelectivity;
          }
          const double lo = cs->min.NumericValue();
          const double hi = cs->max.NumericValue();
          const double b = lit->literal.NumericValue();
          // Inverted bounds mean corrupt or stale statistics — only
          // then fall back to the default guess. A single-point column
          // (hi == lo) resolved the bounds *exactly*: every row holds
          // `lo`, so the predicate is provably empty or provably total
          // and the default 1/3 would be off by a factor of rowcount.
          if (hi < lo) return kDefaultRangeSelectivity;
          if (hi == lo) {
            switch (op) {
              case CompareOp::kLt: return b <= lo ? 0.0 : 1.0;
              case CompareOp::kLe: return b < lo ? 0.0 : 1.0;
              case CompareOp::kGt: return b >= lo ? 0.0 : 1.0;
              case CompareOp::kGe: return b > lo ? 0.0 : 1.0;
              default: return kDefaultRangeSelectivity;
            }
          }
          double frac = (b - lo) / (hi - lo);
          if (op == CompareOp::kGt || op == CompareOp::kGe) {
            frac = 1.0 - frac;
          }
          return std::clamp(frac, 0.0, 1.0);
        }
      }
      return kDefaultRangeSelectivity;
    }
    case ExprKind::kLike:
      return pred.negated ? 1.0 - kDefaultLikeSelectivity
                          : kDefaultLikeSelectivity;
    case ExprKind::kIn: {
      const Expr* target = pred.children[0].get();
      double eq = kDefaultEqSelectivity;
      if (target->kind == ExprKind::kColumn) {
        const ColumnStats* cs = TraceColumnStats(input, target->column_index);
        if (cs != nullptr && cs->distinct_count > 0) {
          eq = 1.0 / static_cast<double>(cs->distinct_count);
        }
      }
      const double sel =
          std::min(1.0, eq * static_cast<double>(pred.children.size() - 1));
      return pred.negated ? 1.0 - sel : sel;
    }
    case ExprKind::kIsNull: {
      const Expr* target = pred.children[0].get();
      double frac = 0.05;
      if (target->kind == ExprKind::kColumn) {
        const ColumnStats* cs = TraceColumnStats(input, target->column_index);
        const PlanNode* base = &input;
        double rows = base->est_rows > 0 ? base->est_rows : 1.0;
        if (cs != nullptr && rows > 0) {
          frac = std::min(1.0, static_cast<double>(cs->null_count) / rows);
        }
      }
      return pred.negated ? 1.0 - frac : frac;
    }
    default:
      return 0.5;
  }
}

double CostModel::EstimateRows(const PlanNode& node) const {
  switch (node.kind) {
    case PlanKind::kValues:
      return static_cast<double>(node.values_rows.size());
    case PlanKind::kSourceScan: {
      auto t = catalog_.GetTable(node.scan_global_name);
      return t.ok() ? static_cast<double>((*t)->stats.row_count) : 1000.0;
    }
    case PlanKind::kVirtualScan:
      return 64.0;  // system snapshots are small and unstatted
    case PlanKind::kRemoteFragment: {
      auto t = catalog_.GetTable(node.scan_global_name.empty()
                                     ? node.fragment.table
                                     : node.scan_global_name);
      double rows = t.ok() ? static_cast<double>((*t)->stats.row_count)
                           : 1000.0;
      if (node.fragment.filter) {
        // The fragment filter is expressed in table space; estimate it
        // against a scan-shaped shim so column tracing lines up.
        PlanNode shim(PlanKind::kSourceScan);
        shim.scan_global_name = node.scan_global_name.empty()
                                    ? node.fragment.table
                                    : node.scan_global_name;
        shim.est_rows = rows;
        rows *= EstimateSelectivity(*node.fragment.filter, shim);
      }
      if (node.fragment.semijoin_column >= 0 &&
          !node.fragment.semijoin_values.empty()) {
        rows = std::min(
            rows, static_cast<double>(node.fragment.semijoin_values.size()) *
                      4.0);
      }
      if (node.fragment.has_aggregate) {
        rows = node.fragment.group_by.empty()
                   ? 1.0
                   : std::min(rows, std::sqrt(rows) * 10.0);
      }
      if (node.fragment.limit >= 0) {
        rows = std::min(rows, static_cast<double>(node.fragment.limit));
      }
      return std::max(rows, 0.0);
    }
    case PlanKind::kUnionAll: {
      double total = 0;
      for (const auto& c : node.children) total += c->est_rows;
      return total;
    }
    case PlanKind::kFilter:
      return node.children[0]->est_rows *
             EstimateSelectivity(*node.filter, *node.children[0]);
    case PlanKind::kProject:
    case PlanKind::kSort:
      return node.children[0]->est_rows;
    case PlanKind::kLimit: {
      const double child = node.children[0]->est_rows;
      if (node.limit < 0) return std::max(0.0, child - node.offset);
      return std::min(child, static_cast<double>(node.limit));
    }
    case PlanKind::kDistinct:
      // Heuristic: duplicates shrink the set by half unless tiny.
      return std::max(1.0, node.children[0]->est_rows * 0.5);
    case PlanKind::kJoin: {
      const PlanNode& left = *node.children[0];
      const PlanNode& right = *node.children[1];
      const double lr = std::max(left.est_rows, 1.0);
      const double rr = std::max(right.est_rows, 1.0);
      if (node.join_type == JoinType::kAnti) {
        return lr * 0.5;  // half survive, absent better information
      }
      if (node.left_keys.empty()) {
        return lr * rr;  // cross join
      }
      double denom = 1.0;
      for (size_t i = 0; i < node.left_keys.size(); ++i) {
        const int64_t ld = EstimateDistinct(left, node.left_keys[i]);
        const int64_t rd = EstimateDistinct(right, node.right_keys[i]);
        const double d = static_cast<double>(std::max(ld, rd));
        denom *= std::max(d, 1.0);
        if (ld == 0 && rd == 0) {
          // No stats: assume FK join producing max(|L|, |R|).
          denom = std::max(denom, std::min(lr, rr));
        }
      }
      double rows = lr * rr / denom;
      if (node.join_residual) {
        rows *= EstimateSelectivity(*node.join_residual, node);
      }
      if (node.join_type == JoinType::kLeft) rows = std::max(rows, lr);
      return std::max(rows, 0.0);
    }
    case PlanKind::kAggregate: {
      const double child = node.children[0]->est_rows;
      if (node.group_by.empty()) return 1.0;
      double groups = 1.0;
      bool any_stats = false;
      for (const auto& g : node.group_by) {
        const Expr* e = g.get();
        while (e->kind == ExprKind::kCast) e = e->children[0].get();
        if (e->kind == ExprKind::kColumn) {
          const int64_t d =
              EstimateDistinct(*node.children[0], e->column_index);
          if (d > 0) {
            groups *= static_cast<double>(d);
            any_stats = true;
            continue;
          }
        }
        groups *= 10.0;
      }
      if (!any_stats) groups = std::min(groups, std::sqrt(child) * 10.0);
      return std::min(child, std::max(groups, 1.0));
    }
  }
  return 1.0;
}

void CostModel::Annotate(const PlanNodePtr& root) const {
  for (const auto& c : root->children) Annotate(c);
  root->est_rows = EstimateRows(*root);
  const double row_width =
      root->output_schema ? static_cast<double>(
                                root->output_schema->EstimatedRowWidth())
                          : 16.0;
  root->est_bytes = root->est_rows * row_width;

  double cost = 0;
  switch (root->kind) {
    case PlanKind::kSourceScan:
    case PlanKind::kRemoteFragment: {
      // Round trip: small request + result transfer + source scan CPU.
      auto t = catalog_.GetTable(!root->scan_global_name.empty()
                                     ? root->scan_global_name
                                     : root->fragment.table);
      const double base_rows =
          t.ok() ? static_cast<double>((*t)->stats.row_count)
                 : root->est_rows;
      cost = params_.link.TransferTimeMs(256) +
             params_.link.TransferTimeMs(
                 static_cast<int64_t>(root->est_bytes)) +
             base_rows * params_.source_cpu_us_per_row / 1e3;
      break;
    }
    case PlanKind::kUnionAll: {
      // Fragments run in parallel: pay the slowest child.
      double max_child = 0;
      for (const auto& c : root->children) {
        max_child = std::max(max_child, c->est_cost_ms);
      }
      cost = max_child +
             root->est_rows * params_.mediator_cpu_us_per_row / 1e3;
      return void(root->est_cost_ms = cost);
    }
    default:
      break;
  }
  // Generic: children costs combine by sum (sequential), except joins in
  // ship mode overlap their fetches (max), and union (handled above).
  double children_cost = 0;
  if (root->kind == PlanKind::kJoin &&
      root->join_strategy == JoinStrategy::kShip) {
    children_cost = std::max(root->children[0]->est_cost_ms,
                             root->children[1]->est_cost_ms);
  } else {
    for (const auto& c : root->children) children_cost += c->est_cost_ms;
  }
  double local_rows = root->est_rows;
  if (root->kind == PlanKind::kJoin) {
    local_rows = root->children[0]->est_rows + root->children[1]->est_rows +
                 root->est_rows;
  } else if (!root->children.empty()) {
    local_rows = root->children[0]->est_rows;
  }
  root->est_cost_ms =
      cost + children_cost +
      local_rows * params_.mediator_cpu_us_per_row / 1e3;
}

}  // namespace gisql
