#include "planner/optimizer.h"

#include <algorithm>
#include <numeric>

#include "expr/eval.h"

namespace gisql {

namespace {

/// Substitutes column references through a projection: column i becomes
/// a clone of `exprs[i]`.
Result<ExprPtr> SubstituteColumns(const Expr& e,
                                  const std::vector<ExprPtr>& exprs) {
  if (e.kind == ExprKind::kColumn) {
    if (e.column_index >= exprs.size()) {
      return Status::Internal("substitution index $", e.column_index,
                              " out of range");
    }
    return exprs[e.column_index]->Clone();
  }
  auto out = std::make_shared<Expr>(e);
  out->children.clear();
  for (const auto& c : e.children) {
    GISQL_ASSIGN_OR_RETURN(ExprPtr nc, SubstituteColumns(*c, exprs));
    out->children.push_back(std::move(nc));
  }
  return out;
}

/// True if every column referenced is < `width`.
bool RefsOnlyBelow(const Expr& e, size_t width) {
  return e.ColumnsWithin(0, width);
}

/// True if every column referenced is >= `lo`.
bool RefsOnlyAtOrAbove(const Expr& e, size_t lo) {
  if (e.kind == ExprKind::kColumn) return e.column_index >= lo;
  for (const auto& c : e.children) {
    if (!RefsOnlyAtOrAbove(*c, lo)) return false;
  }
  return true;
}

PlanNodePtr WrapFilter(PlanNodePtr node, std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return node;
  return MakeFilterNode(std::move(node), ConjoinAll(std::move(conjuncts)));
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 1: constant folding
// ---------------------------------------------------------------------------

PlanNodePtr Optimizer::FoldAllConstants(PlanNodePtr node) {
  for (auto& c : node->children) c = FoldAllConstants(std::move(c));
  if (!options_.enable_constant_folding) return node;
  if (node->filter) node->filter = FoldConstants(node->filter);
  if (node->join_residual) {
    node->join_residual = FoldConstants(node->join_residual);
  }
  for (auto& p : node->projections) p = FoldConstants(p);
  for (auto& g : node->group_by) g = FoldConstants(g);
  for (auto& a : node->aggregates) {
    if (a.arg) a.arg = FoldConstants(a.arg);
  }
  return node;
}

// ---------------------------------------------------------------------------
// Pass 2: filter pushdown
// ---------------------------------------------------------------------------

Result<PlanNodePtr> Optimizer::PushFilters(PlanNodePtr node,
                                           std::vector<ExprPtr> pending) {
  switch (node->kind) {
    case PlanKind::kFilter: {
      SplitConjuncts(node->filter, &pending);
      return PushFilters(node->children[0], std::move(pending));
    }

    case PlanKind::kProject: {
      std::vector<ExprPtr> below;
      below.reserve(pending.size());
      for (const auto& c : pending) {
        GISQL_ASSIGN_OR_RETURN(ExprPtr sub,
                               SubstituteColumns(*c, node->projections));
        below.push_back(std::move(sub));
      }
      GISQL_ASSIGN_OR_RETURN(
          node->children[0],
          PushFilters(node->children[0], std::move(below)));
      return node;
    }

    case PlanKind::kJoin: {
      const size_t lw = node->children[0]->output_schema->num_fields();
      const size_t total = node->output_schema->num_fields();
      const bool inner = node->join_type == JoinType::kInner;
      std::vector<ExprPtr> left_pending, right_pending, stay;

      // The residual joins the pending set for re-analysis (it may have
      // become single-sided after earlier rewrites).
      if (inner && node->join_residual) {
        SplitConjuncts(node->join_residual, &pending);
        node->join_residual = nullptr;
      }
      for (auto& c : pending) {
        if (RefsOnlyBelow(*c, lw)) {
          left_pending.push_back(std::move(c));
          continue;
        }
        if (RefsOnlyAtOrAbove(*c, lw)) {
          if (inner) {
            // Shift into right-child space.
            std::vector<size_t> mapping(total, static_cast<size_t>(-1));
            for (size_t i = lw; i < total; ++i) mapping[i] = i - lw;
            GISQL_ASSIGN_OR_RETURN(ExprPtr shifted,
                                   RemapColumns(*c, mapping));
            right_pending.push_back(std::move(shifted));
          } else {
            stay.push_back(std::move(c));  // unsafe below a LEFT join
          }
          continue;
        }
        // Mixed-side conjunct: promote equi-comparisons to join keys.
        bool promoted = false;
        if (inner && c->kind == ExprKind::kCompare &&
            c->compare_op == CompareOp::kEq) {
          auto unwrap = [](const ExprPtr& e) -> const Expr* {
            const Expr* p = e.get();
            while (p->kind == ExprKind::kCast) p = p->children[0].get();
            return p;
          };
          const Expr* l = unwrap(c->children[0]);
          const Expr* r = unwrap(c->children[1]);
          if (l->kind == ExprKind::kColumn && r->kind == ExprKind::kColumn) {
            size_t li = l->column_index, ri = r->column_index;
            if (li >= lw && ri < lw) std::swap(li, ri);
            if (li < lw && ri >= lw) {
              node->left_keys.push_back(li);
              node->right_keys.push_back(ri - lw);
              promoted = true;
            }
          }
        }
        if (!promoted) {
          if (inner) {
            // Keep as join residual (evaluated on candidate pairs).
            node->join_residual =
                node->join_residual
                    ? MakeLogic(LogicOp::kAnd, node->join_residual,
                                std::move(c))
                    : std::move(c);
          } else {
            stay.push_back(std::move(c));
          }
        }
      }
      GISQL_ASSIGN_OR_RETURN(
          node->children[0],
          PushFilters(node->children[0], std::move(left_pending)));
      GISQL_ASSIGN_OR_RETURN(
          node->children[1],
          PushFilters(node->children[1], std::move(right_pending)));
      return WrapFilter(node, std::move(stay));
    }

    case PlanKind::kUnionAll: {
      for (auto& child : node->children) {
        std::vector<ExprPtr> cloned;
        cloned.reserve(pending.size());
        for (const auto& c : pending) cloned.push_back(c->Clone());
        GISQL_ASSIGN_OR_RETURN(child,
                               PushFilters(child, std::move(cloned)));
      }
      return node;
    }

    case PlanKind::kAggregate: {
      const size_t ngroups = node->group_by.size();
      std::vector<ExprPtr> below, stay;
      for (auto& c : pending) {
        if (RefsOnlyBelow(*c, ngroups)) {
          // Group-column conjunct: substitute group expressions to move
          // it below the aggregation.
          GISQL_ASSIGN_OR_RETURN(ExprPtr sub,
                                 SubstituteColumns(*c, node->group_by));
          below.push_back(std::move(sub));
        } else {
          stay.push_back(std::move(c));
        }
      }
      GISQL_ASSIGN_OR_RETURN(
          node->children[0],
          PushFilters(node->children[0], std::move(below)));
      return WrapFilter(node, std::move(stay));
    }

    case PlanKind::kSort:
    case PlanKind::kDistinct: {
      GISQL_ASSIGN_OR_RETURN(
          node->children[0],
          PushFilters(node->children[0], std::move(pending)));
      return node;
    }

    case PlanKind::kLimit: {
      // Filters must not cross a LIMIT; apply above it.
      GISQL_ASSIGN_OR_RETURN(node->children[0],
                             PushFilters(node->children[0], {}));
      return WrapFilter(node, std::move(pending));
    }

    case PlanKind::kValues:
    case PlanKind::kSourceScan:
    case PlanKind::kVirtualScan:
    case PlanKind::kRemoteFragment:
      return WrapFilter(node, std::move(pending));
  }
  return Status::Internal("unreachable plan kind in PushFilters");
}

// ---------------------------------------------------------------------------
// Pass 3: join reordering
// ---------------------------------------------------------------------------

namespace {

struct JoinLeaf {
  PlanNodePtr node;
  size_t offset = 0;  ///< column offset in the original concat order
  size_t width = 0;
};

struct EquiEdge {
  size_t left_leaf, left_col;    ///< leaf index + column within leaf
  size_t right_leaf, right_col;
};

struct Cluster {
  std::vector<JoinLeaf> leaves;
  std::vector<EquiEdge> edges;
  /// Residual predicates in the original global column space, with the
  /// set of leaves they touch.
  std::vector<std::pair<ExprPtr, std::vector<size_t>>> residuals;
};

/// Flattens a maximal inner-join subtree.
void FlattenJoins(const PlanNodePtr& node, size_t offset, Cluster* cluster) {
  if (node->kind == PlanKind::kJoin &&
      node->join_type == JoinType::kInner) {
    const size_t lw = node->children[0]->output_schema->num_fields();
    const size_t leaf_base = cluster->leaves.size();
    FlattenJoins(node->children[0], offset, cluster);
    const size_t right_leaf_base = cluster->leaves.size();
    FlattenJoins(node->children[1], offset + lw, cluster);

    auto locate = [&](size_t global_col, size_t lo_leaf,
                      size_t hi_leaf) -> std::pair<size_t, size_t> {
      for (size_t li = lo_leaf; li < hi_leaf; ++li) {
        const JoinLeaf& leaf = cluster->leaves[li];
        if (global_col >= leaf.offset &&
            global_col < leaf.offset + leaf.width) {
          return {li, global_col - leaf.offset};
        }
      }
      return {static_cast<size_t>(-1), 0};
    };
    for (size_t i = 0; i < node->left_keys.size(); ++i) {
      auto [ll, lc] =
          locate(offset + node->left_keys[i], leaf_base, right_leaf_base);
      auto [rl, rc] = locate(offset + lw + node->right_keys[i],
                             right_leaf_base, cluster->leaves.size());
      if (ll != static_cast<size_t>(-1) && rl != static_cast<size_t>(-1)) {
        cluster->edges.push_back({ll, lc, rl, rc});
      }
    }
    if (node->join_residual) {
      ExprPtr shifted = ShiftColumns(*node->join_residual, offset);
      std::vector<size_t> cols;
      shifted->CollectColumns(&cols);
      std::vector<size_t> touched;
      for (size_t col : cols) {
        auto [li, lc] = locate(col, leaf_base, cluster->leaves.size());
        (void)lc;
        if (li != static_cast<size_t>(-1) &&
            std::find(touched.begin(), touched.end(), li) == touched.end()) {
          touched.push_back(li);
        }
      }
      cluster->residuals.emplace_back(std::move(shifted),
                                      std::move(touched));
    }
    return;
  }
  JoinLeaf leaf;
  leaf.node = node;
  leaf.offset = offset;
  leaf.width = node->output_schema->num_fields();
  cluster->leaves.push_back(std::move(leaf));
}

/// Builds a left-deep join tree for the given placement order.
/// Returns the root and fills `layout` (leaf index → column offset in
/// the built tree's output).
Result<PlanNodePtr> BuildLeftDeep(const Cluster& cluster,
                                  const std::vector<size_t>& order,
                                  std::vector<size_t>* layout) {
  layout->assign(cluster.leaves.size(), static_cast<size_t>(-1));
  std::vector<bool> placed(cluster.leaves.size(), false);
  std::vector<bool> edge_used(cluster.edges.size(), false);
  std::vector<bool> residual_used(cluster.residuals.size(), false);

  PlanNodePtr acc = cluster.leaves[order[0]].node;
  (*layout)[order[0]] = 0;
  placed[order[0]] = true;
  size_t acc_width = cluster.leaves[order[0]].width;

  for (size_t step = 1; step < order.size(); ++step) {
    const size_t li = order[step];
    const JoinLeaf& leaf = cluster.leaves[li];
    auto join = std::make_shared<PlanNode>(PlanKind::kJoin);
    join->join_type = JoinType::kInner;
    join->output_schema = std::make_shared<Schema>(
        acc->output_schema->Concat(*leaf.node->output_schema));
    // Keys connecting the new leaf with anything already placed.
    for (size_t ei = 0; ei < cluster.edges.size(); ++ei) {
      if (edge_used[ei]) continue;
      const EquiEdge& e = cluster.edges[ei];
      size_t in_col = 0, new_col = 0;
      if (e.left_leaf == li && placed[e.right_leaf]) {
        in_col = (*layout)[e.right_leaf] + e.right_col;
        new_col = e.left_col;
      } else if (e.right_leaf == li && placed[e.left_leaf]) {
        in_col = (*layout)[e.left_leaf] + e.left_col;
        new_col = e.right_col;
      } else {
        continue;
      }
      join->left_keys.push_back(in_col);
      join->right_keys.push_back(new_col);
      edge_used[ei] = true;
    }
    placed[li] = true;
    (*layout)[li] = acc_width;
    acc_width += leaf.width;
    join->children = {acc, leaf.node};

    // Residuals whose leaves are now all placed.
    std::vector<ExprPtr> ready;
    for (size_t ri = 0; ri < cluster.residuals.size(); ++ri) {
      if (residual_used[ri]) continue;
      bool all = true;
      for (size_t tl : cluster.residuals[ri].second) {
        if (!placed[tl]) {
          all = false;
          break;
        }
      }
      if (!all) continue;
      residual_used[ri] = true;
      // Remap from the original global space into the current layout.
      size_t global_width = 0;
      for (const auto& l : cluster.leaves) {
        global_width = std::max(global_width, l.offset + l.width);
      }
      std::vector<size_t> mapping(global_width, static_cast<size_t>(-1));
      for (size_t l = 0; l < cluster.leaves.size(); ++l) {
        if (!placed[l]) continue;
        for (size_t c = 0; c < cluster.leaves[l].width; ++c) {
          mapping[cluster.leaves[l].offset + c] = (*layout)[l] + c;
        }
      }
      GISQL_ASSIGN_OR_RETURN(
          ExprPtr remapped,
          RemapColumns(*cluster.residuals[ri].first, mapping));
      ready.push_back(std::move(remapped));
    }
    if (!ready.empty()) {
      join->join_residual = ConjoinAll(std::move(ready));
    }
    acc = join;
  }
  return acc;
}

}  // namespace

Result<PlanNodePtr> Optimizer::ReorderJoinCluster(PlanNodePtr join_root) {
  Cluster cluster;
  FlattenJoins(join_root, 0, &cluster);
  const size_t n = cluster.leaves.size();
  if (n < 2) return join_root;
  // Recurse into leaves first (they may contain nested clusters below
  // aggregates etc.).
  for (auto& leaf : cluster.leaves) {
    GISQL_ASSIGN_OR_RETURN(leaf.node, ReorderJoins(leaf.node));
  }

  auto cost_of = [&](const std::vector<size_t>& order) -> double {
    std::vector<size_t> layout;
    auto plan = BuildLeftDeep(cluster, order, &layout);
    if (!plan.ok()) return 1e300;
    cost_->Annotate(*plan);
    // C_out: sum of intermediate join cardinalities.
    double total = 0;
    VisitPlan(*plan, [&](const PlanNodePtr& node) {
      if (node->kind == PlanKind::kJoin) total += node->est_rows;
    });
    return total;
  };

  std::vector<size_t> best_order(n);
  std::iota(best_order.begin(), best_order.end(), 0);

  switch (options_.join_ordering) {
    case JoinOrdering::kAsWritten:
      break;  // keep 0..n-1

    case JoinOrdering::kGreedy:
    case JoinOrdering::kWorst: {
      const bool minimize = options_.join_ordering == JoinOrdering::kGreedy;
      // Both heuristics extend through join edges only (cross products
      // are a last resort) — otherwise the adversarial baseline blows
      // up into cartesian products no real system would execute.
      auto connected_to = [&](const std::vector<bool>& taken, size_t leaf) {
        for (const auto& e : cluster.edges) {
          if ((e.left_leaf == leaf && taken[e.right_leaf]) ||
              (e.right_leaf == leaf && taken[e.left_leaf])) {
            return true;
          }
        }
        return false;
      };
      // Start from the smallest (resp. largest) leaf.
      for (auto& leaf : cluster.leaves) cost_->Annotate(leaf.node);
      std::vector<size_t> order;
      std::vector<bool> taken(n, false);
      size_t start = 0;
      for (size_t i = 1; i < n; ++i) {
        const bool better = cluster.leaves[i].node->est_rows <
                            cluster.leaves[start].node->est_rows;
        if (better == minimize && cluster.leaves[i].node->est_rows !=
                                      cluster.leaves[start].node->est_rows) {
          start = i;
        }
      }
      order.push_back(start);
      taken[start] = true;
      while (order.size() < n) {
        bool any_connected = false;
        for (size_t i = 0; i < n; ++i) {
          if (!taken[i] && connected_to(taken, i)) {
            any_connected = true;
            break;
          }
        }
        size_t pick = static_cast<size_t>(-1);
        double pick_cost = minimize ? 1e300 : -1.0;
        for (size_t i = 0; i < n; ++i) {
          if (taken[i]) continue;
          if (any_connected && !connected_to(taken, i)) continue;
          std::vector<size_t> candidate = order;
          candidate.push_back(i);
          // Cost of the partial left-deep prefix.
          const double c = cost_of(candidate);
          const bool better = minimize ? c < pick_cost : c > pick_cost;
          if (better) {
            pick = i;
            pick_cost = c;
          }
        }
        order.push_back(pick);
        taken[pick] = true;
      }
      best_order = order;
      break;
    }

    case JoinOrdering::kDp: {
      if (n > 10) {
        // Fall back to greedy for very wide clusters.
        PlannerOptions greedy_opts = options_;
        greedy_opts.join_ordering = JoinOrdering::kGreedy;
        Optimizer greedy(catalog_, greedy_opts, cost_);
        return greedy.ReorderJoinCluster(join_root);
      }
      // Left-deep DP over subsets: dp[mask] = best order covering mask.
      const size_t full = (1u << n) - 1;
      std::vector<double> dp_cost(full + 1, 1e300);
      std::vector<std::vector<size_t>> dp_order(full + 1);
      for (size_t i = 0; i < n; ++i) {
        dp_cost[1u << i] = 0.0;
        dp_order[1u << i] = {i};
      }
      // Prefer connected extensions; fall back to cross products only
      // when no connected extension exists for a mask.
      auto connected = [&](size_t mask, size_t leaf) {
        for (const auto& e : cluster.edges) {
          if ((e.left_leaf == leaf && (mask >> e.right_leaf) & 1) ||
              (e.right_leaf == leaf && (mask >> e.left_leaf) & 1)) {
            return true;
          }
        }
        return false;
      };
      for (size_t mask = 1; mask <= full; ++mask) {
        if (dp_cost[mask] >= 1e300 || mask == full) continue;
        bool any_connected = false;
        for (size_t j = 0; j < n; ++j) {
          if ((mask >> j) & 1) continue;
          if (connected(mask, j)) {
            any_connected = true;
            break;
          }
        }
        for (size_t j = 0; j < n; ++j) {
          if ((mask >> j) & 1) continue;
          if (any_connected && !connected(mask, j)) continue;
          std::vector<size_t> order = dp_order[mask];
          order.push_back(j);
          const double c = cost_of(order);
          const size_t next = mask | (1u << j);
          if (c < dp_cost[next]) {
            dp_cost[next] = c;
            dp_order[next] = std::move(order);
          }
        }
      }
      if (!dp_order[full].empty()) best_order = dp_order[full];
      break;
    }
  }

  std::vector<size_t> layout;
  GISQL_ASSIGN_OR_RETURN(PlanNodePtr rebuilt,
                         BuildLeftDeep(cluster, best_order, &layout));

  // Restore the original output column order with a projection.
  std::vector<ExprPtr> restore;
  std::vector<std::string> names;
  for (size_t l = 0; l < cluster.leaves.size(); ++l) {
    const JoinLeaf& leaf = cluster.leaves[l];
    for (size_t c = 0; c < leaf.width; ++c) {
      const Field& f = leaf.node->output_schema->field(c);
      restore.push_back(MakeColumn(layout[l] + c, f.type, f.QualifiedName()));
      names.push_back(f.name);
    }
  }
  PlanNodePtr projected =
      MakeProjectNode(std::move(rebuilt), std::move(restore), names);
  // Preserve the original (qualified) schema exactly.
  projected->output_schema = join_root->output_schema;
  return projected;
}

Result<PlanNodePtr> Optimizer::ReorderJoins(PlanNodePtr node) {
  if (node->kind == PlanKind::kJoin &&
      node->join_type == JoinType::kInner) {
    if (options_.join_ordering == JoinOrdering::kAsWritten) {
      for (auto& c : node->children) {
        GISQL_ASSIGN_OR_RETURN(c, ReorderJoins(std::move(c)));
      }
      return node;
    }
    return ReorderJoinCluster(node);
  }
  for (auto& c : node->children) {
    GISQL_ASSIGN_OR_RETURN(c, ReorderJoins(std::move(c)));
  }
  return node;
}

// ---------------------------------------------------------------------------
// Pass 4: projection pruning
// ---------------------------------------------------------------------------

namespace {

std::vector<size_t> UsedList(const std::vector<bool>& used) {
  std::vector<size_t> out;
  for (size_t i = 0; i < used.size(); ++i) {
    if (used[i]) out.push_back(i);
  }
  return out;
}

}  // namespace

Result<Optimizer::Pruned> Optimizer::PruneColumns(
    PlanNodePtr node, const std::vector<bool>& used_in) {
  const size_t width = node->output_schema->num_fields();
  // COUNT(*)-style parents need no columns at all, but zero-width rows
  // cannot be represented in fragments; keep the narrowest column.
  std::vector<bool> used = used_in;
  if (width > 0 &&
      std::none_of(used.begin(), used.end(), [](bool b) { return b; })) {
    size_t pick = 0;
    int64_t best = EstimatedWireSize(node->output_schema->field(0).type);
    for (size_t i = 1; i < width; ++i) {
      const int64_t w =
          EstimatedWireSize(node->output_schema->field(i).type);
      if (w < best) {
        best = w;
        pick = i;
      }
    }
    used[pick] = true;
  }
  auto identity_mapping = [&] {
    std::vector<size_t> m(width);
    std::iota(m.begin(), m.end(), 0);
    return m;
  };
  auto mapping_for = [&](const std::vector<bool>& kept) {
    std::vector<size_t> m(width, static_cast<size_t>(-1));
    size_t next = 0;
    for (size_t i = 0; i < width; ++i) {
      if (kept[i]) m[i] = next++;
    }
    return m;
  };
  const bool all_used =
      std::all_of(used.begin(), used.end(), [](bool b) { return b; });

  switch (node->kind) {
    case PlanKind::kValues:
      return Pruned{node, identity_mapping()};

    case PlanKind::kSourceScan:
    case PlanKind::kVirtualScan:
    case PlanKind::kRemoteFragment: {
      if (all_used) return Pruned{node, identity_mapping()};
      // Narrow with a projection the decomposer can absorb (executed at
      // the mediator for virtual scans, which never leave it).
      std::vector<ExprPtr> cols;
      std::vector<std::string> names;
      for (size_t i : UsedList(used)) {
        const Field& f = node->output_schema->field(i);
        cols.push_back(MakeColumn(i, f.type, f.QualifiedName()));
        names.push_back(f.name);
      }
      auto mapping = mapping_for(used);
      PlanNodePtr project =
          MakeProjectNode(node, std::move(cols), std::move(names));
      // Preserve qualifiers on the narrowed schema.
      std::vector<Field> fields;
      for (size_t i : UsedList(used)) {
        fields.push_back(node->output_schema->field(i));
      }
      project->output_schema = std::make_shared<Schema>(std::move(fields));
      return Pruned{std::move(project), std::move(mapping)};
    }

    case PlanKind::kFilter: {
      std::vector<bool> child_used = used;
      std::vector<size_t> filter_cols;
      node->filter->CollectColumns(&filter_cols);
      for (size_t c : filter_cols) child_used[c] = true;
      GISQL_ASSIGN_OR_RETURN(Pruned child,
                             PruneColumns(node->children[0], child_used));
      GISQL_ASSIGN_OR_RETURN(node->filter,
                             RemapColumns(*node->filter, child.mapping));
      node->children[0] = child.node;
      node->output_schema = child.node->output_schema;
      // Drop filter-only columns if the parent does not need them.
      std::vector<size_t> mapping(width, static_cast<size_t>(-1));
      bool needs_drop = false;
      size_t next = 0;
      for (size_t i = 0; i < width; ++i) {
        if (used[i]) {
          mapping[i] = next++;
        }
        if (!used[i] && child_used[i]) needs_drop = true;
      }
      if (!needs_drop) {
        // child kept exactly `used` columns; mapping composes directly.
        std::vector<size_t> composed(width, static_cast<size_t>(-1));
        for (size_t i = 0; i < width; ++i) {
          if (used[i]) composed[i] = child.mapping[i];
        }
        return Pruned{node, std::move(composed)};
      }
      std::vector<ExprPtr> cols;
      std::vector<std::string> names;
      std::vector<Field> fields;
      for (size_t i : UsedList(used)) {
        const Field& f = node->output_schema->field(child.mapping[i]);
        cols.push_back(MakeColumn(child.mapping[i], f.type,
                                  f.QualifiedName()));
        names.push_back(f.name);
        fields.push_back(f);
      }
      PlanNodePtr project =
          MakeProjectNode(node, std::move(cols), std::move(names));
      project->output_schema = std::make_shared<Schema>(std::move(fields));
      return Pruned{std::move(project), std::move(mapping)};
    }

    case PlanKind::kProject: {
      std::vector<bool> child_used(
          node->children[0]->output_schema->num_fields(), false);
      std::vector<ExprPtr> kept;
      std::vector<std::string> kept_names;
      std::vector<Field> kept_fields;
      std::vector<size_t> mapping(width, static_cast<size_t>(-1));
      size_t next = 0;
      for (size_t i = 0; i < width; ++i) {
        if (!used[i]) continue;
        mapping[i] = next++;
        std::vector<size_t> cols;
        node->projections[i]->CollectColumns(&cols);
        for (size_t c : cols) child_used[c] = true;
        kept.push_back(node->projections[i]);
        kept_names.push_back(i < node->projection_names.size()
                                 ? node->projection_names[i]
                                 : "");
        kept_fields.push_back(node->output_schema->field(i));
      }
      GISQL_ASSIGN_OR_RETURN(Pruned child,
                             PruneColumns(node->children[0], child_used));
      for (auto& e : kept) {
        GISQL_ASSIGN_OR_RETURN(e, RemapColumns(*e, child.mapping));
      }
      node->children[0] = child.node;
      node->projections = std::move(kept);
      node->projection_names = std::move(kept_names);
      node->output_schema =
          std::make_shared<Schema>(std::move(kept_fields));
      return Pruned{node, std::move(mapping)};
    }

    case PlanKind::kJoin: {
      const size_t lw = node->children[0]->output_schema->num_fields();
      const bool anti = node->join_type == JoinType::kAnti;
      const size_t rw = node->children[1]->output_schema->num_fields();
      std::vector<bool> lu(lw, false);
      std::vector<bool> ru(rw, false);
      for (size_t i = 0; i < width; ++i) {
        if (!used[i]) continue;
        if (i < lw) {
          lu[i] = true;
        } else if (!anti) {
          ru[i - lw] = true;
        }
      }
      for (size_t k : node->left_keys) lu[k] = true;
      for (size_t k : node->right_keys) ru[k] = true;
      if (node->join_residual) {
        std::vector<size_t> cols;
        node->join_residual->CollectColumns(&cols);
        for (size_t c : cols) {
          if (c < lw) {
            lu[c] = true;
          } else {
            ru[c - lw] = true;
          }
        }
      }
      GISQL_ASSIGN_OR_RETURN(Pruned left,
                             PruneColumns(node->children[0], lu));
      GISQL_ASSIGN_OR_RETURN(Pruned right,
                             PruneColumns(node->children[1], ru));
      const size_t new_lw = left.node->output_schema->num_fields();
      for (auto& k : node->left_keys) k = left.mapping[k];
      for (auto& k : node->right_keys) k = right.mapping[k];
      if (node->join_residual) {
        std::vector<size_t> combined(width, static_cast<size_t>(-1));
        for (size_t i = 0; i < lw; ++i) combined[i] = left.mapping[i];
        for (size_t i = lw; i < width; ++i) {
          const size_t rm = right.mapping[i - lw];
          combined[i] =
              rm == static_cast<size_t>(-1) ? rm : new_lw + rm;
        }
        GISQL_ASSIGN_OR_RETURN(
            node->join_residual,
            RemapColumns(*node->join_residual, combined));
      }
      node->children[0] = left.node;
      node->children[1] = right.node;
      if (anti) {
        node->output_schema = left.node->output_schema;
        return Pruned{node, left.mapping};
      }
      Schema concat =
          left.node->output_schema->Concat(*right.node->output_schema);
      node->output_schema = std::make_shared<Schema>(std::move(concat));

      std::vector<size_t> mapping(width, static_cast<size_t>(-1));
      for (size_t i = 0; i < width; ++i) {
        if (i < lw) {
          mapping[i] = left.mapping[i];
        } else {
          const size_t rm = right.mapping[i - lw];
          mapping[i] = rm == static_cast<size_t>(-1) ? rm : new_lw + rm;
        }
      }
      return Pruned{node, std::move(mapping)};
    }

    case PlanKind::kUnionAll: {
      if (all_used) {
        for (auto& c : node->children) {
          std::vector<bool> cu(c->output_schema->num_fields(), true);
          GISQL_ASSIGN_OR_RETURN(Pruned pc, PruneColumns(c, cu));
          c = pc.node;
        }
        return Pruned{node, identity_mapping()};
      }
      // Narrow every member identically so the union stays aligned.
      std::vector<Field> fields;
      for (size_t i : UsedList(used)) {
        fields.push_back(node->output_schema->field(i));
      }
      auto narrow_schema = std::make_shared<Schema>(std::move(fields));
      for (auto& c : node->children) {
        GISQL_ASSIGN_OR_RETURN(Pruned pc, PruneColumns(c, used));
        // pc.node outputs exactly the used columns in order for scans,
        // but a filtered member may retain extras; normalize.
        bool exact = pc.node->output_schema->num_fields() ==
                     narrow_schema->num_fields();
        if (exact) {
          size_t rank = 0;
          for (size_t i : UsedList(used)) {
            if (pc.mapping[i] != rank++) {
              exact = false;
              break;
            }
          }
        }
        if (!exact) {
          std::vector<ExprPtr> cols;
          std::vector<std::string> names;
          for (size_t i : UsedList(used)) {
            const size_t src = pc.mapping[i];
            const Field& f = pc.node->output_schema->field(src);
            cols.push_back(MakeColumn(src, f.type, f.QualifiedName()));
            names.push_back(f.name);
          }
          pc.node = MakeProjectNode(pc.node, std::move(cols),
                                    std::move(names));
        }
        c = pc.node;
      }
      node->output_schema = narrow_schema;
      return Pruned{node, mapping_for(used)};
    }

    case PlanKind::kAggregate: {
      const size_t ngroups = node->group_by.size();
      // Keep all group columns; prune unused aggregates.
      std::vector<BoundAggregate> kept_aggs;
      std::vector<size_t> mapping(width, static_cast<size_t>(-1));
      for (size_t i = 0; i < ngroups; ++i) mapping[i] = i;
      size_t next = ngroups;
      for (size_t i = ngroups; i < width; ++i) {
        if (used[i]) {
          mapping[i] = next++;
          kept_aggs.push_back(node->aggregates[i - ngroups]);
        }
      }
      std::vector<bool> child_used(
          node->children[0]->output_schema->num_fields(), false);
      for (const auto& g : node->group_by) {
        std::vector<size_t> cols;
        g->CollectColumns(&cols);
        for (size_t c : cols) child_used[c] = true;
      }
      for (const auto& a : kept_aggs) {
        if (a.arg) {
          std::vector<size_t> cols;
          a.arg->CollectColumns(&cols);
          for (size_t c : cols) child_used[c] = true;
        }
      }
      GISQL_ASSIGN_OR_RETURN(Pruned child,
                             PruneColumns(node->children[0], child_used));
      for (auto& g : node->group_by) {
        GISQL_ASSIGN_OR_RETURN(g, RemapColumns(*g, child.mapping));
      }
      for (auto& a : kept_aggs) {
        if (a.arg) {
          GISQL_ASSIGN_OR_RETURN(a.arg, RemapColumns(*a.arg, child.mapping));
        }
      }
      node->children[0] = child.node;
      node->aggregates = std::move(kept_aggs);
      std::vector<Field> fields;
      for (size_t i = 0; i < width; ++i) {
        if (mapping[i] != static_cast<size_t>(-1)) {
          fields.push_back(node->output_schema->field(i));
        }
      }
      node->output_schema = std::make_shared<Schema>(std::move(fields));
      return Pruned{node, std::move(mapping)};
    }

    case PlanKind::kSort: {
      std::vector<bool> child_used = used;
      for (size_t c : node->sort_columns) child_used[c] = true;
      GISQL_ASSIGN_OR_RETURN(Pruned child,
                             PruneColumns(node->children[0], child_used));
      for (auto& c : node->sort_columns) c = child.mapping[c];
      node->children[0] = child.node;
      node->output_schema = child.node->output_schema;
      std::vector<size_t> composed(width, static_cast<size_t>(-1));
      for (size_t i = 0; i < width; ++i) {
        if (child_used[i]) composed[i] = child.mapping[i];
      }
      return Pruned{node, std::move(composed)};
    }

    case PlanKind::kDistinct: {
      // Duplicate elimination depends on every column: no pruning below.
      std::vector<bool> all(node->children[0]->output_schema->num_fields(),
                            true);
      GISQL_ASSIGN_OR_RETURN(Pruned child,
                             PruneColumns(node->children[0], all));
      node->children[0] = child.node;
      return Pruned{node, identity_mapping()};
    }

    case PlanKind::kLimit: {
      GISQL_ASSIGN_OR_RETURN(Pruned child,
                             PruneColumns(node->children[0], used));
      node->children[0] = child.node;
      node->output_schema = child.node->output_schema;
      return Pruned{node, child.mapping};
    }
  }
  return Status::Internal("unreachable plan kind in PruneColumns");
}

Result<PlanNodePtr> Optimizer::PruneAll(PlanNodePtr root) {
  std::vector<bool> all(root->output_schema->num_fields(), true);
  GISQL_ASSIGN_OR_RETURN(Pruned pruned, PruneColumns(std::move(root), all));
  return pruned.node;
}

// ---------------------------------------------------------------------------
// Pass 5: project fusion
// ---------------------------------------------------------------------------

Result<PlanNodePtr> Optimizer::FuseProjects(PlanNodePtr node) {
  for (auto& c : node->children) {
    GISQL_ASSIGN_OR_RETURN(c, FuseProjects(std::move(c)));
  }
  if (node->kind != PlanKind::kProject ||
      node->children[0]->kind != PlanKind::kProject) {
    return node;
  }
  const PlanNodePtr& inner = node->children[0];
  std::vector<ExprPtr> fused;
  fused.reserve(node->projections.size());
  for (const auto& p : node->projections) {
    GISQL_ASSIGN_OR_RETURN(ExprPtr sub,
                           SubstituteColumns(*p, inner->projections));
    fused.push_back(std::move(sub));
  }
  node->projections = std::move(fused);
  node->children[0] = inner->children[0];
  // Output schema and names are unchanged: only the input changed.
  return FuseProjects(std::move(node));
}

// ---------------------------------------------------------------------------

Result<PlanNodePtr> Optimizer::Optimize(PlanNodePtr plan) {
  plan = FoldAllConstants(std::move(plan));
  if (options_.enable_filter_pushdown) {
    GISQL_ASSIGN_OR_RETURN(plan, PushFilters(std::move(plan), {}));
  }
  if (options_.join_ordering != JoinOrdering::kAsWritten) {
    GISQL_ASSIGN_OR_RETURN(plan, ReorderJoins(std::move(plan)));
  }
  if (options_.enable_projection_pushdown) {
    GISQL_ASSIGN_OR_RETURN(plan, PruneAll(std::move(plan)));
  }
  GISQL_ASSIGN_OR_RETURN(plan, FuseProjects(std::move(plan)));
  cost_->Annotate(plan);
  return plan;
}

}  // namespace gisql
