#include "planner/plan.h"

#include <functional>
#include <sstream>

namespace gisql {

const char* PlanKindName(PlanKind k) {
  switch (k) {
    case PlanKind::kValues: return "Values";
    case PlanKind::kSourceScan: return "SourceScan";
    case PlanKind::kVirtualScan: return "VirtualTableScan";
    case PlanKind::kRemoteFragment: return "RemoteFragment";
    case PlanKind::kUnionAll: return "UnionAll";
    case PlanKind::kFilter: return "Filter";
    case PlanKind::kProject: return "Project";
    case PlanKind::kJoin: return "Join";
    case PlanKind::kAggregate: return "Aggregate";
    case PlanKind::kSort: return "Sort";
    case PlanKind::kLimit: return "Limit";
    case PlanKind::kDistinct: return "Distinct";
  }
  return "?";
}

std::string PlanNode::Explain(int indent) const {
  std::ostringstream oss;
  oss << std::string(indent * 2, ' ') << PlanKindName(kind);
  switch (kind) {
    case PlanKind::kValues:
      oss << " (" << values_rows.size() << " rows)";
      break;
    case PlanKind::kSourceScan:
      oss << " " << scan_global_name << " @" << scan_source;
      break;
    case PlanKind::kVirtualScan:
      oss << " " << scan_global_name << " (system)";
      break;
    case PlanKind::kRemoteFragment:
      oss << " @" << fragment_source << " " << fragment.ToString();
      break;
    case PlanKind::kFilter:
      oss << " " << filter->ToString();
      break;
    case PlanKind::kProject: {
      oss << " [";
      for (size_t i = 0; i < projections.size(); ++i) {
        if (i) oss << ", ";
        oss << projections[i]->ToString();
        if (i < projection_names.size() && !projection_names[i].empty() &&
            projection_names[i] != projections[i]->ToString()) {
          oss << " AS " << projection_names[i];
        }
      }
      oss << "]";
      break;
    }
    case PlanKind::kJoin: {
      oss << (join_type == JoinType::kLeft
                  ? " LEFT"
                  : (join_type == JoinType::kAnti ? " ANTI(null-aware)"
                                                  : " INNER"));
      oss << (join_strategy == JoinStrategy::kSemijoin ? " (semijoin-reduced)"
                                                       : " (ship)");
      oss << " keys=[";
      for (size_t i = 0; i < left_keys.size(); ++i) {
        if (i) oss << ", ";
        oss << "$" << left_keys[i] << "=$" << right_keys[i] << "R";
      }
      oss << "]";
      if (join_residual) oss << " residual=" << join_residual->ToString();
      break;
    }
    case PlanKind::kAggregate: {
      oss << " groups=[";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i) oss << ", ";
        oss << group_by[i]->ToString();
      }
      oss << "] aggs=[";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i) oss << ", ";
        oss << aggregates[i].display;
      }
      oss << "]";
      break;
    }
    case PlanKind::kSort: {
      oss << " by [";
      for (size_t i = 0; i < sort_columns.size(); ++i) {
        if (i) oss << ", ";
        oss << "$" << sort_columns[i] << (sort_ascending[i] ? "" : " DESC");
      }
      oss << "]";
      break;
    }
    case PlanKind::kLimit:
      oss << " " << limit;
      if (offset > 0) oss << " OFFSET " << offset;
      break;
    default:
      break;
  }
  if (est_rows > 0) {
    oss << "  {est_rows=" << static_cast<int64_t>(est_rows)
        << ", est_cost=" << est_cost_ms << "ms}";
  }
  if (actual_rows >= 0) {
    oss << "  {actual_rows=" << static_cast<int64_t>(actual_rows)
        << ", actual_ms=" << actual_ms;
    if (actual_bytes_sent >= 0) {
      oss << ", sent=" << actual_bytes_sent << "B"
          << ", recv=" << actual_bytes_received << "B"
          << ", msgs=" << actual_messages
          << ", retries=" << (actual_attempts > 0 ? actual_attempts - 1 : 0);
    }
    if (actual_page_hits >= 0) {
      oss << ", page_hits=" << actual_page_hits
          << ", page_misses=" << actual_page_misses
          << ", evictions=" << actual_evictions
          << ", disk_ms=" << actual_disk_ms;
    }
    oss << "}";
  }
  oss << "\n";
  for (const auto& c : children) oss << c->Explain(indent + 1);
  return oss.str();
}

PlanNodePtr MakeScanNode(std::string global_name, std::string source,
                         std::string exported_name, SchemaPtr schema) {
  auto node = std::make_shared<PlanNode>(PlanKind::kSourceScan);
  node->scan_global_name = std::move(global_name);
  node->scan_source = std::move(source);
  node->scan_exported_name = std::move(exported_name);
  node->output_schema = std::move(schema);
  return node;
}

PlanNodePtr MakeVirtualScanNode(std::string name, SchemaPtr schema) {
  auto node = std::make_shared<PlanNode>(PlanKind::kVirtualScan);
  node->scan_global_name = std::move(name);
  node->output_schema = std::move(schema);
  return node;
}

PlanNodePtr MakeFilterNode(PlanNodePtr child, ExprPtr predicate) {
  auto node = std::make_shared<PlanNode>(PlanKind::kFilter);
  node->output_schema = child->output_schema;
  node->filter = std::move(predicate);
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeProjectNode(PlanNodePtr child, std::vector<ExprPtr> exprs,
                            std::vector<std::string> names) {
  auto node = std::make_shared<PlanNode>(PlanKind::kProject);
  std::vector<Field> fields;
  fields.reserve(exprs.size());
  for (size_t i = 0; i < exprs.size(); ++i) {
    const std::string name =
        i < names.size() && !names[i].empty() ? names[i]
                                              : exprs[i]->ToString();
    fields.emplace_back(name, exprs[i]->type);
  }
  node->output_schema = std::make_shared<Schema>(std::move(fields));
  node->projections = std::move(exprs);
  node->projection_names = std::move(names);
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeUnionAllNode(std::vector<PlanNodePtr> children,
                             SchemaPtr schema) {
  auto node = std::make_shared<PlanNode>(PlanKind::kUnionAll);
  node->output_schema = std::move(schema);
  node->children = std::move(children);
  return node;
}

PlanNodePtr MakeLimitNode(PlanNodePtr child, int64_t limit, int64_t offset) {
  auto node = std::make_shared<PlanNode>(PlanKind::kLimit);
  node->output_schema = child->output_schema;
  node->limit = limit;
  node->offset = offset;
  node->children.push_back(std::move(child));
  return node;
}

void VisitPlan(const PlanNodePtr& root,
               const std::function<void(const PlanNodePtr&)>& fn) {
  fn(root);
  for (const auto& c : root->children) VisitPlan(c, fn);
}

}  // namespace gisql
