/// \file cost_model.h
/// \brief Cardinality and cost estimation for the distributed planner.
///
/// Estimates flow from the catalog's imported table statistics. Costs
/// are expressed in simulated milliseconds, combining network transfer
/// (latency + bytes/bandwidth, per the configured default link) with
/// source and mediator CPU. Join ordering uses the classic C_out metric
/// (sum of intermediate cardinalities) derived from the same estimates.

#pragma once

#include "catalog/catalog.h"
#include "net/sim_network.h"
#include "planner/options.h"
#include "planner/plan.h"

namespace gisql {

/// \brief Tuning constants + link assumption for estimation.
struct CostParams {
  LinkSpec link;                      ///< assumed mediator↔source link
  double source_cpu_us_per_row = 0.05;
  double mediator_cpu_us_per_row = 0.05;
};

class CostModel {
 public:
  CostModel(const Catalog& catalog, CostParams params)
      : catalog_(catalog), params_(params) {}

  /// \brief Fills est_rows / est_bytes / est_cost_ms on every node
  /// (bottom-up). Safe to call on both logical and decomposed plans.
  void Annotate(const PlanNodePtr& root) const;

  /// \brief Estimated selectivity in [0, 1] of a predicate over
  /// `input`'s output rows, using column statistics when they can be
  /// traced to a base table. Always clamped: composed estimates (NOT
  /// over an inflated child, AND/OR over mixed defaults) can stray
  /// outside the unit interval and a negative selectivity corrupts
  /// every cardinality above it.
  double EstimateSelectivity(const Expr& pred, const PlanNode& input) const;

  /// \brief Estimated distinct count of column `col` of `node`'s output,
  /// or 0 when unknown.
  int64_t EstimateDistinct(const PlanNode& node, size_t col) const;

  /// \brief Per-column statistics if the column traces to a base table
  /// column through filters/projections/joins; nullptr otherwise.
  const ColumnStats* TraceColumnStats(const PlanNode& node,
                                      size_t col) const;

  const CostParams& params() const { return params_; }

 private:
  /// Unclamped recursive body of EstimateSelectivity.
  double EstimateSelectivityImpl(const Expr& pred,
                                 const PlanNode& input) const;
  double EstimateRows(const PlanNode& node) const;

  const Catalog& catalog_;
  CostParams params_;
};

}  // namespace gisql
