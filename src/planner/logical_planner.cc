#include "planner/logical_planner.h"

#include "catalog/system_tables.h"
#include "common/string_util.h"
#include "expr/binder.h"
#include "expr/eval.h"

namespace gisql {

namespace {

/// Extracts equi-join keys from a bound ON condition over the
/// concatenated (left ++ right) schema. Conjuncts of the form
/// `leftcol = rightcol` become key pairs; everything else is residual.
void ExtractJoinKeys(const ExprPtr& condition, size_t left_width,
                     size_t total_width, std::vector<size_t>* left_keys,
                     std::vector<size_t>* right_keys, ExprPtr* residual) {
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(condition, &conjuncts);
  std::vector<ExprPtr> residuals;
  for (const auto& c : conjuncts) {
    bool is_key = false;
    if (c->kind == ExprKind::kCompare && c->compare_op == CompareOp::kEq) {
      // Unwrap binder-inserted casts on either side: a cast around a bare
      // column is still usable as a hash key because Value::Hash is
      // numeric-representation independent.
      auto unwrap = [](const ExprPtr& e) -> const Expr* {
        const Expr* p = e.get();
        while (p->kind == ExprKind::kCast) p = p->children[0].get();
        return p;
      };
      const Expr* l = unwrap(c->children[0]);
      const Expr* r = unwrap(c->children[1]);
      if (l->kind == ExprKind::kColumn && r->kind == ExprKind::kColumn) {
        const size_t li = l->column_index;
        const size_t ri = r->column_index;
        if (li < left_width && ri >= left_width && ri < total_width) {
          left_keys->push_back(li);
          right_keys->push_back(ri - left_width);
          is_key = true;
        } else if (ri < left_width && li >= left_width &&
                   li < total_width) {
          left_keys->push_back(ri);
          right_keys->push_back(li - left_width);
          is_key = true;
        }
      }
    }
    if (!is_key) residuals.push_back(c);
  }
  if (!residuals.empty()) {
    *residual = ConjoinAll(std::move(residuals));
  }
}

/// Splits an AST predicate into top-level AND conjuncts (no cloning;
/// pointers reference the original tree).
void SplitAstConjuncts(const sql::ParseExpr* e,
                       std::vector<const sql::ParseExpr*>* out) {
  if (e->kind == sql::ParseExprKind::kBinary &&
      e->op == sql::ParseBinaryOp::kAnd) {
    SplitAstConjuncts(e->children[0].get(), out);
    SplitAstConjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

std::string DisplayName(const sql::SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  // A bare column reference displays as its unqualified name.
  if (item.expr->kind == sql::ParseExprKind::kColumnRef) {
    return item.expr->name;
  }
  return item.expr->ToString();
}

}  // namespace

Result<PlanNodePtr> LogicalPlanner::PlanNamedTable(const std::string& name,
                                                   const std::string& alias) {
  const std::string qualifier = alias.empty() ? name : alias;
  // The reserved gis.* prefix resolves against the system-table
  // provider before ordinary tables and views: a mediator-local
  // snapshot, never remote.
  if (IsSystemTableName(name) && catalog_.system_tables() != nullptr) {
    const SystemTableProvider& sys = *catalog_.system_tables();
    const std::string canonical = ToLower(name);
    if (!sys.HasTable(canonical)) {
      return Status::BindError("system table '", name,
                               "' not found (known: gis.sources, "
                               "gis.metrics, gis.histograms, gis.queries)");
    }
    GISQL_ASSIGN_OR_RETURN(SchemaPtr base, sys.TableSchema(canonical));
    auto schema = std::make_shared<Schema>(base->WithQualifier(qualifier));
    auto node = MakeVirtualScanNode(canonical, schema);
    node->est_rows = 64.0;  // snapshots are small; a flat guess suffices
    return node;
  }
  if (catalog_.HasTable(name)) {
    GISQL_ASSIGN_OR_RETURN(const TableMapping* t, catalog_.GetTable(name));
    auto schema =
        std::make_shared<Schema>(t->schema->WithQualifier(qualifier));
    auto node = MakeScanNode(t->global_name, t->source_name,
                             t->exported_name, schema);
    node->est_rows = static_cast<double>(t->stats.row_count);
    return node;
  }
  if (catalog_.HasView(name)) {
    GISQL_ASSIGN_OR_RETURN(const GlobalView* view, catalog_.GetView(name));
    if (view->replicated) {
      // Read one replica: prefer the lowest latency hint, then the
      // smallest copy (cheap tiebreak for stats drift between replicas).
      const TableMapping* best = nullptr;
      double best_rank = 0;
      for (const auto& member : view->members) {
        GISQL_ASSIGN_OR_RETURN(const TableMapping* t,
                               catalog_.GetTable(member));
        GISQL_ASSIGN_OR_RETURN(const SourceInfo* src,
                               catalog_.GetSource(t->source_name));
        const double rank = src->latency_hint_ms * 1e9 +
                            static_cast<double>(t->stats.row_count);
        if (best == nullptr || rank < best_rank) {
          best = t;
          best_rank = rank;
        }
      }
      auto schema = std::make_shared<Schema>(
          view->schema->WithQualifier(qualifier));
      auto node = MakeScanNode(best->global_name, best->source_name,
                               best->exported_name, schema);
      node->est_rows = static_cast<double>(best->stats.row_count);
      for (const auto& member : view->members) {
        GISQL_ASSIGN_OR_RETURN(const TableMapping* t,
                               catalog_.GetTable(member));
        if (t == best) continue;
        node->scan_alternates.push_back(
            {t->source_name, t->exported_name, t->global_name});
      }
      return node;
    }
    std::vector<PlanNodePtr> members;
    double total_rows = 0;
    for (const auto& member : view->members) {
      GISQL_ASSIGN_OR_RETURN(const TableMapping* t,
                             catalog_.GetTable(member));
      // Each member scan adopts the *view* column names so filters bound
      // against the view schema remain valid per member.
      auto member_schema = std::make_shared<Schema>(
          view->schema->WithQualifier(qualifier));
      auto scan = MakeScanNode(t->global_name, t->source_name,
                               t->exported_name, member_schema);
      scan->est_rows = static_cast<double>(t->stats.row_count);
      total_rows += scan->est_rows;
      members.push_back(std::move(scan));
    }
    auto schema =
        std::make_shared<Schema>(view->schema->WithQualifier(qualifier));
    if (members.size() == 1) {
      return members[0];
    }
    auto node = MakeUnionAllNode(std::move(members), schema);
    node->est_rows = total_rows;
    return node;
  }
  return Status::BindError("table or view '", name,
                           "' not found in the global catalog");
}

Result<PlanNodePtr> LogicalPlanner::PlanJoin(const sql::TableRef& ref) {
  GISQL_ASSIGN_OR_RETURN(PlanNodePtr left, PlanTableRef(*ref.left));
  GISQL_ASSIGN_OR_RETURN(PlanNodePtr right, PlanTableRef(*ref.right));

  Schema concat = left->output_schema->Concat(*right->output_schema);
  auto node = std::make_shared<PlanNode>(PlanKind::kJoin);
  node->join_type = ref.join_type == sql::TableRef::JoinType::kLeft
                        ? JoinType::kLeft
                        : JoinType::kInner;
  if (node->join_type == JoinType::kLeft) {
    // Right side columns become nullable in the output.
    std::vector<Field> fields = concat.fields();
    for (size_t i = left->output_schema->num_fields(); i < fields.size();
         ++i) {
      fields[i].nullable = true;
    }
    concat = Schema(std::move(fields));
  }
  node->output_schema = std::make_shared<Schema>(concat);

  if (ref.on_condition) {
    Binder binder(*node->output_schema);
    GISQL_ASSIGN_OR_RETURN(ExprPtr cond,
                           binder.BindScalar(*ref.on_condition));
    if (cond->type != TypeId::kBool && cond->type != TypeId::kNull) {
      return Status::BindError("join condition must be boolean");
    }
    ExtractJoinKeys(cond, left->output_schema->num_fields(),
                    node->output_schema->num_fields(), &node->left_keys,
                    &node->right_keys, &node->join_residual);
  } else if (node->join_type == JoinType::kLeft) {
    return Status::BindError("LEFT JOIN requires an ON condition");
  }
  node->children = {std::move(left), std::move(right)};
  return node;
}

Result<PlanNodePtr> LogicalPlanner::PlanTableRef(const sql::TableRef& ref) {
  switch (ref.kind) {
    case sql::TableRef::Kind::kNamed:
      return PlanNamedTable(ref.table_name, ref.alias);
    case sql::TableRef::Kind::kDerived: {
      GISQL_ASSIGN_OR_RETURN(PlanNodePtr sub, Plan(*ref.derived));
      // Re-qualify the derived table's output columns with its alias.
      auto schema = std::make_shared<Schema>(
          sub->output_schema->WithQualifier(ref.alias));
      sub->output_schema = schema;
      return sub;
    }
    case sql::TableRef::Kind::kJoin:
      return PlanJoin(ref);
  }
  return Status::Internal("unreachable table-ref kind");
}

Result<std::vector<sql::SelectItem>> LogicalPlanner::ExpandStars(
    const sql::SelectStmt& stmt, const Schema& input) const {
  std::vector<sql::SelectItem> items;
  for (const auto& item : stmt.items) {
    if (item.expr->kind != sql::ParseExprKind::kStar) {
      sql::SelectItem copy;
      copy.expr = item.expr->Clone();
      copy.alias = item.alias;
      items.push_back(std::move(copy));
      continue;
    }
    const std::string& qual = item.expr->qualifier;
    bool any = false;
    for (const auto& f : input.fields()) {
      if (!qual.empty() && !EqualsIgnoreCase(f.qualifier, qual)) continue;
      any = true;
      sql::SelectItem expanded;
      auto ref = std::make_unique<sql::ParseExpr>(
          sql::ParseExprKind::kColumnRef);
      ref->qualifier = f.qualifier;
      ref->name = f.name;
      expanded.expr = std::move(ref);
      items.push_back(std::move(expanded));
    }
    if (!any) {
      return Status::BindError("'", qual,
                               ".*' matches no columns in scope");
    }
  }
  return items;
}

Result<PlanNodePtr> LogicalPlanner::Plan(const sql::SelectStmt& stmt) {
  if (!stmt.union_all_terms.empty()) return PlanUnion(stmt);
  return PlanCore(stmt, /*with_order_limit=*/true);
}

Result<PlanNodePtr> LogicalPlanner::PlanUnion(const sql::SelectStmt& stmt) {
  GISQL_ASSIGN_OR_RETURN(PlanNodePtr first,
                         PlanCore(stmt, /*with_order_limit=*/false));
  std::vector<PlanNodePtr> terms;
  terms.push_back(std::move(first));
  for (const auto& term_stmt : stmt.union_all_terms) {
    if (!term_stmt->union_all_terms.empty()) {
      return Status::Internal("nested union chain in AST");
    }
    GISQL_ASSIGN_OR_RETURN(PlanNodePtr term,
                           PlanCore(*term_stmt, false));
    if (!terms[0]->output_schema->UnionCompatible(*term->output_schema)) {
      return Status::BindError(
          "UNION ALL terms are not union-compatible: ",
          terms[0]->output_schema->ToString(), " vs ",
          term->output_schema->ToString());
    }
    terms.push_back(std::move(term));
  }
  // The union takes the first term's column names and types.
  SchemaPtr schema = terms[0]->output_schema;
  PlanNodePtr plan = MakeUnionAllNode(std::move(terms), schema);

  // Trailing ORDER BY binds against the union's output columns.
  if (!stmt.order_by.empty()) {
    auto sort = std::make_shared<PlanNode>(PlanKind::kSort);
    sort->output_schema = schema;
    Binder binder(*schema);
    for (const auto& ob : stmt.order_by) {
      GISQL_ASSIGN_OR_RETURN(ExprPtr bound, binder.BindScalar(*ob.expr));
      const Expr* e = bound.get();
      while (e->kind == ExprKind::kCast) e = e->children[0].get();
      if (e->kind != ExprKind::kColumn) {
        return Status::BindError(
            "ORDER BY after UNION ALL must reference output columns");
      }
      sort->sort_columns.push_back(e->column_index);
      sort->sort_ascending.push_back(ob.ascending);
    }
    sort->children.push_back(std::move(plan));
    plan = sort;
  }
  if (stmt.limit >= 0 || stmt.offset > 0) {
    plan = MakeLimitNode(std::move(plan), stmt.limit, stmt.offset);
  }
  return plan;
}

Result<PlanNodePtr> LogicalPlanner::PlanCore(const sql::SelectStmt& stmt,
                                             bool with_order_limit) {
  static const std::vector<sql::OrderByItem> kNoOrder;
  const std::vector<sql::OrderByItem>& order_by_items =
      with_order_limit ? stmt.order_by : kNoOrder;
  const int64_t stmt_limit = with_order_limit ? stmt.limit : -1;
  const int64_t stmt_offset = with_order_limit ? stmt.offset : 0;

  // 1. FROM.
  PlanNodePtr plan;
  if (stmt.from) {
    GISQL_ASSIGN_OR_RETURN(plan, PlanTableRef(*stmt.from));
  } else {
    auto values = std::make_shared<PlanNode>(PlanKind::kValues);
    values->output_schema = std::make_shared<Schema>();
    values->values_rows.push_back(Row{});
    plan = values;
  }
  const SchemaPtr input_schema = plan->output_schema;
  Binder binder(*input_schema);

  // 2. WHERE. IN (SELECT ...) conjuncts become distinct-semijoins:
  //    plan ⋈ DISTINCT(subquery) on probe = subquery-column. The joined
  //    column is appended on the right, so left column indexes — and
  //    therefore every other binding against `input_schema` — stay
  //    valid.
  if (stmt.where) {
    if (Binder::ContainsAggregate(*stmt.where)) {
      return Status::BindError("aggregates are not allowed in WHERE");
    }
    std::vector<const sql::ParseExpr*> conjuncts;
    SplitAstConjuncts(stmt.where.get(), &conjuncts);
    std::vector<ExprPtr> plain;
    for (const sql::ParseExpr* conjunct : conjuncts) {
      if (conjunct->kind != sql::ParseExprKind::kInSubquery) {
        GISQL_ASSIGN_OR_RETURN(ExprPtr bound,
                               binder.BindScalar(*conjunct));
        plain.push_back(std::move(bound));
        continue;
      }
      GISQL_ASSIGN_OR_RETURN(ExprPtr probe,
                             binder.BindScalar(*conjunct->children[0]));
      const Expr* probe_col = probe.get();
      while (probe_col->kind == ExprKind::kCast) {
        probe_col = probe_col->children[0].get();
      }
      if (probe_col->kind != ExprKind::kColumn) {
        return Status::NotImplemented(
            "the left side of IN (SELECT ...) must be a column");
      }
      GISQL_ASSIGN_OR_RETURN(PlanNodePtr sub, Plan(*conjunct->subquery));
      if (sub->output_schema->num_fields() != 1) {
        return Status::BindError(
            "IN subquery must produce exactly one column, got ",
            sub->output_schema->num_fields());
      }
      if (!IsImplicitlyCastable(sub->output_schema->field(0).type,
                                probe_col->type) &&
          !IsImplicitlyCastable(probe_col->type,
                                sub->output_schema->field(0).type)) {
        return Status::BindError(
            "IN subquery column type ",
            TypeName(sub->output_schema->field(0).type),
            " is incompatible with probe type ",
            TypeName(probe_col->type));
      }
      auto distinct = std::make_shared<PlanNode>(PlanKind::kDistinct);
      distinct->output_schema = sub->output_schema;
      distinct->children.push_back(std::move(sub));

      auto join = std::make_shared<PlanNode>(PlanKind::kJoin);
      if (conjunct->negated) {
        // Null-aware anti-join: output keeps only the left columns.
        join->join_type = JoinType::kAnti;
        join->output_schema = plan->output_schema;
      } else {
        join->join_type = JoinType::kInner;
        join->output_schema = std::make_shared<Schema>(
            plan->output_schema->Concat(*distinct->output_schema));
      }
      join->left_keys.push_back(probe_col->column_index);
      join->right_keys.push_back(0);
      join->children = {std::move(plan), std::move(distinct)};
      plan = join;
    }
    if (!plain.empty()) {
      ExprPtr pred = ConjoinAll(std::move(plain));
      if (pred->type != TypeId::kBool && pred->type != TypeId::kNull) {
        return Status::BindError("WHERE clause must be boolean");
      }
      plan = MakeFilterNode(std::move(plan), std::move(pred));
    }
  }

  // 3. Star expansion over the FROM schema.
  GISQL_ASSIGN_OR_RETURN(std::vector<sql::SelectItem> items,
                         ExpandStars(stmt, *input_schema));
  if (items.empty()) return Status::BindError("empty select list");

  // 4. Aggregation decision.
  bool has_agg = !stmt.group_by.empty();
  for (const auto& item : items) {
    if (Binder::ContainsAggregate(*item.expr)) has_agg = true;
  }
  if (stmt.having && !has_agg) {
    return Status::BindError("HAVING requires GROUP BY or aggregates");
  }
  for (const auto& ob : order_by_items) {
    if (Binder::ContainsAggregate(*ob.expr) && !has_agg) {
      return Status::BindError(
          "aggregate in ORDER BY without aggregation context");
    }
  }

  std::vector<ExprPtr> select_exprs;
  std::vector<std::string> select_names;
  // The space S select/order/having expressions are bound in:
  //  - aggregated query: the virtual schema [groups..., aggregates...]
  //  - plain query: the FROM/WHERE output schema
  std::vector<ExprPtr> group_exprs;
  std::vector<BoundAggregate> aggs;

  if (has_agg) {
    for (const auto& g_ast : stmt.group_by) {
      if (Binder::ContainsAggregate(*g_ast)) {
        return Status::BindError("aggregates are not allowed in GROUP BY");
      }
      GISQL_ASSIGN_OR_RETURN(ExprPtr g, binder.BindScalar(*g_ast));
      group_exprs.push_back(std::move(g));
    }
    for (const auto& item : items) {
      GISQL_ASSIGN_OR_RETURN(
          ExprPtr e, binder.BindProjection(*item.expr, group_exprs, &aggs));
      select_exprs.push_back(std::move(e));
      select_names.push_back(DisplayName(item));
    }
  } else {
    for (const auto& item : items) {
      GISQL_ASSIGN_OR_RETURN(ExprPtr e, binder.BindScalar(*item.expr));
      select_exprs.push_back(std::move(e));
      select_names.push_back(DisplayName(item));
    }
  }

  ExprPtr having_pred;
  if (stmt.having) {
    GISQL_ASSIGN_OR_RETURN(
        having_pred, binder.BindProjection(*stmt.having, group_exprs, &aggs));
    if (having_pred->type != TypeId::kBool &&
        having_pred->type != TypeId::kNull) {
      return Status::BindError("HAVING clause must be boolean");
    }
  }

  // Bind ORDER BY in space S; also match select aliases.
  struct BoundOrderItem {
    ExprPtr expr;  ///< in space S; null when select_index is set
    int64_t select_index = -1;
    bool ascending = true;
  };
  std::vector<BoundOrderItem> order_items;
  for (const auto& ob : order_by_items) {
    BoundOrderItem item;
    item.ascending = ob.ascending;
    // Alias reference?
    if (ob.expr->kind == sql::ParseExprKind::kColumnRef &&
        ob.expr->qualifier.empty()) {
      for (size_t i = 0; i < select_names.size(); ++i) {
        if (EqualsIgnoreCase(select_names[i], ob.expr->name)) {
          item.select_index = static_cast<int64_t>(i);
          break;
        }
      }
    }
    if (item.select_index < 0) {
      Result<ExprPtr> bound =
          has_agg ? binder.BindProjection(*ob.expr, group_exprs, &aggs)
                  : binder.BindScalar(*ob.expr);
      GISQL_RETURN_NOT_OK(bound.status());
      // Structural match against a select expression?
      for (size_t i = 0; i < select_exprs.size(); ++i) {
        if (select_exprs[i]->Equals(**bound)) {
          item.select_index = static_cast<int64_t>(i);
          break;
        }
      }
      if (item.select_index < 0) item.expr = *bound;
    }
    order_items.push_back(std::move(item));
  }

  // 5. Build the aggregate node.
  if (has_agg) {
    auto agg_node = std::make_shared<PlanNode>(PlanKind::kAggregate);
    std::vector<Field> v_fields;
    for (const auto& g : group_exprs) {
      v_fields.emplace_back(g->ToString(), g->type);
    }
    for (const auto& a : aggs) {
      v_fields.emplace_back(a.display, a.result_type);
    }
    agg_node->output_schema = std::make_shared<Schema>(std::move(v_fields));
    agg_node->group_by = group_exprs;
    agg_node->aggregates = aggs;
    agg_node->children.push_back(std::move(plan));
    plan = agg_node;
    if (having_pred) {
      plan = MakeFilterNode(std::move(plan), std::move(having_pred));
    }
  }

  // 6. Projection (+ hidden sort columns).
  std::vector<ExprPtr> proj_exprs = select_exprs;
  std::vector<std::string> proj_names = select_names;
  size_t hidden = 0;
  for (auto& item : order_items) {
    if (item.select_index >= 0) continue;
    item.select_index = static_cast<int64_t>(proj_exprs.size());
    proj_exprs.push_back(item.expr);
    proj_names.push_back("$sort" + std::to_string(hidden++));
  }
  if (stmt.distinct && hidden > 0) {
    return Status::BindError(
        "ORDER BY expressions must appear in the select list when "
        "DISTINCT is used");
  }
  plan = MakeProjectNode(std::move(plan), proj_exprs, proj_names);

  // 7. DISTINCT.
  if (stmt.distinct) {
    auto distinct = std::make_shared<PlanNode>(PlanKind::kDistinct);
    distinct->output_schema = plan->output_schema;
    distinct->children.push_back(std::move(plan));
    plan = distinct;
  }

  // 8. Sort.
  if (!order_items.empty()) {
    auto sort = std::make_shared<PlanNode>(PlanKind::kSort);
    sort->output_schema = plan->output_schema;
    for (const auto& item : order_items) {
      sort->sort_columns.push_back(static_cast<size_t>(item.select_index));
      sort->sort_ascending.push_back(item.ascending);
    }
    sort->children.push_back(std::move(plan));
    plan = sort;
  }

  // Drop hidden sort columns.
  if (hidden > 0) {
    std::vector<ExprPtr> keep;
    std::vector<std::string> keep_names;
    for (size_t i = 0; i < select_exprs.size(); ++i) {
      keep.push_back(MakeColumn(i, plan->output_schema->field(i).type,
                                select_names[i]));
      keep_names.push_back(select_names[i]);
    }
    plan = MakeProjectNode(std::move(plan), std::move(keep),
                           std::move(keep_names));
  }

  // 9. LIMIT / OFFSET.
  if (stmt_limit >= 0 || stmt_offset > 0) {
    plan = MakeLimitNode(std::move(plan), stmt_limit, stmt_offset);
  }
  return plan;
}

}  // namespace gisql
