/// \file options.h
/// \brief Planner/optimizer switches. The benches use these to realize
/// the paper's baselines (ship-everything vs. pushdown vs. full).

#pragma once

#include <cstdint>

namespace gisql {

/// \brief Join enumeration algorithms (experiment E5).
enum class JoinOrdering : uint8_t {
  kAsWritten,  ///< keep the FROM-clause order (left-deep)
  kGreedy,     ///< smallest-intermediate-first heuristic
  kDp,         ///< dynamic programming over connected subsets (≤ 10 rels)
  kWorst,      ///< adversarial: largest-intermediate-first (baseline)
};

/// \brief All planner knobs with production defaults.
struct PlannerOptions {
  bool enable_filter_pushdown = true;      ///< push filters into fragments
  bool enable_projection_pushdown = true;  ///< prune columns at sources
  bool enable_aggregate_pushdown = true;   ///< partial aggregation at sources
  bool enable_limit_pushdown = true;
  bool enable_semijoin = true;             ///< semijoin-reduced joins
  /// Skip the cost-based choice and semijoin-reduce every eligible join
  /// (used by the ablation benches to measure both sides of the
  /// crossover).
  bool force_semijoin = false;
  bool enable_constant_folding = true;
  JoinOrdering join_ordering = JoinOrdering::kDp;

  /// Convert sargable range predicates on an ordered-indexed column
  /// into index range scans at capable sources
  /// (GISQL_INDEX_RANGE_SCAN).
  bool enable_index_range_scan = true;
  /// Collapse a co-located equi-join into a source-side index-nested-
  /// loop join when the inner side is indexed on the join key
  /// (GISQL_INDEX_JOIN).
  bool enable_index_join = true;

  /// Semijoin reduction ships at most this many distinct keys.
  int64_t semijoin_max_keys = 100000;

  /// Mediator CPU cost per row for local operators (simulated µs).
  double mediator_cpu_us_per_row = 0.05;

  /// Dispatch independent remote fetches on worker threads (wall-clock
  /// only; simulated time and results are identical either way).
  bool parallel_execution = true;

  /// Size of the bounded executor worker pool; 0 picks
  /// hardware_concurrency (minimum 2). The pool is created once per
  /// GlobalSystem and shared by every query.
  int worker_threads = 0;

  /// Fetch fragments with the columnar wire encoding (off = classic
  /// row encoding; results identical, bytes on the wire differ).
  bool columnar_wire = true;

  /// Run vectorized kernels over columnar fragment results at the
  /// mediator (off = row-at-a-time everywhere; results identical).
  bool vectorized_execution = true;

  /// \name Resource governance (src/sched/, DESIGN.md "Resource
  /// governance"). Environment overrides: see ApplyEnv().
  /// @{

  /// Gate queries through the admission controller. Closed-loop
  /// clients (each query submitted after the previous finishes) never
  /// queue, so the default is free for them; open-loop load sees
  /// bounded queueing and shedding.
  bool admission_control = true;
  /// Concurrency slots (GISQL_MAX_CONCURRENT).
  int max_concurrent_queries = 8;
  /// Bounded wait queue across priority classes (GISQL_ADMISSION_QUEUE).
  int admission_queue_limit = 32;
  /// Default queue-wait deadline; arrivals whose computed wait exceeds
  /// it are shed up front (GISQL_ADMISSION_WAIT_MS).
  double admission_max_wait_ms = 1000.0;
  /// Per-query materialization budget (GISQL_QUERY_MEM_BYTES).
  int64_t query_mem_bytes = 256LL << 20;
  /// Mediator-wide budget across in-flight queries
  /// (GISQL_MEDIATOR_MEM_BYTES).
  int64_t mediator_mem_bytes = 1LL << 30;
  /// Per-source circuit breakers (GISQL_CIRCUIT_BREAKER). Off by
  /// default: skipping a source changes which attempts reach the
  /// network, so it is an explicit operational choice, not a silent
  /// one.
  bool circuit_breaker = false;
  /// Consecutive failures that open a breaker (GISQL_BREAKER_FAILURES).
  int breaker_open_failures = 5;
  /// Skipped requests while open before half-open probing resumes
  /// (GISQL_BREAKER_COOLDOWN).
  int breaker_cooldown_skips = 3;
  /// Fraction of half-open requests admitted as probes
  /// (GISQL_BREAKER_PROBE_RATIO).
  double breaker_probe_ratio = 0.5;
  /// Seed for the half-open probe draws (GISQL_BREAKER_SEED).
  uint64_t breaker_seed = 17;
  /// Demote suspect sources behind their healthy replicas when
  /// ordering failover candidates (GISQL_HEALTH_ROUTING). Ordering is
  /// unchanged while every candidate is healthy.
  bool health_aware_routing = true;
  /// @}

  /// \name Cursor-based streaming (wire/cursor.h, core/cursor_manager.h)
  /// @{

  /// Rows per fetched chunk — the unit the per-query memory footprint
  /// shrinks to under streaming (GISQL_CURSOR_CHUNK_ROWS).
  int64_t cursor_chunk_rows = 1024;
  /// Idle lease on the simulated clock: a cursor not fetched within
  /// this window expires on the next cursor call, releasing its memory
  /// grant and source-side staging (GISQL_CURSOR_LEASE_MS).
  double cursor_lease_ms = 30000.0;
  /// Concurrently open mediator cursors; opens past it are shed with
  /// Overloaded (GISQL_CURSOR_MAX_OPEN).
  int cursor_max_open = 64;
  /// @}

  /// \name Global transactions (txn/transaction_manager.h)
  /// @{

  /// Concurrently active global transactions; Begins past it are shed
  /// with Overloaded (GISQL_TXN_MAX_ACTIVE).
  int txn_max_active = 256;
  /// Prepare attempts per TxnWrite statement when deadlock resolution
  /// aborts another victim and retries (GISQL_TXN_MAX_RETRIES).
  int txn_max_prepare_retries = 8;
  /// Piggyback the MVCC GC watermark on 2PC commits so sources reclaim
  /// row versions no snapshot can reach (GISQL_TXN_GC).
  bool txn_gc = true;
  /// @}

  /// \name Workload intelligence (src/obs/, DESIGN.md "Workload
  /// intelligence")
  /// @{

  /// Evaluate SLO objectives on every statement (GISQL_SLO_ENABLED).
  /// The engine is cheap (one deque append + two window scans), so it
  /// stays on by default.
  bool slo_enabled = true;
  /// Fast error-budget window, simulated ms (GISQL_SLO_FAST_WINDOW_MS).
  double slo_fast_window_ms = 5000.0;
  /// Slow error-budget window, simulated ms (GISQL_SLO_SLOW_WINDOW_MS).
  double slo_slow_window_ms = 60000.0;
  /// Burn-rate threshold: an alert latches when BOTH windows burn at
  /// or above it (GISQL_SLO_BURN_ALERT).
  double slo_burn_alert = 2.0;
  /// Capture incident snapshots on deterministic triggers
  /// (GISQL_FLIGHT_RECORDER).
  bool flight_recorder = true;
  /// Recent-query frames retained in the recorder ring
  /// (GISQL_FLIGHT_RING).
  int flight_ring = 64;
  /// Incidents retained; older ones age out (GISQL_FLIGHT_MAX_INCIDENTS).
  int flight_max_incidents = 16;
  /// Minimum simulated ms between captures of the same trigger kind
  /// (GISQL_FLIGHT_COOLDOWN_MS).
  double flight_cooldown_ms = 10000.0;
  /// Sheds within the spike window that trigger a capture
  /// (GISQL_FLIGHT_SHED_SPIKE).
  int flight_shed_spike = 10;
  /// The shed-spike rolling window, simulated ms
  /// (GISQL_FLIGHT_SHED_WINDOW_MS).
  double flight_shed_window_ms = 1000.0;
  /// Distinct tenants tracked individually before folding into the
  /// "~other" bucket (GISQL_TENANT_MAX_TRACKED).
  int tenant_max_tracked = 4096;
  /// @}

  /// \name Self-driving advisor (src/advisor/, DESIGN.md "Self-driving
  /// mediator")
  /// @{

  /// Run the background advisor (GISQL_ADVISOR). Off by default:
  /// the advisor *acts* — it creates replicas, retargets routing, and
  /// retunes admission — so closing the loop is an explicit choice,
  /// the same stance as circuit_breaker. GISQL_ADVISOR_KILL=1 is the
  /// operational kill switch: it forces the advisor off even when this
  /// flag was enabled programmatically.
  bool advisor_enabled = false;
  /// Simulated ms between advisor ticks (GISQL_ADVISOR_INTERVAL_MS).
  double advisor_interval_ms = 500.0;
  /// Observation window the policies read, simulated ms
  /// (GISQL_ADVISOR_WINDOW_MS).
  double advisor_window_ms = 2000.0;
  /// Executions of one fingerprint within the window that make the
  /// template "hot" (GISQL_ADVISOR_HOT_THRESHOLD).
  int advisor_hot_threshold = 8;
  /// Materialized-view budget: replicated views the advisor may own at
  /// once (GISQL_ADVISOR_MAX_VIEWS).
  int advisor_max_views = 2;
  /// Minimum modeled per-query gain before a materialization or
  /// placement action is worth its copy cost, simulated ms
  /// (GISQL_ADVISOR_MIN_GAIN_MS).
  double advisor_min_gain_ms = 1.0;
  /// Consecutive ticks a materialized view may go unused before the
  /// advisor evicts it (GISQL_ADVISOR_COLD_TICKS).
  int advisor_cold_ticks = 8;
  /// Bounded decision log capacity, entries (GISQL_ADVISOR_LOG).
  int advisor_log_capacity = 256;
  /// Sub-policy switches (GISQL_ADVISOR_MATERIALIZE / _PLACEMENT /
  /// _TUNE): auto-materialization of hot templates, replica placement
  /// toward cheap healthy sites, and admission/memory auto-tuning.
  bool advisor_materialize = true;
  bool advisor_placement = true;
  bool advisor_tune = true;
  /// @}

  /// \brief Overrides governance knobs from GISQL_* environment
  /// variables (unset or unparsable values keep the field). Mirrors
  /// the GISQL_LOG_LEVEL convention: the env never *breaks* a run, it
  /// only tunes it.
  void ApplyEnv();

  /// \brief Defaults with ApplyEnv() applied.
  static PlannerOptions FromEnv();

  /// \brief The pre-mediator baseline: fetch whole tables, do all work
  /// centrally.
  static PlannerOptions ShipEverything() {
    PlannerOptions o;
    o.enable_filter_pushdown = false;
    o.enable_projection_pushdown = false;
    o.enable_aggregate_pushdown = false;
    o.enable_limit_pushdown = false;
    o.enable_semijoin = false;
    o.enable_index_range_scan = false;
    o.enable_index_join = false;
    o.join_ordering = JoinOrdering::kAsWritten;
    return o;
  }

  /// \brief Filter pushdown only (the minimal mediator).
  static PlannerOptions FilterPushdownOnly() {
    PlannerOptions o = ShipEverything();
    o.enable_filter_pushdown = true;
    return o;
  }

  /// \brief Everything on (the paper's full proposal).
  static PlannerOptions Full() { return PlannerOptions{}; }
};

}  // namespace gisql
