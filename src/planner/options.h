/// \file options.h
/// \brief Planner/optimizer switches. The benches use these to realize
/// the paper's baselines (ship-everything vs. pushdown vs. full).

#pragma once

#include <cstdint>

namespace gisql {

/// \brief Join enumeration algorithms (experiment E5).
enum class JoinOrdering : uint8_t {
  kAsWritten,  ///< keep the FROM-clause order (left-deep)
  kGreedy,     ///< smallest-intermediate-first heuristic
  kDp,         ///< dynamic programming over connected subsets (≤ 10 rels)
  kWorst,      ///< adversarial: largest-intermediate-first (baseline)
};

/// \brief All planner knobs with production defaults.
struct PlannerOptions {
  bool enable_filter_pushdown = true;      ///< push filters into fragments
  bool enable_projection_pushdown = true;  ///< prune columns at sources
  bool enable_aggregate_pushdown = true;   ///< partial aggregation at sources
  bool enable_limit_pushdown = true;
  bool enable_semijoin = true;             ///< semijoin-reduced joins
  /// Skip the cost-based choice and semijoin-reduce every eligible join
  /// (used by the ablation benches to measure both sides of the
  /// crossover).
  bool force_semijoin = false;
  bool enable_constant_folding = true;
  JoinOrdering join_ordering = JoinOrdering::kDp;

  /// Semijoin reduction ships at most this many distinct keys.
  int64_t semijoin_max_keys = 100000;

  /// Mediator CPU cost per row for local operators (simulated µs).
  double mediator_cpu_us_per_row = 0.05;

  /// Dispatch independent remote fetches on worker threads (wall-clock
  /// only; simulated time and results are identical either way).
  bool parallel_execution = true;

  /// Size of the bounded executor worker pool; 0 picks
  /// hardware_concurrency (minimum 2). The pool is created once per
  /// GlobalSystem and shared by every query.
  int worker_threads = 0;

  /// Fetch fragments with the columnar wire encoding (off = classic
  /// row encoding; results identical, bytes on the wire differ).
  bool columnar_wire = true;

  /// Run vectorized kernels over columnar fragment results at the
  /// mediator (off = row-at-a-time everywhere; results identical).
  bool vectorized_execution = true;

  /// \brief The pre-mediator baseline: fetch whole tables, do all work
  /// centrally.
  static PlannerOptions ShipEverything() {
    PlannerOptions o;
    o.enable_filter_pushdown = false;
    o.enable_projection_pushdown = false;
    o.enable_aggregate_pushdown = false;
    o.enable_limit_pushdown = false;
    o.enable_semijoin = false;
    o.join_ordering = JoinOrdering::kAsWritten;
    return o;
  }

  /// \brief Filter pushdown only (the minimal mediator).
  static PlannerOptions FilterPushdownOnly() {
    PlannerOptions o = ShipEverything();
    o.enable_filter_pushdown = true;
    return o;
  }

  /// \brief Everything on (the paper's full proposal).
  static PlannerOptions Full() { return PlannerOptions{}; }
};

}  // namespace gisql
