/// \file optimizer.h
/// \brief Rule-based + cost-based rewrites over the logical plan.
///
/// Passes, in order:
///  1. constant folding over every expression;
///  2. filter pushdown — conjuncts migrate through projects, below
///     sorts/distinct, into both join inputs (inner; left-side only for
///     LEFT JOIN), through union-all into each member, merging into
///     existing filters, and cross-join equi-conjuncts are promoted to
///     join keys;
///  3. join reordering — maximal inner-join clusters are re-enumerated
///     by the configured algorithm (DP / greedy / as-written / worst)
///     using the cost model's cardinality estimates;
///  4. projection pruning — unused columns are dropped as close to the
///     scans as possible so the decomposer can push narrow projections
///     into the sources;
///  5. project fusion — adjacent Project nodes (left behind by join
///     reordering and pruning) compose into one.

#pragma once

#include "catalog/catalog.h"
#include "planner/cost_model.h"
#include "planner/options.h"
#include "planner/plan.h"

namespace gisql {

class Optimizer {
 public:
  Optimizer(const Catalog& catalog, const PlannerOptions& options,
            const CostModel* cost_model)
      : catalog_(catalog), options_(options), cost_(cost_model) {}

  Result<PlanNodePtr> Optimize(PlanNodePtr plan);

 private:
  // Pass 1.
  PlanNodePtr FoldAllConstants(PlanNodePtr node);

  // Pass 2.
  Result<PlanNodePtr> PushFilters(PlanNodePtr node,
                                  std::vector<ExprPtr> pending);

  // Pass 3.
  Result<PlanNodePtr> ReorderJoins(PlanNodePtr node);
  Result<PlanNodePtr> ReorderJoinCluster(PlanNodePtr join_root);

  // Pass 5: fuses Project(Project(x)) chains by substitution.
  Result<PlanNodePtr> FuseProjects(PlanNodePtr node);

  // Pass 4.
  struct Pruned {
    PlanNodePtr node;
    /// old output column index → new index (SIZE_MAX when dropped).
    std::vector<size_t> mapping;
  };
  Result<Pruned> PruneColumns(PlanNodePtr node,
                              const std::vector<bool>& used);
  Result<PlanNodePtr> PruneAll(PlanNodePtr root);

  const Catalog& catalog_;
  PlannerOptions options_;
  const CostModel* cost_;
};

}  // namespace gisql
