/// \file plan.h
/// \brief The mediator's query plan representation.
///
/// One node type serves as both logical and executable plan: the
/// planner builds it from the AST, the optimizer rewrites it, the
/// decomposer folds source-local work into kRemoteFragment leaves, and
/// the executor (exec/executor.h) interprets the result.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "expr/binder.h"
#include "types/row.h"
#include "expr/expr.h"
#include "source/fragment.h"
#include "types/schema.h"

namespace gisql {

enum class PlanKind : uint8_t {
  kValues,          ///< inline constant rows (SELECT without FROM)
  kSourceScan,      ///< logical scan of one global table (pre-decompose)
  kVirtualScan,     ///< mediator-local snapshot of a gis.* system table
  kRemoteFragment,  ///< executable: ship FragmentPlan to a source
  kUnionAll,        ///< concatenation of union-compatible children
  kFilter,          ///< predicate over child rows
  kProject,         ///< computed columns over child rows
  kJoin,            ///< binary join
  kAggregate,       ///< hash aggregation
  kSort,            ///< total order by key columns
  kLimit,           ///< limit/offset
  kDistinct,        ///< duplicate elimination over all columns
};

const char* PlanKindName(PlanKind k);

/// kAnti is the null-aware anti-join backing NOT IN (SELECT ...): it
/// outputs *left columns only* for rows with no right match, yields
/// nothing when the right side contains a NULL key, and drops NULL
/// probes — exactly SQL's NOT IN three-valued semantics.
enum class JoinType : uint8_t { kInner, kLeft, kAnti };

/// \brief Distributed join strategies (DESIGN.md E2/E8).
enum class JoinStrategy : uint8_t {
  kShip,      ///< fetch both sides, hash join at the mediator
  kSemijoin,  ///< fetch build side, reduce probe fragment by its keys,
              ///< then join at the mediator
};

struct PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

/// \brief One plan operator. Field groups are used per `kind`.
struct PlanNode {
  PlanKind kind;
  SchemaPtr output_schema;
  std::vector<PlanNodePtr> children;

  // kValues
  std::vector<Row> values_rows;

  // kSourceScan — identity of the scanned global table
  std::string scan_global_name;
  std::string scan_source;         ///< owning source host
  std::string scan_exported_name;  ///< table name at the source

  /// Replica alternates (replicated views): (source, exported, global)
  /// triples the executor may fail over to when the primary source is
  /// unreachable. Carried onto the RemoteFragment by the decomposer.
  struct ReplicaAlternate {
    std::string source;
    std::string exported_name;
    std::string global_name;
  };
  std::vector<ReplicaAlternate> scan_alternates;

  // kRemoteFragment
  std::string fragment_source;  ///< destination host
  FragmentPlan fragment;

  // kFilter (also residual join predicate below)
  ExprPtr filter;

  // kProject
  std::vector<ExprPtr> projections;
  std::vector<std::string> projection_names;

  // kJoin
  JoinType join_type = JoinType::kInner;
  JoinStrategy join_strategy = JoinStrategy::kShip;
  std::vector<size_t> left_keys;   ///< equi-join key columns (left child)
  std::vector<size_t> right_keys;  ///< equi-join key columns (right child)
  ExprPtr join_residual;           ///< non-equi condition over concat row

  // kAggregate
  std::vector<ExprPtr> group_by;            ///< over child schema
  std::vector<BoundAggregate> aggregates;   ///< over child schema

  // kSort
  std::vector<size_t> sort_columns;  ///< output-column indexes
  std::vector<bool> sort_ascending;

  // kLimit
  int64_t limit = -1;
  int64_t offset = 0;

  // Cost annotations (filled by the cost model).
  double est_rows = 0.0;
  double est_bytes = 0.0;
  double est_cost_ms = 0.0;

  // Execution actuals (filled by the executor under EXPLAIN ANALYZE;
  // mutable because execution observes an otherwise-const plan).
  // Network actuals are set only on kRemoteFragment nodes — the only
  // operators that touch the wire — so summing them over the tree
  // reproduces the query's recorded traffic totals (clean runs;
  // injected duplicate deliveries are charged to the network's own
  // counters, not to any one node). actual_attempts counts RPC tries
  // including backoff retries and replica failover; retries printed by
  // Explain() are attempts beyond the first.
  mutable double actual_rows = -1.0;
  mutable double actual_ms = -1.0;
  mutable int64_t actual_bytes_sent = -1;
  mutable int64_t actual_bytes_received = -1;
  mutable int64_t actual_messages = -1;
  mutable int64_t actual_attempts = -1;
  // Buffer-pool actuals from the source-side page-stats trailer (set
  // only on kRemoteFragment nodes; -1 = source did not report).
  mutable int64_t actual_page_hits = -1;
  mutable int64_t actual_page_misses = -1;
  mutable int64_t actual_evictions = -1;
  mutable double actual_disk_ms = -1.0;

  explicit PlanNode(PlanKind k) : kind(k) {}

  /// \brief Multi-line EXPLAIN rendering with indentation.
  std::string Explain(int indent = 0) const;
};

/// \name Node factories
/// @{
PlanNodePtr MakeScanNode(std::string global_name, std::string source,
                         std::string exported_name, SchemaPtr schema);
/// A kVirtualScan leaf; `name` (canonical gis.* table name) rides in
/// scan_global_name, scan_source stays empty — nothing is remote.
PlanNodePtr MakeVirtualScanNode(std::string name, SchemaPtr schema);
PlanNodePtr MakeFilterNode(PlanNodePtr child, ExprPtr predicate);
PlanNodePtr MakeProjectNode(PlanNodePtr child, std::vector<ExprPtr> exprs,
                            std::vector<std::string> names);
PlanNodePtr MakeUnionAllNode(std::vector<PlanNodePtr> children,
                             SchemaPtr schema);
PlanNodePtr MakeLimitNode(PlanNodePtr child, int64_t limit, int64_t offset);
/// @}

/// \brief Visits every node (pre-order) in the plan tree.
void VisitPlan(const PlanNodePtr& root,
               const std::function<void(const PlanNodePtr&)>& fn);

}  // namespace gisql
