#include "planner/decomposer.h"

#include <algorithm>
#include <map>
#include <utility>

namespace gisql {

namespace {

/// Substitutes column refs through a projection list (clone semantics).
Result<ExprPtr> SubstituteColumns(const Expr& e,
                                  const std::vector<ExprPtr>& exprs) {
  if (e.kind == ExprKind::kColumn) {
    if (e.column_index >= exprs.size()) {
      return Status::Internal("substitution index $", e.column_index,
                              " out of range in decomposer");
    }
    return exprs[e.column_index]->Clone();
  }
  auto out = std::make_shared<Expr>(e);
  out->children.clear();
  for (const auto& c : e.children) {
    GISQL_ASSIGN_OR_RETURN(ExprPtr nc, SubstituteColumns(*c, exprs));
    out->children.push_back(std::move(nc));
  }
  return out;
}

bool IsPlainFragment(const PlanNode& node) {
  return node.kind == PlanKind::kRemoteFragment &&
         !node.fragment.has_aggregate && node.fragment.limit < 0;
}

/// Rewrites an expression over a fragment's *output* space into the
/// fragment's *table* space (identity when no projections).
Result<ExprPtr> IntoTableSpace(const Expr& e, const FragmentPlan& frag) {
  if (frag.projections.empty()) return e.Clone();
  return SubstituteColumns(e, frag.projections);
}

}  // namespace

const SourceCapabilities* Decomposer::CapsOf(
    const std::string& source) const {
  auto info = catalog_.GetSource(source);
  return info.ok() ? &(*info)->capabilities : nullptr;
}

Result<PlanNodePtr> Decomposer::TryAbsorbFilter(PlanNodePtr filter_node) {
  PlanNodePtr child = filter_node->children[0];
  if (!options_.enable_filter_pushdown || !IsPlainFragment(*child)) {
    return filter_node;
  }
  const SourceCapabilities* caps = CapsOf(child->fragment_source);
  if (caps == nullptr || !caps->filter_pushdown) return filter_node;
  GISQL_ASSIGN_OR_RETURN(ExprPtr pred,
                         IntoTableSpace(*filter_node->filter,
                                        child->fragment));
  child->fragment.filter =
      child->fragment.filter
          ? MakeLogic(LogicOp::kAnd, child->fragment.filter, std::move(pred))
          : std::move(pred);
  // The fragment keeps the filter node's output schema (identical).
  child->output_schema = filter_node->output_schema;
  return child;
}

Result<PlanNodePtr> Decomposer::TryAbsorbProject(PlanNodePtr project_node) {
  PlanNodePtr child = project_node->children[0];
  if (!options_.enable_projection_pushdown || !IsPlainFragment(*child)) {
    return project_node;
  }
  const SourceCapabilities* caps = CapsOf(child->fragment_source);
  if (caps == nullptr || !caps->projection_pushdown) return project_node;
  // A zero-column projection cannot be expressed in the protocol (an
  // empty list means "all columns").
  if (project_node->projections.empty()) return project_node;
  std::vector<ExprPtr> new_projs;
  new_projs.reserve(project_node->projections.size());
  for (const auto& p : project_node->projections) {
    GISQL_ASSIGN_OR_RETURN(ExprPtr sub, IntoTableSpace(*p, child->fragment));
    new_projs.push_back(std::move(sub));
  }
  child->fragment.projections = std::move(new_projs);
  child->fragment.projection_names.clear();
  for (size_t i = 0; i < project_node->projections.size(); ++i) {
    child->fragment.projection_names.push_back(
        i < project_node->projection_names.size()
            ? project_node->projection_names[i]
            : "");
  }
  child->output_schema = project_node->output_schema;
  return child;
}

Result<PlanNodePtr> Decomposer::TryAbsorbLimit(PlanNodePtr limit_node) {
  if (!options_.enable_limit_pushdown || limit_node->limit < 0) {
    return limit_node;
  }
  const int64_t want = limit_node->limit + limit_node->offset;
  auto push_into = [&](const PlanNodePtr& frag_node) {
    const SourceCapabilities* caps = CapsOf(frag_node->fragment_source);
    if (caps == nullptr || !caps->limit_pushdown) return;
    if (frag_node->fragment.limit < 0 || frag_node->fragment.limit > want) {
      frag_node->fragment.limit = want;
    }
  };
  // Top-N pushdown: LIMIT over SORT becomes a source-side top-k — each
  // member ships only its best `limit+offset` rows; the mediator's
  // Sort+Limit stay for the exact global merge.
  auto push_topn = [&](const PlanNodePtr& frag_node,
                       const std::vector<size_t>& cols,
                       const std::vector<bool>& ascending) {
    const SourceCapabilities* caps = CapsOf(frag_node->fragment_source);
    if (caps == nullptr || !caps->limit_pushdown || !caps->sort_pushdown) {
      return;
    }
    FragmentPlan& frag = frag_node->fragment;
    if (frag.limit >= 0 || !frag.order_by.empty()) return;
    for (size_t i = 0; i < cols.size(); ++i) {
      const Field& f = frag_node->output_schema->field(cols[i]);
      frag.order_by.push_back(MakeColumn(cols[i], f.type,
                                         f.QualifiedName()));
      frag.order_ascending.push_back(ascending[i]);
    }
    frag.limit = want;
  };

  PlanNodePtr child = limit_node->children[0];
  if (child->kind == PlanKind::kRemoteFragment) {
    push_into(child);
  } else if (child->kind == PlanKind::kUnionAll) {
    for (const auto& member : child->children) {
      if (member->kind == PlanKind::kRemoteFragment) push_into(member);
    }
  } else if (child->kind == PlanKind::kSort) {
    // Map the sort columns through any pass-through projections between
    // the sort and the fragment/union below; ordering by a pure column
    // commutes with projection.
    std::vector<size_t> cols = child->sort_columns;
    const PlanNode* below = child->children[0].get();
    bool traceable = true;
    while (traceable && below->kind == PlanKind::kProject) {
      for (auto& c : cols) {
        if (c >= below->projections.size()) {
          traceable = false;
          break;
        }
        const Expr* e = below->projections[c].get();
        while (e->kind == ExprKind::kCast) e = e->children[0].get();
        if (e->kind != ExprKind::kColumn) {
          traceable = false;
          break;
        }
        c = e->column_index;
      }
      if (traceable) below = below->children[0].get();
    }
    if (traceable) {
      if (below->kind == PlanKind::kRemoteFragment) {
        // push_topn needs the owning shared node; children[0] chains are
        // shared_ptrs, so locate the node by identity.
        VisitPlan(child, [&](const PlanNodePtr& node) {
          if (node.get() == below) {
            push_topn(node, cols, child->sort_ascending);
          }
        });
      } else if (below->kind == PlanKind::kUnionAll) {
        for (const auto& member : below->children) {
          if (member->kind == PlanKind::kRemoteFragment) {
            push_topn(member, cols, child->sort_ascending);
          }
        }
      }
    }
  }
  // The mediator-side limit remains for exactness (offset, union merge).
  return limit_node;
}

Result<PlanNodePtr> Decomposer::TryPushAggregate(PlanNodePtr agg_node) {
  if (!options_.enable_aggregate_pushdown) return agg_node;
  PlanNodePtr child = agg_node->children[0];

  // A fragment can absorb a partial aggregation if its source's dialect
  // supports it and the fragment has no prior aggregate/limit.
  auto pushable = [&](const PlanNodePtr& node) {
    if (node->kind != PlanKind::kRemoteFragment) return false;
    if (node->fragment.has_aggregate || node->fragment.limit >= 0) {
      return false;
    }
    const SourceCapabilities* caps = CapsOf(node->fragment_source);
    return caps != nullptr && caps->aggregate_pushdown;
  };

  // Classify the aggregation input. Union members that cannot absorb a
  // partial aggregation (incapable dialects, mediator-compensated
  // chains) get a *mediator-side* partial aggregate instead, so the
  // merge stage sees uniform partial rows from every member.
  size_t n_pushable = 0;
  if (child->kind == PlanKind::kRemoteFragment) {
    if (!pushable(child)) return agg_node;
    n_pushable = 1;
  } else if (child->kind == PlanKind::kUnionAll) {
    for (const auto& member : child->children) {
      if (pushable(member)) ++n_pushable;
    }
    // Without at least one source-side partial there is no benefit.
    if (n_pushable == 0) return agg_node;
  } else {
    return agg_node;
  }
  for (const auto& a : agg_node->aggregates) {
    if (a.distinct) return agg_node;  // not decomposable
  }

  const size_t k = agg_node->group_by.size();

  // Build the partial aggregate list (AVG → SUM + COUNT), deduplicated.
  struct PartialRef {
    size_t direct = static_cast<size_t>(-1);  ///< partial index
    size_t sum_idx = static_cast<size_t>(-1);  ///< AVG only
    size_t count_idx = static_cast<size_t>(-1);
  };
  std::vector<BoundAggregate> partials;
  auto intern = [&](const BoundAggregate& p) -> size_t {
    for (size_t i = 0; i < partials.size(); ++i) {
      if (partials[i].Equals(p)) return i;
    }
    partials.push_back(p);
    return partials.size() - 1;
  };
  std::vector<PartialRef> refs(agg_node->aggregates.size());
  for (size_t i = 0; i < agg_node->aggregates.size(); ++i) {
    const BoundAggregate& a = agg_node->aggregates[i];
    if (a.kind == AggKind::kAvg) {
      BoundAggregate sum;
      sum.kind = AggKind::kSum;
      sum.arg = a.arg;
      sum.result_type =
          a.arg->type == TypeId::kDouble ? TypeId::kDouble : TypeId::kInt64;
      sum.display = "SUM(" + a.arg->ToString() + ")";
      BoundAggregate count;
      count.kind = AggKind::kCount;
      count.arg = a.arg;
      count.result_type = TypeId::kInt64;
      count.display = "COUNT(" + a.arg->ToString() + ")";
      refs[i].sum_idx = intern(sum);
      refs[i].count_idx = intern(count);
    } else {
      refs[i].direct = intern(a);
    }
  }

  // Install the partial aggregation in every fragment, translating
  // group/arg expressions into each fragment's table space.
  std::vector<Field> partial_fields;
  for (size_t g = 0; g < k; ++g) {
    partial_fields.emplace_back(agg_node->group_by[g]->ToString(),
                                agg_node->group_by[g]->type);
  }
  for (const auto& p : partials) {
    partial_fields.emplace_back(p.display, p.result_type);
  }
  auto partial_schema = std::make_shared<Schema>(partial_fields);

  // Installs the partial aggregation into one pushable fragment,
  // translating group/arg expressions into its table space.
  auto install_in_fragment = [&](const PlanNodePtr& f) -> Status {
    FragmentPlan& frag = f->fragment;
    std::vector<ExprPtr> groups_ts;
    for (const auto& g : agg_node->group_by) {
      GISQL_ASSIGN_OR_RETURN(ExprPtr ts, IntoTableSpace(*g, frag));
      groups_ts.push_back(std::move(ts));
    }
    std::vector<BoundAggregate> partials_ts;
    for (const auto& p : partials) {
      BoundAggregate pt = p;
      if (pt.arg) {
        GISQL_ASSIGN_OR_RETURN(pt.arg, IntoTableSpace(*pt.arg, frag));
      }
      partials_ts.push_back(std::move(pt));
    }
    frag.projections.clear();
    frag.projection_names.clear();
    frag.has_aggregate = true;
    frag.group_by = std::move(groups_ts);
    frag.aggregates = std::move(partials_ts);
    f->output_schema = partial_schema;
    return Status::OK();
  };
  // Wraps a non-pushable member with a mediator-side partial aggregate
  // (its input space equals the aggregation input space).
  auto wrap_with_partial = [&](PlanNodePtr member) {
    auto part = std::make_shared<PlanNode>(PlanKind::kAggregate);
    for (const auto& g : agg_node->group_by) {
      part->group_by.push_back(g->Clone());
    }
    for (const auto& p : partials) {
      BoundAggregate pt = p;
      if (pt.arg) pt.arg = pt.arg->Clone();
      part->aggregates.push_back(std::move(pt));
    }
    part->output_schema = partial_schema;
    part->children.push_back(std::move(member));
    return part;
  };

  if (child->kind == PlanKind::kRemoteFragment) {
    GISQL_RETURN_NOT_OK(install_in_fragment(child));
  } else {
    for (auto& member : child->children) {
      if (pushable(member)) {
        GISQL_RETURN_NOT_OK(install_in_fragment(member));
      } else {
        member = wrap_with_partial(std::move(member));
      }
    }
    child->output_schema = partial_schema;
  }

  // Mediator-side merge aggregation over the partial rows.
  auto merge = std::make_shared<PlanNode>(PlanKind::kAggregate);
  merge->children.push_back(child);
  for (size_t g = 0; g < k; ++g) {
    merge->group_by.push_back(MakeColumn(
        g, agg_node->group_by[g]->type, partial_fields[g].name));
  }
  std::vector<Field> merge_fields(partial_fields.begin(),
                                  partial_fields.begin() + k);
  for (size_t j = 0; j < partials.size(); ++j) {
    BoundAggregate m;
    const BoundAggregate& p = partials[j];
    const TypeId col_type = p.result_type;
    ExprPtr col = MakeColumn(k + j, col_type, p.display);
    switch (p.kind) {
      case AggKind::kCountStar:
      case AggKind::kCount:
        m.kind = AggKind::kSum;
        m.result_type = TypeId::kInt64;
        break;
      case AggKind::kSum:
        m.kind = AggKind::kSum;
        m.result_type = p.result_type;
        break;
      case AggKind::kMin:
        m.kind = AggKind::kMin;
        m.result_type = p.result_type;
        break;
      case AggKind::kMax:
        m.kind = AggKind::kMax;
        m.result_type = p.result_type;
        break;
      case AggKind::kAvg:
        return Status::Internal("AVG must not appear among partials");
    }
    m.arg = std::move(col);
    m.display = p.display;
    merge->aggregates.push_back(m);
    merge_fields.emplace_back(p.display, m.result_type);
  }
  merge->output_schema = std::make_shared<Schema>(merge_fields);

  // Final projection restoring the original aggregate output shape
  // (groups + original aggregates, AVG computed from its partials).
  std::vector<ExprPtr> out_exprs;
  std::vector<std::string> out_names;
  for (size_t g = 0; g < k; ++g) {
    out_exprs.push_back(MakeColumn(g, agg_node->group_by[g]->type,
                                   partial_fields[g].name));
    out_names.push_back(agg_node->output_schema->field(g).name);
  }
  for (size_t i = 0; i < agg_node->aggregates.size(); ++i) {
    const BoundAggregate& a = agg_node->aggregates[i];
    ExprPtr e;
    if (a.kind == AggKind::kAvg) {
      ExprPtr sum = MakeColumn(k + refs[i].sum_idx,
                               merge_fields[k + refs[i].sum_idx].type,
                               "sum_partial");
      ExprPtr count = MakeColumn(k + refs[i].count_idx, TypeId::kInt64,
                                 "count_partial");
      if (sum->type != TypeId::kDouble) {
        sum = MakeCast(std::move(sum), TypeId::kDouble);
      }
      e = MakeArith(ArithOp::kDiv, std::move(sum),
                    MakeCast(std::move(count), TypeId::kDouble));
    } else {
      const size_t j = refs[i].direct;
      e = MakeColumn(k + j, merge_fields[k + j].type, a.display);
      // COUNT merged via SUM yields NULL on empty input; SQL COUNT
      // must be 0.
      if (a.kind == AggKind::kCount || a.kind == AggKind::kCountStar) {
        auto coalesce = std::make_shared<Expr>(ExprKind::kFunc);
        coalesce->func_name = "COALESCE";
        coalesce->type = TypeId::kInt64;
        coalesce->children = {std::move(e), MakeLiteral(Value::Int(0))};
        e = coalesce;
      }
    }
    out_exprs.push_back(std::move(e));
    out_names.push_back(agg_node->output_schema->field(k + i).name);
  }
  PlanNodePtr project =
      MakeProjectNode(merge, std::move(out_exprs), std::move(out_names));
  project->output_schema = agg_node->output_schema;
  return project;
}

Status Decomposer::ChooseJoinStrategy(const PlanNodePtr& join_node) {
  join_node->join_strategy = JoinStrategy::kShip;
  if (!options_.enable_semijoin || join_node->left_keys.empty()) {
    return Status::OK();
  }
  // Anti-joins must see every right key (incl. NULL markers) to decide
  // their three-valued outcome; semijoin reduction would lose that.
  if (join_node->join_type == JoinType::kAnti) return Status::OK();
  const PlanNodePtr& right = join_node->children[1];

  // Trace the probe key through mediator-side compensation (Project /
  // Filter chains above the fragment of a less-capable source) down to
  // a base table column of a plain fragment.
  const PlanNode* cur = right.get();
  size_t col = join_node->right_keys[0];
  while (true) {
    if (cur->kind == PlanKind::kProject) {
      if (col >= cur->projections.size()) return Status::OK();
      const Expr* e = cur->projections[col].get();
      while (e->kind == ExprKind::kCast) e = e->children[0].get();
      if (e->kind != ExprKind::kColumn) return Status::OK();
      col = e->column_index;
      cur = cur->children[0].get();
      continue;
    }
    if (cur->kind == PlanKind::kFilter) {
      // Semijoin reduction commutes with the compensated filter.
      cur = cur->children[0].get();
      continue;
    }
    break;
  }
  if (cur->kind != PlanKind::kRemoteFragment ||
      cur->fragment.has_aggregate || cur->fragment.limit >= 0 ||
      cur->fragment.semijoin_column >= 0 ||
      cur->fragment.index_column >= 0 ||
      !cur->fragment.join_table.empty()) {
    return Status::OK();
  }
  const SourceCapabilities* caps = CapsOf(cur->fragment_source);
  if (caps == nullptr || !caps->semijoin_pushdown) return Status::OK();

  // Locate the semijoin column in the fragment's table space.
  int64_t table_col = -1;
  if (cur->fragment.projections.empty()) {
    table_col = static_cast<int64_t>(col);
  } else if (col < cur->fragment.projections.size()) {
    const Expr* e = cur->fragment.projections[col].get();
    while (e->kind == ExprKind::kCast) e = e->children[0].get();
    if (e->kind == ExprKind::kColumn) {
      table_col = static_cast<int64_t>(e->column_index);
    }
  }
  if (table_col < 0) return Status::OK();
  if (caps->semijoin_key_only && table_col != 0) return Status::OK();

  // Cost the two strategies from the statistics.
  const PlanNodePtr& left = join_node->children[0];
  cost_->Annotate(left);
  cost_->Annotate(right);
  double ndv_left = left->est_rows;
  const int64_t d = cost_->EstimateDistinct(*left,
                                            join_node->left_keys[0]);
  if (d > 0) ndv_left = std::min(ndv_left, static_cast<double>(d));
  double ndv_right = std::max(right->est_rows, 1.0);
  const int64_t dr =
      cost_->EstimateDistinct(*right, join_node->right_keys[0]);
  if (dr > 0) ndv_right = static_cast<double>(dr);

  const double key_width = 8.0;
  const double right_width = static_cast<double>(
      right->output_schema->EstimatedRowWidth());
  const double reduction = std::min(1.0, ndv_left / ndv_right);
  const double semijoin_bytes =
      ndv_left * key_width + reduction * right->est_rows * right_width;
  const double ship_bytes = right->est_rows * right_width;

  if (options_.force_semijoin ||
      (ndv_left <= static_cast<double>(options_.semijoin_max_keys) &&
       semijoin_bytes < ship_bytes)) {
    join_node->join_strategy = JoinStrategy::kSemijoin;
    // The marker lives on the fragment node itself; the executor
    // injects the actual key values at run time.
    const_cast<PlanNode*>(cur)->fragment.semijoin_column = table_col;
  }
  return Status::OK();
}

Result<PlanNodePtr> Decomposer::TryCollapseIndexJoin(
    const PlanNodePtr& join_node) {
  if (!options_.enable_index_join) return PlanNodePtr();
  if (join_node->join_type != JoinType::kInner ||
      join_node->join_residual != nullptr ||
      join_node->left_keys.size() != 1) {
    return PlanNodePtr();
  }
  const PlanNodePtr& outer = join_node->children[0];
  const PlanNodePtr& inner = join_node->children[1];
  auto collapsible = [](const PlanNode& n) {
    return n.kind == PlanKind::kRemoteFragment &&
           !n.fragment.has_aggregate && n.fragment.limit < 0 &&
           n.fragment.projections.empty() && n.fragment.order_by.empty() &&
           n.fragment.semijoin_column < 0 && n.fragment.index_column < 0 &&
           n.fragment.join_table.empty();
  };
  // Only a *co-located* pair collapses: the probe loop runs inside one
  // source, so both tables must live there.
  if (!collapsible(*outer) || !collapsible(*inner) ||
      outer->fragment_source != inner->fragment_source) {
    return PlanNodePtr();
  }
  const SourceCapabilities* caps = CapsOf(outer->fragment_source);
  if (caps == nullptr || !caps->index_join) return PlanNodePtr();
  // The inner side must be indexed on the join key (from imported
  // statistics), or the source would fall back to an error.
  auto mapping = catalog_.GetTable(inner->scan_global_name);
  if (!mapping.ok()) return PlanNodePtr();
  const TableStats& st = (*mapping)->stats;
  const int64_t key = static_cast<int64_t>(join_node->right_keys[0]);
  const bool indexed =
      std::find(st.hash_indexed_columns.begin(),
                st.hash_indexed_columns.end(),
                key) != st.hash_indexed_columns.end() ||
      std::find(st.ordered_indexed_columns.begin(),
                st.ordered_indexed_columns.end(),
                key) != st.ordered_indexed_columns.end();
  if (!indexed) return PlanNodePtr();

  FragmentPlan& frag = outer->fragment;
  frag.join_table = inner->fragment.table;
  frag.join_outer_column = static_cast<int64_t>(join_node->left_keys[0]);
  frag.join_inner_column = key;
  frag.join_inner_filter = inner->fragment.filter;
  outer->output_schema = join_node->output_schema;
  // Failover replicas cannot be assumed to co-locate the inner table.
  outer->scan_alternates.clear();
  return outer;
}

void Decomposer::ApplyIndexRangeScans(const PlanNodePtr& root) {
  if (!options_.enable_index_range_scan) return;
  VisitPlan(root, [&](const PlanNodePtr& node) {
    if (node->kind != PlanKind::kRemoteFragment) return;
    FragmentPlan& frag = node->fragment;
    // Semijoin reduction is an alternative access path; a fragment
    // already carrying one keeps it.
    if (!frag.filter || frag.semijoin_column >= 0 ||
        frag.index_column >= 0) {
      return;
    }
    const SourceCapabilities* caps = CapsOf(node->fragment_source);
    if (caps == nullptr || !caps->index_range_scan) return;
    auto mapping = catalog_.GetTable(node->scan_global_name);
    if (!mapping.ok()) return;
    const std::vector<int64_t>& indexed =
        (*mapping)->stats.ordered_indexed_columns;
    if (indexed.empty()) return;

    // Gather per-column bounds from sargable conjuncts
    // (col <op> literal, either operand order) on indexed columns. The
    // whole filter stays on the fragment as the residual, so partial
    // extraction is always sound.
    std::vector<ExprPtr> conjuncts;
    SplitConjuncts(frag.filter, &conjuncts);
    struct Bounds {
      Value lo, hi;  ///< null = unbounded
      bool lo_inclusive = true, hi_inclusive = true;
    };
    std::map<int64_t, Bounds> by_col;
    auto tighten_lo = [](Bounds* b, const Value& v, bool inclusive) {
      const int cmp = b->lo.is_null() ? 1 : v.Compare(b->lo);
      if (cmp > 0) {
        b->lo = v;
        b->lo_inclusive = inclusive;
      } else if (cmp == 0 && !inclusive) {
        b->lo_inclusive = false;
      }
    };
    auto tighten_hi = [](Bounds* b, const Value& v, bool inclusive) {
      const int cmp = b->hi.is_null() ? -1 : v.Compare(b->hi);
      if (cmp < 0) {
        b->hi = v;
        b->hi_inclusive = inclusive;
      } else if (cmp == 0 && !inclusive) {
        b->hi_inclusive = false;
      }
    };
    for (const auto& c : conjuncts) {
      if (c->kind != ExprKind::kCompare) continue;
      CompareOp op = c->compare_op;
      const Expr* l = c->children[0].get();
      const Expr* r = c->children[1].get();
      if (l->kind == ExprKind::kLiteral && r->kind == ExprKind::kColumn) {
        std::swap(l, r);
        op = ReverseCompareOp(op);
      }
      if (l->kind != ExprKind::kColumn || r->kind != ExprKind::kLiteral ||
          r->literal.is_null()) {
        continue;
      }
      const int64_t col = static_cast<int64_t>(l->column_index);
      if (std::find(indexed.begin(), indexed.end(), col) == indexed.end()) {
        continue;
      }
      Bounds& b = by_col[col];
      switch (op) {
        case CompareOp::kEq:
          tighten_lo(&b, r->literal, true);
          tighten_hi(&b, r->literal, true);
          break;
        case CompareOp::kGt:
          tighten_lo(&b, r->literal, false);
          break;
        case CompareOp::kGe:
          tighten_lo(&b, r->literal, true);
          break;
        case CompareOp::kLt:
          tighten_hi(&b, r->literal, false);
          break;
        case CompareOp::kLe:
          tighten_hi(&b, r->literal, true);
          break;
        case CompareOp::kNe:
          break;
      }
    }
    // Prefer a column bounded on both sides; the map's ordering makes
    // ties deterministic.
    const std::pair<const int64_t, Bounds>* best = nullptr;
    for (const auto& entry : by_col) {
      if (entry.second.lo.is_null() && entry.second.hi.is_null()) continue;
      const bool both =
          !entry.second.lo.is_null() && !entry.second.hi.is_null();
      const bool best_both =
          best != nullptr && !best->second.lo.is_null() &&
          !best->second.hi.is_null();
      if (best == nullptr || (both && !best_both)) best = &entry;
    }
    if (best == nullptr) return;
    frag.index_column = best->first;
    frag.range_lo = best->second.lo;
    frag.range_hi = best->second.hi;
    frag.range_lo_inclusive = best->second.lo_inclusive;
    frag.range_hi_inclusive = best->second.hi_inclusive;
  });
}

Result<PlanNodePtr> Decomposer::Rewrite(PlanNodePtr node) {
  for (auto& c : node->children) {
    GISQL_ASSIGN_OR_RETURN(c, Rewrite(std::move(c)));
  }
  switch (node->kind) {
    case PlanKind::kSourceScan: {
      auto frag = std::make_shared<PlanNode>(PlanKind::kRemoteFragment);
      frag->fragment_source = node->scan_source;
      frag->fragment.table = node->scan_exported_name;
      frag->scan_global_name = node->scan_global_name;
      frag->scan_alternates = node->scan_alternates;
      frag->output_schema = node->output_schema;
      return frag;
    }
    case PlanKind::kFilter:
      return TryAbsorbFilter(std::move(node));
    case PlanKind::kProject:
      return TryAbsorbProject(std::move(node));
    case PlanKind::kLimit:
      return TryAbsorbLimit(std::move(node));
    case PlanKind::kAggregate:
      return TryPushAggregate(std::move(node));
    case PlanKind::kJoin: {
      GISQL_ASSIGN_OR_RETURN(PlanNodePtr collapsed,
                             TryCollapseIndexJoin(node));
      if (collapsed != nullptr) return collapsed;
      GISQL_RETURN_NOT_OK(ChooseJoinStrategy(node));
      return node;
    }
    default:
      return node;
  }
}

Result<PlanNodePtr> Decomposer::Decompose(PlanNodePtr plan) {
  GISQL_ASSIGN_OR_RETURN(plan, Rewrite(std::move(plan)));
  ApplyIndexRangeScans(plan);
  cost_->Annotate(plan);
  return plan;
}

}  // namespace gisql
