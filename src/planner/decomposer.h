/// \file decomposer.h
/// \brief Query decomposition: folds source-local work of the optimized
/// logical plan into per-source FragmentPlans, bounded by each source's
/// advertised capabilities, and picks distributed join strategies.
///
/// Rules (bottom-up):
///  - every SourceScan becomes a RemoteFragment;
///  - Filter / Project / Limit above a fragment are absorbed when the
///    owning source's dialect supports them (else they stay at the
///    mediator — "compensation");
///  - Aggregate above a fragment (or a union of fragments) becomes a
///    partial aggregation at the source(s) plus a merging aggregation
///    at the mediator; AVG decomposes into SUM+COUNT partials;
///  - equi-joins whose probe side is a fragment may be annotated with
///    the semijoin strategy when the cost model predicts a win;
///  - a co-located inner equi-join of two plain fragments collapses
///    into a single source-side index-nested-loop-join fragment when
///    the inner table is indexed on the join key;
///  - finally, sargable range conjuncts on an ordered-indexed column
///    turn a capable fragment's full scan into an index range scan
///    (the absorbed filter stays as the residual).

#pragma once

#include "catalog/catalog.h"
#include "planner/cost_model.h"
#include "planner/options.h"
#include "planner/plan.h"

namespace gisql {

class Decomposer {
 public:
  Decomposer(const Catalog& catalog, const PlannerOptions& options,
             const CostModel* cost_model)
      : catalog_(catalog), options_(options), cost_(cost_model) {}

  Result<PlanNodePtr> Decompose(PlanNodePtr plan);

 private:
  Result<PlanNodePtr> Rewrite(PlanNodePtr node);

  const SourceCapabilities* CapsOf(const std::string& source) const;

  Result<PlanNodePtr> TryAbsorbFilter(PlanNodePtr filter_node);
  Result<PlanNodePtr> TryAbsorbProject(PlanNodePtr project_node);
  Result<PlanNodePtr> TryAbsorbLimit(PlanNodePtr limit_node);
  Result<PlanNodePtr> TryPushAggregate(PlanNodePtr agg_node);
  Status ChooseJoinStrategy(const PlanNodePtr& join_node);

  /// \brief Collapses an eligible co-located equi-join into one
  /// index-nested-loop-join fragment; nullptr when not applicable.
  Result<PlanNodePtr> TryCollapseIndexJoin(const PlanNodePtr& join_node);

  /// \brief Post-pass: converts fragments with sargable range conjuncts
  /// on an ordered-indexed column into index range scans.
  void ApplyIndexRangeScans(const PlanNodePtr& root);

  const Catalog& catalog_;
  PlannerOptions options_;
  const CostModel* cost_;
};

}  // namespace gisql
