/// \file logical_planner.h
/// \brief Binds a parsed SELECT against the global catalog and produces
/// the initial (unoptimized) logical plan.

#pragma once

#include "catalog/catalog.h"
#include "common/result.h"
#include "planner/plan.h"
#include "sql/ast.h"

namespace gisql {

/// \brief AST → logical plan translator.
///
/// Handles: named global tables and union views, derived tables,
/// inner/left/cross joins with bound ON conditions, WHERE, GROUP BY /
/// aggregates / HAVING, select-list projection with aliases, DISTINCT,
/// ORDER BY (over select outputs, or pre-projection expressions via
/// hidden sort columns), LIMIT/OFFSET, and FROM-less constant selects.
class LogicalPlanner {
 public:
  explicit LogicalPlanner(const Catalog& catalog) : catalog_(catalog) {}

  Result<PlanNodePtr> Plan(const sql::SelectStmt& stmt);

 private:
  /// Plans one SELECT core; `with_order_limit` false suppresses the
  /// statement's ORDER BY/LIMIT (they belong to an enclosing UNION ALL).
  Result<PlanNodePtr> PlanCore(const sql::SelectStmt& stmt,
                               bool with_order_limit);
  /// Plans a UNION ALL chain with trailing ORDER BY/LIMIT.
  Result<PlanNodePtr> PlanUnion(const sql::SelectStmt& stmt);
  Result<PlanNodePtr> PlanTableRef(const sql::TableRef& ref);
  Result<PlanNodePtr> PlanNamedTable(const std::string& name,
                                     const std::string& alias);
  Result<PlanNodePtr> PlanJoin(const sql::TableRef& ref);

  /// Expands `*` / `alias.*` select items into per-column items.
  Result<std::vector<sql::SelectItem>> ExpandStars(
      const sql::SelectStmt& stmt, const Schema& input) const;

  const Catalog& catalog_;
};

}  // namespace gisql
