/// \file governor.h
/// \brief The resource governor: one object bundling admission
/// control, memory budgets, and per-source circuit breakers, plus the
/// mediator's virtual arrival clock.
///
/// GlobalSystem owns exactly one governor and consults it on every
/// submitted query: AdmissionController decides run/queue/shed,
/// MemoryBudget hands the executor a per-query grant, and the
/// CircuitBreakerRegistry (fed by the health tracker) lets replica
/// routing skip sources that are known down. Everything runs on the
/// simulated clock and the configured seed, so load-management
/// decisions replay exactly.
///
/// The virtual clock: callers that don't give explicit arrival times
/// (plain Query()) arrive "when the previous query finished" —
/// closed-loop traffic that by construction never queues, keeping the
/// governor invisible to existing single-client tests. Open-loop
/// experiments pass explicit arrivals via SubmitOptions and see real
/// queueing and shedding.

#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>

#include "planner/options.h"
#include "sched/admission.h"
#include "sched/circuit_breaker.h"
#include "sched/memory_budget.h"

namespace gisql {

/// \brief gis.admission is a rendering of this struct.
struct GovernorSnapshot {
  AdmissionConfig admission_config;
  AdmissionStats admission;
  int64_t shed_memory_budget = 0;
  int64_t mem_query_cap = 0;
  int64_t mem_global_cap = 0;
  int64_t mem_peak_bytes = 0;
  bool breaker_enabled = false;
  int breakers_open = 0;
  int64_t breaker_transitions = 0;
  int64_t breaker_skips = 0;
  int64_t breaker_probes = 0;
};

class ResourceGovernor {
 public:
  explicit ResourceGovernor(const PlannerOptions& options) {
    Configure(options);
  }

  /// \brief (Re)applies the governor-relevant PlannerOptions. Live
  /// occupancy, counters, and breaker state are kept.
  void Configure(const PlannerOptions& options) {
    AdmissionConfig a;
    a.max_concurrent = options.max_concurrent_queries;
    a.queue_limit = options.admission_queue_limit;
    a.max_wait_ms = options.admission_max_wait_ms;
    admission_.Configure(a);
    memory_.Configure(options.query_mem_bytes, options.mediator_mem_bytes);
    BreakerConfig b;
    b.enabled = options.circuit_breaker;
    b.open_after = options.breaker_open_failures;
    b.cooldown_skips = options.breaker_cooldown_skips;
    b.probe_ratio = options.breaker_probe_ratio;
    b.seed = options.breaker_seed;
    breakers_.Configure(b);
    base_query_mem_bytes_ = options.query_mem_bytes;
  }

  /// \name Guard-railed advisor knobs
  ///
  /// The advisor's auto-tuning policy adjusts admission watermarks and
  /// the per-query memory cap through these setters. The governor owns
  /// the guard rails — clamping lives here, not in the policy — so a
  /// runaway advisor can tighten or relax but never wedge the system.
  /// Both setters return the values actually applied after clamping.
  /// @{

  /// Watermark floor: even a maximally aggressive advisor leaves some
  /// queue room for background traffic (starvation-freedom).
  static constexpr double kMinWatermark = 0.1;

  /// \brief Sets the background/normal queue watermarks, clamped to
  /// [kMinWatermark, default] per class with background ≤ normal.
  /// Interactive traffic always keeps the full queue (1.0).
  std::pair<double, double> SetAdmissionWatermarks(double background,
                                                   double normal) {
    AdmissionConfig a = admission_.config();
    normal = std::clamp(normal, kMinWatermark, 0.8);
    background = std::clamp(background, kMinWatermark, std::min(normal, 0.5));
    a.watermark_background = background;
    a.watermark_normal = normal;
    admission_.Configure(a);
    return {background, normal};
  }

  /// \brief Sets the per-query memory cap, clamped to [base/2, 4*base]
  /// and never above the global cap (base = the configured
  /// query_mem_bytes). Applies to grants taken after this call.
  int64_t SetQueryMemCap(int64_t bytes) {
    const int64_t base = base_query_mem_bytes_;
    const int64_t lo = std::max<int64_t>(1, base / 2);
    const int64_t hi = std::min(4 * base, memory_.global_cap());
    bytes = std::clamp(bytes, lo, std::max(lo, hi));
    memory_.Configure(bytes, memory_.global_cap());
    return bytes;
  }
  /// @}

  AdmissionController& admission() { return admission_; }
  MemoryBudget& memory() { return memory_; }
  CircuitBreakerRegistry& breakers() { return breakers_; }
  const CircuitBreakerRegistry& breakers() const { return breakers_; }

  /// \brief Virtual arrival clock (simulated ms): the completion time
  /// of the latest query, i.e. when a closed-loop client would submit
  /// its next one.
  double now_ms() const { return now_ms_; }
  void AdvanceTo(double t_ms) { now_ms_ = std::max(now_ms_, t_ms); }

  /// \brief Records one query aborted by a memory budget (counted
  /// per query, not per denied charge — charge-denial multiplicity is
  /// schedule-dependent, the query outcome is not).
  void RecordMemoryShed() { ++shed_memory_budget_; }

  GovernorSnapshot Snapshot() const {
    GovernorSnapshot snap;
    snap.admission_config = admission_.config();
    snap.admission = admission_.Stats();
    snap.shed_memory_budget = shed_memory_budget_;
    snap.mem_query_cap = memory_.query_cap();
    snap.mem_global_cap = memory_.global_cap();
    snap.mem_peak_bytes = memory_.peak();
    snap.breaker_enabled = breakers_.enabled();
    snap.breakers_open = breakers_.OpenCount();
    snap.breaker_transitions = breakers_.TotalTransitions();
    snap.breaker_skips = breakers_.TotalSkips();
    snap.breaker_probes = breakers_.TotalProbes();
    return snap;
  }

  /// \brief Drops admission occupancy, memory watermarks, breaker
  /// state, and the virtual clock.
  void Reset() {
    admission_.Reset();
    memory_.Reset();
    breakers_.Reset();
    shed_memory_budget_ = 0;
    now_ms_ = 0.0;
  }

 private:
  AdmissionController admission_;
  MemoryBudget memory_;
  CircuitBreakerRegistry breakers_;
  int64_t base_query_mem_bytes_ = 256LL << 20;
  int64_t shed_memory_budget_ = 0;
  double now_ms_ = 0.0;
};

}  // namespace gisql
