/// \file governor.h
/// \brief The resource governor: one object bundling admission
/// control, memory budgets, and per-source circuit breakers, plus the
/// mediator's virtual arrival clock.
///
/// GlobalSystem owns exactly one governor and consults it on every
/// submitted query: AdmissionController decides run/queue/shed,
/// MemoryBudget hands the executor a per-query grant, and the
/// CircuitBreakerRegistry (fed by the health tracker) lets replica
/// routing skip sources that are known down. Everything runs on the
/// simulated clock and the configured seed, so load-management
/// decisions replay exactly.
///
/// The virtual clock: callers that don't give explicit arrival times
/// (plain Query()) arrive "when the previous query finished" —
/// closed-loop traffic that by construction never queues, keeping the
/// governor invisible to existing single-client tests. Open-loop
/// experiments pass explicit arrivals via SubmitOptions and see real
/// queueing and shedding.

#pragma once

#include <algorithm>

#include "planner/options.h"
#include "sched/admission.h"
#include "sched/circuit_breaker.h"
#include "sched/memory_budget.h"

namespace gisql {

/// \brief gis.admission is a rendering of this struct.
struct GovernorSnapshot {
  AdmissionConfig admission_config;
  AdmissionStats admission;
  int64_t shed_memory_budget = 0;
  int64_t mem_query_cap = 0;
  int64_t mem_global_cap = 0;
  int64_t mem_peak_bytes = 0;
  bool breaker_enabled = false;
  int breakers_open = 0;
  int64_t breaker_transitions = 0;
  int64_t breaker_skips = 0;
  int64_t breaker_probes = 0;
};

class ResourceGovernor {
 public:
  explicit ResourceGovernor(const PlannerOptions& options) {
    Configure(options);
  }

  /// \brief (Re)applies the governor-relevant PlannerOptions. Live
  /// occupancy, counters, and breaker state are kept.
  void Configure(const PlannerOptions& options) {
    AdmissionConfig a;
    a.max_concurrent = options.max_concurrent_queries;
    a.queue_limit = options.admission_queue_limit;
    a.max_wait_ms = options.admission_max_wait_ms;
    admission_.Configure(a);
    memory_.Configure(options.query_mem_bytes, options.mediator_mem_bytes);
    BreakerConfig b;
    b.enabled = options.circuit_breaker;
    b.open_after = options.breaker_open_failures;
    b.cooldown_skips = options.breaker_cooldown_skips;
    b.probe_ratio = options.breaker_probe_ratio;
    b.seed = options.breaker_seed;
    breakers_.Configure(b);
  }

  AdmissionController& admission() { return admission_; }
  MemoryBudget& memory() { return memory_; }
  CircuitBreakerRegistry& breakers() { return breakers_; }
  const CircuitBreakerRegistry& breakers() const { return breakers_; }

  /// \brief Virtual arrival clock (simulated ms): the completion time
  /// of the latest query, i.e. when a closed-loop client would submit
  /// its next one.
  double now_ms() const { return now_ms_; }
  void AdvanceTo(double t_ms) { now_ms_ = std::max(now_ms_, t_ms); }

  /// \brief Records one query aborted by a memory budget (counted
  /// per query, not per denied charge — charge-denial multiplicity is
  /// schedule-dependent, the query outcome is not).
  void RecordMemoryShed() { ++shed_memory_budget_; }

  GovernorSnapshot Snapshot() const {
    GovernorSnapshot snap;
    snap.admission_config = admission_.config();
    snap.admission = admission_.Stats();
    snap.shed_memory_budget = shed_memory_budget_;
    snap.mem_query_cap = memory_.query_cap();
    snap.mem_global_cap = memory_.global_cap();
    snap.mem_peak_bytes = memory_.peak();
    snap.breaker_enabled = breakers_.enabled();
    snap.breakers_open = breakers_.OpenCount();
    snap.breaker_transitions = breakers_.TotalTransitions();
    snap.breaker_skips = breakers_.TotalSkips();
    snap.breaker_probes = breakers_.TotalProbes();
    return snap;
  }

  /// \brief Drops admission occupancy, memory watermarks, breaker
  /// state, and the virtual clock.
  void Reset() {
    admission_.Reset();
    memory_.Reset();
    breakers_.Reset();
    shed_memory_budget_ = 0;
    now_ms_ = 0.0;
  }

 private:
  AdmissionController admission_;
  MemoryBudget memory_;
  CircuitBreakerRegistry breakers_;
  int64_t shed_memory_budget_ = 0;
  double now_ms_ = 0.0;
};

}  // namespace gisql
