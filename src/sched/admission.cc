#include "sched/admission.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gisql {

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone: return "";
    case ShedReason::kQueueFull: return "queue_full";
    case ShedReason::kDeadline: return "deadline";
    case ShedReason::kMemoryBudget: return "memory_budget";
  }
  return "?";
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {}

void AdmissionController::Configure(const AdmissionConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
}

AdmissionDecision AdmissionController::Admit(const AdmissionRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  const double arrival = request.arrival_ms;
  const double deadline =
      request.max_wait_ms >= 0 ? request.max_wait_ms : config_.max_wait_ms;
  const int priority =
      std::clamp(request.priority, 0, 2);

  // Prune occupants whose slot was free by this arrival. What remains
  // are the queries still holding (or queued for) a slot at `arrival`.
  slots_.erase(std::remove_if(slots_.begin(), slots_.end(),
                              [&](const Slot& s) {
                                return s.released && s.release_ms <= arrival;
                              }),
               slots_.end());

  AdmissionDecision d;
  d.start_ms = arrival;

  const int active = static_cast<int>(slots_.size());
  if (active >= config_.max_concurrent) {
    // Queue occupancy: occupants that have not started yet either.
    int queued = 0;
    for (const Slot& s : slots_) {
      if (s.start_ms > arrival) ++queued;
    }
    d.queued_ahead = queued;
    const double watermark = priority == 0   ? config_.watermark_background
                             : priority == 1 ? config_.watermark_normal
                                             : 1.0;
    const int allowed =
        static_cast<int>(std::floor(config_.queue_limit * watermark));
    if (queued >= allowed) {
      d.reason = ShedReason::kQueueFull;
      ++stats_.shed_queue_full;
      return d;
    }
    // The slot frees when the (active - c + 1)-th occupant releases.
    // An unreleased occupant (a query in flight on the wall clock, not
    // the simulated one) pins its release at infinity, which makes the
    // wait unbounded and the deadline rule conservative.
    std::vector<double> releases;
    releases.reserve(slots_.size());
    for (const Slot& s : slots_) {
      releases.push_back(s.released ? s.release_ms
                                    : std::numeric_limits<double>::infinity());
    }
    std::sort(releases.begin(), releases.end());
    const double free_at = releases[static_cast<size_t>(
        active - config_.max_concurrent)];
    d.start_ms = std::max(arrival, free_at);
    d.wait_ms = d.start_ms - arrival;
    if (d.wait_ms > deadline) {
      // Balk at admission: the deadline is already unmeetable, so shed
      // now instead of burning queue time and timing out later.
      d.reason = ShedReason::kDeadline;
      d.start_ms = arrival;
      ++stats_.shed_deadline;
      return d;
    }
  }

  Slot slot;
  slot.ticket = next_ticket_++;
  slot.start_ms = d.start_ms;
  slots_.push_back(slot);

  d.admitted = true;
  d.ticket = slot.ticket;
  ++stats_.admitted;
  if (d.wait_ms > 0) ++stats_.queued;
  stats_.total_wait_ms += d.wait_ms;
  return d;
}

void AdmissionController::Release(uint64_t ticket, double release_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& s : slots_) {
    if (s.ticket == ticket && !s.released) {
      s.released = true;
      s.release_ms = std::max(release_ms, s.start_ms);
      return;
    }
  }
}

AdmissionStats AdmissionController::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats out = stats_;
  int in_flight = 0;
  for (const Slot& s : slots_) {
    if (!s.released) ++in_flight;
  }
  out.in_flight = in_flight;
  return out;
}

AdmissionConfig AdmissionController::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

void AdmissionController::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  stats_ = AdmissionStats{};
}

}  // namespace gisql
