/// \file circuit_breaker.h
/// \brief Per-source circuit breakers driven by the health tracker's
/// attempt stream.
///
/// Classic three-state machine per component source:
///
///   closed ──(open_after consecutive failures)──▶ open
///   open ──(cooldown_skips requests skipped)──▶ half-open
///   half-open ──(probe succeeds)──▶ closed
///   half-open ──(probe fails)──▶ open
///
/// While *open*, the executor skips the source before spending any
/// network on it — no message, no detection-timeout burn; the skip
/// itself counts down the cooldown, so recovery needs no wall clock
/// (the simulation has none to spare). While *half-open*, a seeded
/// per-source draw admits a fraction of requests as probes; the rest
/// keep skipping. The draw sequence is keyed on (seed, source name,
/// per-source draw counter), so a given seed walks an identical
/// open/half-open/closed sequence every run.
///
/// Outcomes arrive via SourceOutcomeListener from the
/// SourceHealthTracker — the breaker never watches the network
/// directly, it consumes the same observation pipeline gis.sources
/// renders. Every transition is logged, counted, and queryable
/// (gis.sources breaker columns, gisql_source_breaker_* Prometheus
/// series, TransitionLog() for tests).

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/source_health.h"

namespace gisql {

enum class BreakerState : uint8_t {
  kClosed = 0,
  kOpen = 1,
  kHalfOpen = 2,
};

const char* BreakerStateName(BreakerState state);

/// \brief Breaker policy knobs (mirrored from PlannerOptions).
struct BreakerConfig {
  bool enabled = false;
  int open_after = 5;       ///< consecutive failures that open the breaker
  int cooldown_skips = 3;   ///< skips while open before probing resumes
  double probe_ratio = 0.5; ///< fraction of half-open requests probed
  uint64_t seed = 17;       ///< probe-draw seed
};

/// \brief One source's breaker view (gis.sources columns).
struct BreakerSnapshot {
  std::string source;
  BreakerState state = BreakerState::kClosed;
  int64_t skips = 0;        ///< requests answered without touching the wire
  int64_t probes = 0;       ///< half-open requests let through
  int64_t transitions = 0;  ///< state changes since construction
};

/// \brief All per-source breakers. Thread-safe; state depends only on
/// the per-source outcome/skip sequences.
class CircuitBreakerRegistry : public SourceOutcomeListener {
 public:
  explicit CircuitBreakerRegistry(BreakerConfig config = BreakerConfig());

  /// \brief Reconfigures the policy; per-source state is kept (a
  /// disabled registry stops skipping but remembers its machines).
  void Configure(const BreakerConfig& config);

  bool enabled() const;

  /// \brief Consulted by the executor before spending network on
  /// `source`. True ⇒ skip this candidate at zero network cost. The
  /// call advances the open-state cooldown and the half-open probe
  /// draw, so it must be made exactly once per candidate considered.
  bool ShouldSkip(const std::string& source);

  /// \brief SourceOutcomeListener: one attempt outcome from the health
  /// tracker.
  void OnSourceOutcome(const std::string& source, bool ok) override;

  BreakerState StateOf(const std::string& source) const;
  BreakerSnapshot SnapshotOf(const std::string& source) const;
  std::vector<BreakerSnapshot> Snapshot() const;

  /// \brief Sum of state changes across all sources.
  int64_t TotalTransitions() const;
  /// \brief Sum of skipped requests across all sources.
  int64_t TotalSkips() const;
  /// \brief Sum of admitted probes across all sources.
  int64_t TotalProbes() const;
  /// \brief Sources currently open or half-open.
  int OpenCount() const;

  /// \brief Chronological "source: from->open ..." transition lines —
  /// the determinism witness the chaos tests compare across reruns.
  std::vector<std::string> TransitionLog() const;

  void Reset();

 private:
  struct PerSource {
    BreakerState state = BreakerState::kClosed;
    int64_t streak = 0;       ///< consecutive failures observed
    int64_t open_skips = 0;   ///< skips in the current open episode
    int64_t skips = 0;
    int64_t probes = 0;
    int64_t transitions = 0;
    uint64_t draws = 0;       ///< half-open probe draw counter
  };

  void Transition(const std::string& source, PerSource& s,
                  BreakerState next);

  mutable std::mutex mu_;
  BreakerConfig config_;
  std::map<std::string, PerSource> sources_;
  std::vector<std::string> transition_log_;
};

}  // namespace gisql
