#include "sched/memory_budget.h"

#include <utility>

namespace gisql {

MemoryGrant::MemoryGrant(MemoryBudget* budget, int64_t query_cap)
    : budget_(budget), query_cap_(query_cap) {}

MemoryGrant::MemoryGrant(MemoryGrant&& other) noexcept
    : budget_(std::exchange(other.budget_, nullptr)),
      query_cap_(other.query_cap_),
      used_(other.used_.load(std::memory_order_relaxed)) {}

MemoryGrant& MemoryGrant::operator=(MemoryGrant&& other) noexcept {
  if (this != &other) {
    ReleaseAll();
    budget_ = std::exchange(other.budget_, nullptr);
    query_cap_ = other.query_cap_;
    used_.store(other.used_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }
  return *this;
}

MemoryGrant::~MemoryGrant() { ReleaseAll(); }

void MemoryGrant::ReleaseAll() {
  if (budget_ != nullptr) {
    budget_->Release(used_.load(std::memory_order_relaxed));
    budget_ = nullptr;
  }
  used_.store(0, std::memory_order_relaxed);
}

Status MemoryGrant::Charge(int64_t bytes, const char* what) {
  if (budget_ == nullptr || bytes <= 0) return Status::OK();
  const int64_t total =
      used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // The charge stays booked even on failure — in used_ AND globally:
  // the grant's destructor releases used_ in one piece, so every byte
  // booked here must also reach the global total or the release would
  // drive it negative. The query is about to abort and return it all.
  // The message states only the cap and the operator — the exact
  // running total at the crossing depends on worker interleaving, and
  // error text must not.
  const Status global = budget_->ChargeGlobal(bytes);
  if (total > query_cap_) {
    return Status::Overloaded("query memory budget of ", query_cap_,
                              " bytes exceeded while materializing ", what,
                              " (raise GISQL_QUERY_MEM_BYTES or narrow the "
                              "query)");
  }
  return global;
}

void MemoryBudget::Configure(int64_t query_cap_bytes,
                             int64_t global_cap_bytes) {
  query_cap_.store(query_cap_bytes, std::memory_order_relaxed);
  global_cap_.store(global_cap_bytes, std::memory_order_relaxed);
}

MemoryGrant MemoryBudget::NewGrant() {
  return MemoryGrant(this, query_cap());
}

Status MemoryBudget::ChargeGlobal(int64_t bytes) {
  const int64_t total =
      in_use_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t prev = peak_.load(std::memory_order_relaxed);
  while (total > prev &&
         !peak_.compare_exchange_weak(prev, total,
                                      std::memory_order_relaxed)) {
  }
  if (total > global_cap_.load(std::memory_order_relaxed)) {
    return Status::Overloaded(
        "mediator memory budget of ",
        global_cap_.load(std::memory_order_relaxed),
        " bytes exceeded (raise GISQL_MEDIATOR_MEM_BYTES or admit fewer "
        "concurrent queries)");
  }
  return Status::OK();
}

void MemoryBudget::Release(int64_t bytes) {
  if (bytes > 0) in_use_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryBudget::Reset() {
  in_use_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

}  // namespace gisql
