/// \file admission.h
/// \brief Admission control for the mediator: fixed concurrency slots
/// plus a bounded priority wait queue with per-query deadlines.
///
/// The controller runs on the *simulated* clock. Because mediator
/// execution is synchronous, every previously admitted query's slot
/// occupancy interval [start_ms, release_ms] is fully known by the time
/// the next request arrives, which makes admission a pure function of
/// the arrival schedule: with capacity `c` and `n` unfinished earlier
/// queries, a new arrival starts at its arrival time when a slot is
/// free, otherwise at the (n - c + 1)-th smallest release time among
/// the occupants. A request is *shed* — never executed, zero simulated
/// cost — when the wait queue is full for its priority class or when
/// the computed queue wait would exceed its deadline (the classic
/// "balk at the door" policy: deterministic, and strictly better than
/// timing out after half the work is done). Same seed + same arrival
/// schedule ⇒ identical admit/shed decisions, bit for bit.
///
/// Priority classes share one queue through *watermarks*: class p may
/// only enter while queue occupancy is below its fraction of the queue
/// bound, so background traffic stops queueing before interactive
/// traffic does — a bounded, starvation-free approximation of a strict
/// priority queue that keeps decisions independent of retroactive
/// reordering (impossible in a synchronous executor anyway).

#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace gisql {

/// \brief Why a request was shed (kNone ⇒ admitted).
enum class ShedReason : uint8_t {
  kNone = 0,
  kQueueFull = 1,     ///< wait queue at its bound for this priority
  kDeadline = 2,      ///< computed queue wait exceeds the deadline
  kMemoryBudget = 3,  ///< execution aborted by a memory budget
};

const char* ShedReasonName(ShedReason reason);

/// \brief Admission policy knobs (mirrored from PlannerOptions).
struct AdmissionConfig {
  int max_concurrent = 8;      ///< concurrency slots
  int queue_limit = 32;        ///< bounded wait queue (all classes)
  double max_wait_ms = 1000.0; ///< default deadline while queued
  /// \name Per-class queue watermarks (fraction of queue_limit)
  ///
  /// Class p may only enter while queue occupancy is below its
  /// watermark; interactive (class 2) is always 1.0. The advisor's
  /// tuning policy lowers these under interactive SLO burn so
  /// background/normal traffic backs off first, and relaxes them back
  /// toward the defaults once the burn clears.
  /// @{
  double watermark_background = 0.5;
  double watermark_normal = 0.8;
  /// @}
};

/// \brief One admission request on the simulated clock.
struct AdmissionRequest {
  double arrival_ms = 0.0;
  /// 0 = background, 1 = normal, 2 = interactive. Higher classes may
  /// fill more of the wait queue (50% / 80% / 100% watermarks).
  int priority = 1;
  /// Deadline override; < 0 uses AdmissionConfig::max_wait_ms.
  double max_wait_ms = -1.0;
};

/// \brief The controller's verdict for one request.
struct AdmissionDecision {
  bool admitted = false;
  ShedReason reason = ShedReason::kNone;
  double wait_ms = 0.0;   ///< queue wait (0 when a slot was free)
  double start_ms = 0.0;  ///< simulated time the slot is taken
  uint64_t ticket = 0;    ///< release handle (0 when shed)
  int queued_ahead = 0;   ///< queue occupancy observed at arrival
};

/// \brief Aggregate controller state for `gis.admission`.
struct AdmissionStats {
  int64_t admitted = 0;
  int64_t queued = 0;  ///< admitted with a nonzero queue wait
  int64_t shed_queue_full = 0;
  int64_t shed_deadline = 0;
  double total_wait_ms = 0.0;
  int in_flight = 0;  ///< slots taken and not yet released
};

/// \brief Deterministic slot-and-queue admission on the simulated
/// clock. Thread-safe; decisions depend only on the request sequence.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = AdmissionConfig());

  /// \brief Reconfigures limits. Occupancy and counters are kept; the
  /// new limits apply from the next Admit on.
  void Configure(const AdmissionConfig& config);

  /// \brief Decides one request. Admitted requests take a slot from
  /// `start_ms` until the matching Release.
  AdmissionDecision Admit(const AdmissionRequest& request);

  /// \brief Frees the slot of an admitted request at `release_ms`
  /// (start_ms + the query's simulated elapsed time).
  void Release(uint64_t ticket, double release_ms);

  AdmissionStats Stats() const;
  AdmissionConfig config() const;

  /// \brief Drops occupancy and counters (bench rungs reset between
  /// ladders the way they reset metrics registries).
  void Reset();

 private:
  struct Slot {
    uint64_t ticket = 0;
    double start_ms = 0.0;
    /// Release time; infinity until Release() is called (a query in
    /// flight right now, or an abandoned ticket).
    double release_ms = 0.0;
    bool released = false;
  };

  mutable std::mutex mu_;
  AdmissionConfig config_;
  AdmissionStats stats_;
  uint64_t next_ticket_ = 1;
  std::vector<Slot> slots_;  ///< occupants not yet pruned
};

}  // namespace gisql
