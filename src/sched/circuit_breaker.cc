#include "sched/circuit_breaker.h"

#include "common/hash.h"
#include "common/logging.h"

namespace gisql {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

CircuitBreakerRegistry::CircuitBreakerRegistry(BreakerConfig config)
    : config_(config) {}

void CircuitBreakerRegistry::Configure(const BreakerConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
}

bool CircuitBreakerRegistry::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_.enabled;
}

void CircuitBreakerRegistry::Transition(const std::string& source,
                                        PerSource& s, BreakerState next) {
  if (s.state == next) return;
  std::string line = source;
  line += ": ";
  line += BreakerStateName(s.state);
  line += "->";
  line += BreakerStateName(next);
  GISQL_LOG(kInfo) << "circuit breaker " << line;
  transition_log_.push_back(std::move(line));
  s.state = next;
  ++s.transitions;
  if (next == BreakerState::kOpen) s.open_skips = 0;
}

bool CircuitBreakerRegistry::ShouldSkip(const std::string& source) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!config_.enabled) return false;
  PerSource& s = sources_[source];
  switch (s.state) {
    case BreakerState::kClosed:
      return false;
    case BreakerState::kOpen:
      ++s.skips;
      ++s.open_skips;
      if (s.open_skips >= config_.cooldown_skips) {
        Transition(source, s, BreakerState::kHalfOpen);
      }
      return true;
    case BreakerState::kHalfOpen: {
      // Seeded Bernoulli draw, keyed so the probe pattern is a pure
      // function of (seed, source, how many draws came before).
      const uint64_t h = HashInt(
          HashCombine(HashString(source, config_.seed), s.draws++));
      const double u =
          static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
      if (u < config_.probe_ratio) {
        ++s.probes;
        return false;
      }
      ++s.skips;
      return true;
    }
  }
  return false;
}

void CircuitBreakerRegistry::OnSourceOutcome(const std::string& source,
                                             bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  PerSource& s = sources_[source];
  if (ok) {
    s.streak = 0;
    if (s.state != BreakerState::kClosed) {
      Transition(source, s, BreakerState::kClosed);
    }
    return;
  }
  ++s.streak;
  if (s.state == BreakerState::kHalfOpen) {
    // The probe failed: back to open for another cooldown.
    Transition(source, s, BreakerState::kOpen);
  } else if (s.state == BreakerState::kClosed &&
             s.streak >= config_.open_after) {
    Transition(source, s, BreakerState::kOpen);
  }
}

BreakerState CircuitBreakerRegistry::StateOf(const std::string& source) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(source);
  return it == sources_.end() ? BreakerState::kClosed : it->second.state;
}

BreakerSnapshot CircuitBreakerRegistry::SnapshotOf(
    const std::string& source) const {
  std::lock_guard<std::mutex> lock(mu_);
  BreakerSnapshot snap;
  snap.source = source;
  auto it = sources_.find(source);
  if (it != sources_.end()) {
    snap.state = it->second.state;
    snap.skips = it->second.skips;
    snap.probes = it->second.probes;
    snap.transitions = it->second.transitions;
  }
  return snap;
}

std::vector<BreakerSnapshot> CircuitBreakerRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BreakerSnapshot> out;
  out.reserve(sources_.size());
  for (const auto& [name, s] : sources_) {
    BreakerSnapshot snap;
    snap.source = name;
    snap.state = s.state;
    snap.skips = s.skips;
    snap.probes = s.probes;
    snap.transitions = s.transitions;
    out.push_back(std::move(snap));
  }
  return out;
}

int64_t CircuitBreakerRegistry::TotalTransitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [name, s] : sources_) total += s.transitions;
  return total;
}

int64_t CircuitBreakerRegistry::TotalSkips() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [name, s] : sources_) total += s.skips;
  return total;
}

int64_t CircuitBreakerRegistry::TotalProbes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [name, s] : sources_) total += s.probes;
  return total;
}

int CircuitBreakerRegistry::OpenCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  int open = 0;
  for (const auto& [name, s] : sources_) {
    if (s.state != BreakerState::kClosed) ++open;
  }
  return open;
}

std::vector<std::string> CircuitBreakerRegistry::TransitionLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transition_log_;
}

void CircuitBreakerRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.clear();
  transition_log_.clear();
}

}  // namespace gisql
