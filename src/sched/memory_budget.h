/// \file memory_budget.h
/// \brief Per-query and global memory accounting for the mediator.
///
/// The executor charges an estimate of every batch it materializes —
/// fragment results, join hash tables and outputs, aggregate and sort
/// buffers — against two caps: the query's own budget and the
/// mediator-wide budget shared by all in-flight queries. Charges are
/// *cumulative for the lifetime of the query* and released in one
/// piece when the query finishes: releasing per-operator would make
/// the cap-crossing moment depend on operator completion order, which
/// the worker pool is free to permute, whereas a commutative running
/// sum crosses (or doesn't cross) its cap identically under any
/// schedule. A query over budget fails with Status::Overloaded; the
/// mediator itself never allocates past its global cap.
///
/// Bytes are estimated from row count and schema width
/// (EstimateBatchBytes), not by walking cell payloads — O(1) per batch
/// on the hot path, and fully deterministic.

#pragma once

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace gisql {

/// \brief Estimated resident bytes of `rows` materialized rows of
/// `width` columns (Row vector + Value cells; strings estimated flat).
inline int64_t EstimateRowBytes(int64_t rows, int64_t width) {
  return rows * (32 + 24 * width);
}

class MemoryBudget;

/// \brief One query's budget handle: charges accumulate here and
/// against the owning MemoryBudget, and everything is released when
/// the grant is destroyed. Thread-safe (pooled operators charge
/// concurrently). Movable, not copyable.
class MemoryGrant {
 public:
  MemoryGrant() = default;
  MemoryGrant(MemoryBudget* budget, int64_t query_cap);
  MemoryGrant(MemoryGrant&& other) noexcept;
  MemoryGrant& operator=(MemoryGrant&& other) noexcept;
  MemoryGrant(const MemoryGrant&) = delete;
  MemoryGrant& operator=(const MemoryGrant&) = delete;
  ~MemoryGrant();

  /// \brief Adds `bytes` to the query's running total and the global
  /// total; Overloaded when either cap is crossed. `what` names the
  /// charging operator for the error message.
  Status Charge(int64_t bytes, const char* what);

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t query_cap() const { return query_cap_; }
  bool active() const { return budget_ != nullptr; }

 private:
  void ReleaseAll();

  MemoryBudget* budget_ = nullptr;
  int64_t query_cap_ = 0;
  std::atomic<int64_t> used_{0};
};

/// \brief The mediator-wide budget: global cap, in-use and peak
/// accounting, and the factory for per-query grants.
class MemoryBudget {
 public:
  MemoryBudget() = default;

  void Configure(int64_t query_cap_bytes, int64_t global_cap_bytes);

  /// \brief A grant charging against this budget under the configured
  /// per-query cap.
  MemoryGrant NewGrant();

  int64_t query_cap() const {
    return query_cap_.load(std::memory_order_relaxed);
  }
  int64_t global_cap() const {
    return global_cap_.load(std::memory_order_relaxed);
  }
  int64_t in_use() const { return in_use_.load(std::memory_order_relaxed); }
  /// Highest global in-use watermark ever observed. With one query in
  /// flight this is the largest per-query total, a deterministic value.
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  friend class MemoryGrant;

  /// Adds to the global total, updating the peak; Overloaded past cap.
  Status ChargeGlobal(int64_t bytes);
  void Release(int64_t bytes);

  std::atomic<int64_t> query_cap_{256LL << 20};
  std::atomic<int64_t> global_cap_{1LL << 30};
  std::atomic<int64_t> in_use_{0};
  std::atomic<int64_t> peak_{0};
};

}  // namespace gisql
