#include "net/fault_schedule.h"

#include "common/hash.h"

namespace gisql {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kOutage:
      return "outage";
    case FaultKind::kSpike:
      return "spike";
  }
  return "unknown";
}

void FaultSchedule::InjectOn(const std::string& host, int opcode,
                             FaultKind kind, int count) {
  std::lock_guard<std::mutex> lock(mu_);
  injections_[host].push_back(Injection{opcode, kind, count});
}

FaultSchedule::Decision FaultSchedule::Next(const std::string& from,
                                            const std::string& to,
                                            uint8_t opcode, uint64_t index) {
  Decision d;
  // The decision's entropy is fixed by (seed, link, index) alone so a
  // replay with the same schedule reproduces byte-identical corruption.
  const uint64_t link_hash = HashCombine(HashString(from), HashString(to));
  d.entropy = HashInt(HashCombine(seed_, HashCombine(link_hash, index)));

  std::lock_guard<std::mutex> lock(mu_);

  // Targeted injections outrank everything.
  auto inj_it = injections_.find(to);
  if (inj_it != injections_.end()) {
    for (auto& inj : inj_it->second) {
      if (inj.remaining > 0 &&
          (inj.opcode < 0 || inj.opcode == static_cast<int>(opcode))) {
        --inj.remaining;
        d.kind = inj.kind;
        if (d.kind == FaultKind::kSpike) d.spike_factor = profile_.spike_factor;
        if (d.kind == FaultKind::kOutage || d.kind == FaultKind::kCrash) {
          auto& until = outage_until_[{from, to}];
          until = std::max(
              until, index + 1 + static_cast<uint64_t>(profile_.outage_messages));
        }
        return d;
      }
    }
  }

  // An open outage window swallows the message.
  auto out_it = outage_until_.find({from, to});
  if (out_it != outage_until_.end() && index < out_it->second) {
    d.kind = FaultKind::kOutage;
    return d;
  }

  // Probabilistic draw: one uniform variate against the cumulative
  // profile, so at most one fault fires per message.
  const double u = static_cast<double>(d.entropy >> 11) * 0x1.0p-53;
  double acc = profile_.drop;
  if (u < acc) {
    d.kind = FaultKind::kDrop;
  } else if (u < (acc += profile_.duplicate)) {
    d.kind = FaultKind::kDuplicate;
  } else if (u < (acc += profile_.corrupt)) {
    d.kind = FaultKind::kCorrupt;
  } else if (u < (acc += profile_.crash)) {
    d.kind = FaultKind::kCrash;
  } else if (u < (acc += profile_.outage)) {
    d.kind = FaultKind::kOutage;
  } else if (u < (acc += profile_.spike)) {
    d.kind = FaultKind::kSpike;
    d.spike_factor = profile_.spike_factor;
  }

  if (d.kind == FaultKind::kCrash || d.kind == FaultKind::kOutage) {
    // A crash restarts the source; an outage partitions the link. Both
    // open a window over the next profile_.outage_messages messages.
    auto& until = outage_until_[{from, to}];
    until = std::max(
        until, index + 1 + static_cast<uint64_t>(profile_.outage_messages));
  }
  return d;
}

}  // namespace gisql
