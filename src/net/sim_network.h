/// \file sim_network.h
/// \brief Deterministic simulated wide-area network between the mediator
/// and the autonomous component information systems.
///
/// The 1989 global-information-system setting assumes component systems
/// owned by different organizations, reachable over slow, expensive
/// links. This module substitutes a deterministic simulation for that
/// physical testbed: every RPC is executed synchronously in-process,
/// while its *cost* — request/response transfer time from per-link
/// latency and bandwidth, plus server processing time — is computed
/// analytically and accounted in a metrics registry. Experiments read
/// bytes, message counts, and simulated elapsed milliseconds from here;
/// wall-clock time never enters the results, so every run is exactly
/// reproducible.
///
/// Failure model: component systems are autonomous and fail
/// independently of the mediator. Beyond the binary SetHostDown switch,
/// an installed FaultSchedule injects seeded per-message faults (drops,
/// duplicate deliveries, response corruption, transient outages,
/// latency spikes, mid-transfer crashes); see net/fault_schedule.h.
/// Responses cross the wire inside checksummed frames
/// (wire::SealFrame), so corruption is detected, never consumed.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/trace.h"
#include "net/fault_schedule.h"

namespace gisql {

/// \brief Characteristics of one (directionless) link.
struct LinkSpec {
  double latency_ms = 5.0;        ///< one-way propagation delay
  double bandwidth_mbps = 100.0;  ///< megabits per second

  /// \brief Time to move `bytes` across this link, one way.
  double TransferTimeMs(int64_t bytes) const {
    const double seconds =
        static_cast<double>(bytes) * 8.0 / (bandwidth_mbps * 1e6);
    return latency_ms + seconds * 1e3;
  }
};

/// \brief Server-side handler a registered host implements.
class RpcHandler {
 public:
  virtual ~RpcHandler() = default;

  /// \brief Handles one request. `processing_ms` (out, optional write)
  /// reports simulated server CPU time added to the call's latency.
  virtual Result<std::vector<uint8_t>> Handle(
      uint8_t opcode, const std::vector<uint8_t>& request,
      double* processing_ms) = 0;
};

/// \brief Outcome of one simulated RPC.
struct RpcResult {
  std::vector<uint8_t> payload;
  double elapsed_ms = 0.0;      ///< request + processing + response time
  int64_t bytes_sent = 0;       ///< request size
  int64_t bytes_received = 0;   ///< response size
};

struct RpcAttempt;

/// \brief Passive observer of every RPC attempt the fabric carries.
///
/// Installed with SimNetwork::set_rpc_observer; the mediator's
/// source-health tracker (core/source_health.h) hangs off this hook so
/// per-source request/error/latency accounting sees exactly what the
/// simulation charged — including injected faults — without the network
/// layer depending on the mediator. Callbacks run synchronously on the
/// calling thread; implementations must be thread-safe (fragments
/// execute on worker threads).
class RpcObserver {
 public:
  virtual ~RpcObserver() = default;

  /// \brief One finished attempt from `from` to `to` (success or
  /// failure; accounting fields of `attempt` are final).
  virtual void OnRpcAttempt(const std::string& from, const std::string& to,
                            uint8_t opcode, const RpcAttempt& attempt) = 0;

  /// \brief A retry loop decided to back off and try `to` again after a
  /// failed attempt (one call per spent retry).
  virtual void OnRetry(const std::string& to) { (void)to; }
};

/// \brief Outcome of one *attempt*, failed or not. Unlike
/// Result<RpcResult>, the simulated-time and byte accounting survive a
/// failure, so retry loops can charge what the attempt actually cost.
struct RpcAttempt {
  Status status;                ///< OK, transport error, or app error
  std::vector<uint8_t> payload; ///< valid iff status.ok()
  double elapsed_ms = 0.0;      ///< charged even when the attempt failed
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  FaultKind fault = FaultKind::kNone;  ///< what the schedule injected

  bool ok() const { return status.ok(); }
};

/// \brief The simulated network fabric.
///
/// Hosts register under unique names. Calls between hosts traverse the
/// configured link (or the default link). Counters accumulated in
/// metrics(): `net.messages`, `net.bytes_sent`, `net.bytes_received`,
/// `net.bytes.<host>` (bytes received from that host), and
/// `net.faults.<kind>` for every injected fault.
class SimNetwork {
 public:
  void set_default_link(LinkSpec spec) { default_link_ = spec; }
  const LinkSpec& default_link() const { return default_link_; }

  /// \brief Configures the link between two hosts (symmetric).
  void SetLink(const std::string& a, const std::string& b, LinkSpec spec);

  /// \brief The link used between `a` and `b`.
  const LinkSpec& GetLink(const std::string& a, const std::string& b) const;

  /// \brief Registers a host; AlreadyExists if the name is taken.
  Status RegisterHost(const std::string& name, RpcHandler* handler);

  Status UnregisterHost(const std::string& name);

  /// \brief Marks a host unreachable (hard failure injection); calls to
  /// it return NetworkError. For richer seeded fault mixes install a
  /// FaultSchedule instead.
  void SetHostDown(const std::string& name, bool down);

  /// \name Seeded fault injection
  /// @{

  /// \brief Attaches a fault schedule. Replaces any previous schedule;
  /// the network owns it.
  void InstallFaults(uint64_t seed, FaultProfile profile);

  void ClearFaults() { faults_.reset(); }

  /// \brief The installed schedule (for targeted InjectOn), or nullptr.
  FaultSchedule* faults() { return faults_.get(); }
  /// @}

  /// \brief Default detection window (ms) a caller waits, on top of two
  /// propagation delays, before declaring a silent peer dead.
  static constexpr double kDetectionWindowMs = 100.0;

  /// \brief Simulated time a caller wastes discovering that `to` is
  /// silent (connection timeout model: two propagation delays plus the
  /// detection window — per-attempt timeout under a RetryPolicy).
  double TimeoutMs(const std::string& from, const std::string& to,
                   double detection_window_ms = kDetectionWindowMs) const {
    return 2.0 * GetLink(from, to).latency_ms + detection_window_ms;
  }

  /// \brief Performs one RPC attempt from `from` to `to`, applying any
  /// scheduled fault. Accounting (bytes, messages, fault counters,
  /// elapsed simulated time) is recorded whether or not the attempt
  /// succeeds; transport failures charge the detection timeout. Every
  /// attempt observes the `net.rpc_ms` latency histogram (and
  /// `net.response_bytes` for delivered responses) so experiments can
  /// report tails, not just totals. When `sink` carries a collector,
  /// the attempt's send/handle/receive phases are recorded as "net"
  /// spans under sink.parent, starting at sink.start_ms.
  RpcAttempt CallAttempt(const std::string& from, const std::string& to,
                         uint8_t opcode, const std::vector<uint8_t>& request,
                         double detection_window_ms = kDetectionWindowMs,
                         const TraceSink& sink = TraceSink());

  /// \brief Synchronously performs one RPC from `from` to `to`.
  ///
  /// On success the result carries the response payload and the
  /// simulated elapsed time; transfer sizes and message counts are
  /// added to metrics(). Application-level errors returned by the
  /// handler propagate as-is (the transfer of the error frame is still
  /// accounted). Convenience wrapper over CallAttempt for callers that
  /// do not retry.
  Result<RpcResult> Call(const std::string& from, const std::string& to,
                         uint8_t opcode,
                         const std::vector<uint8_t>& request);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// \brief Installs (or clears, with nullptr) the attempt observer.
  /// Not owned; must outlive the network or be cleared first.
  void set_rpc_observer(RpcObserver* observer) { observer_ = observer; }

  /// \brief Accounts one spent retry against `to`: bumps `net.retries`
  /// and forwards to the observer. Called by retry loops (net/retry.cc)
  /// so per-source and network-wide retry counts stay in lockstep.
  void NotifyRetry(const std::string& to) {
    metrics_.Add("net.retries", 1);
    if (observer_ != nullptr) observer_->OnRetry(to);
  }

  /// \brief Names of all registered hosts (sorted).
  std::vector<std::string> HostNames() const;

 private:
  static std::pair<std::string, std::string> LinkKey(const std::string& a,
                                                     const std::string& b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  /// \brief Next 0-based message index on the directed link (from, to).
  uint64_t NextMessageIndex(const std::string& from, const std::string& to);

  /// \brief CallAttempt minus the latency/size histogram observations
  /// (which apply uniformly to every exit path).
  RpcAttempt CallAttemptImpl(const std::string& from, const std::string& to,
                             uint8_t opcode,
                             const std::vector<uint8_t>& request,
                             double detection_window_ms,
                             const TraceSink& sink);

  struct HostEntry {
    RpcHandler* handler = nullptr;
    bool down = false;
  };

  LinkSpec default_link_;
  std::map<std::pair<std::string, std::string>, LinkSpec> links_;
  std::unordered_map<std::string, HostEntry> hosts_;
  std::unique_ptr<FaultSchedule> faults_;
  RpcObserver* observer_ = nullptr;
  /// Per-directed-link message counters: the fault schedule's
  /// randomness domain. Guarded by mu_ (fragments execute on worker
  /// threads).
  std::map<std::pair<std::string, std::string>, uint64_t> msg_index_;
  std::mutex mu_;
  MetricsRegistry metrics_;
};

}  // namespace gisql
