/// \file fault_schedule.h
/// \brief Deterministic fault injection for the simulated WAN.
///
/// A FaultSchedule attached to a SimNetwork decides, per (link,
/// message-index), whether a message is delivered cleanly or suffers a
/// fault: dropped in transit, delivered twice, its response corrupted
/// or cut off by a mid-transfer source crash, swallowed by a transient
/// unavailability window, or slowed by a latency spike. Every decision
/// derives from a single uint64 seed hashed with the link name and the
/// link-local message index, so a schedule replays identically
/// regardless of thread interleaving — the per-link message sequence,
/// not wall clock, is the randomness domain.
///
/// Two injection modes compose:
///  * probabilistic — a FaultProfile of per-message probabilities,
///    drawn independently per (link, index) from the seed;
///  * targeted — InjectOn() arms one-shot (or counted) faults matched
///    by destination host and opcode, used by the 2PC fault-matrix
///    tests and the benches to hit an exact protocol step.
///
/// Non-idempotent admin traffic (Opcode::kAdminSql) is exempt from
/// *duplication* only: at-least-once delivery of DDL/DML would change
/// state twice, which is a property of the admin channel (documented in
/// DESIGN.md), not a transport behavior worth simulating here. All
/// other faults apply to every opcode.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace gisql {

/// \brief What the schedule did to one message.
enum class FaultKind : uint8_t {
  kNone = 0,
  kDrop,       ///< request lost in transit; handler never runs
  kDuplicate,  ///< request delivered twice; handler runs twice
  kCorrupt,    ///< response frame bit-flipped; checksum catches it
  kCrash,      ///< source dies mid-response: truncated frame + outage
  kOutage,     ///< transient unavailability window (counted in messages)
  kSpike,      ///< link slows by spike_factor for this message
};

const char* FaultKindName(FaultKind kind);

/// \brief Per-message fault probabilities. All independent draws; at
/// most one fault fires per message (first match in the order below).
struct FaultProfile {
  double drop = 0.0;
  double duplicate = 0.0;
  double corrupt = 0.0;
  double crash = 0.0;
  double outage = 0.0;
  double spike = 0.0;
  /// How many subsequent messages on the link an outage (or post-crash
  /// restart) swallows.
  int outage_messages = 2;
  /// Latency multiplier while a spike is active.
  double spike_factor = 8.0;

  /// \brief A balanced chaos mix scaled by `intensity` in [0, 1]:
  /// intensity 1.0 faults roughly a third of all messages.
  static FaultProfile Chaos(double intensity) {
    FaultProfile p;
    p.drop = 0.08 * intensity;
    p.duplicate = 0.05 * intensity;
    p.corrupt = 0.06 * intensity;
    p.crash = 0.03 * intensity;
    p.outage = 0.03 * intensity;
    p.spike = 0.08 * intensity;
    return p;
  }
};

/// \brief Seeded, replayable fault decisions for a SimNetwork.
///
/// Thread-safe: decisions for different links are independent, and the
/// only cross-message state (outage windows, targeted injections) is
/// guarded by a mutex.
class FaultSchedule {
 public:
  FaultSchedule(uint64_t seed, FaultProfile profile)
      : seed_(seed), profile_(profile) {}

  uint64_t seed() const { return seed_; }
  const FaultProfile& profile() const { return profile_; }

  /// \brief Outcome of one decision. `entropy` is a deterministic
  /// 64-bit draw the network uses to pick corruption bit positions and
  /// crash truncation points.
  struct Decision {
    FaultKind kind = FaultKind::kNone;
    double spike_factor = 1.0;
    uint64_t entropy = 0;
  };

  /// \brief Arms a targeted fault: the next `count` messages to `host`
  /// whose opcode matches `opcode` (-1 = any) suffer `kind`. Targeted
  /// faults take precedence over probabilistic draws. Use a large count
  /// to make a step permanently faulty.
  void InjectOn(const std::string& host, int opcode, FaultKind kind,
                int count = 1);

  /// \brief Decides the fate of message number `index` (0-based,
  /// link-local) from `from` to `to`. Mutates outage-window state.
  Decision Next(const std::string& from, const std::string& to,
                uint8_t opcode, uint64_t index);

 private:
  struct Injection {
    int opcode;  ///< -1 matches any opcode
    FaultKind kind;
    int remaining;
  };

  uint64_t seed_;
  FaultProfile profile_;
  std::mutex mu_;
  /// link key -> first message index after the current outage window.
  std::map<std::pair<std::string, std::string>, uint64_t> outage_until_;
  std::map<std::string, std::vector<Injection>> injections_;
};

}  // namespace gisql
