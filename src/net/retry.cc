#include "net/retry.h"

#include <algorithm>

#include "common/hash.h"

namespace gisql {

RetryResult CallWithRetry(SimNetwork& net, const RetryPolicy& policy,
                          const std::string& from, const std::string& to,
                          uint8_t opcode, const std::vector<uint8_t>& request,
                          uint64_t stream_nonce, const TraceSink& sink) {
  RetryResult result;
  const int max_attempts = std::max(1, policy.max_attempts);
  // Jitter stream: per-destination, decorrelated across call sites so
  // concurrent retries against one host do not synchronize.
  const uint64_t stream = HashCombine(HashString(to), stream_nonce);

  // Simulated-time cursor for the attempt/backoff spans.
  double cursor = sink.start_ms;
  Status last;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    uint64_t span = 0;
    if (sink.trace != nullptr) {
      span = sink.trace->Begin("attempt " + std::to_string(attempt), "net",
                               sink.parent, cursor);
      sink.trace->SetHost(span, to);
    }
    RpcAttempt a = net.CallAttempt(from, to, opcode, request,
                                   policy.attempt_timeout_ms,
                                   TraceSink{sink.trace, span, cursor});
    ++result.attempts;
    result.elapsed_ms += a.elapsed_ms;
    result.bytes_sent += a.bytes_sent;
    result.bytes_received += a.bytes_received;
    if (sink.trace != nullptr) {
      sink.trace->AddIo(span, a.bytes_sent, a.bytes_received, 1, 1, 0);
      if (!a.ok()) sink.trace->SetNote(span, a.status.message());
      sink.trace->End(span, cursor + a.elapsed_ms);
    }
    cursor += a.elapsed_ms;

    if (a.ok()) {
      result.status = Status::OK();
      result.payload = std::move(a.payload);
      return result;
    }
    last = std::move(a.status);
    if (!IsRetryableTransport(last) || attempt == max_attempts) break;
    const double backoff_ms = policy.BackoffMs(attempt, stream);
    if (sink.trace != nullptr) {
      const uint64_t b =
          sink.trace->Begin("backoff", "net", sink.parent, cursor);
      sink.trace->SetHost(b, to);
      sink.trace->AddIo(b, 0, 0, 0, 0, 1);
      sink.trace->End(b, cursor + backoff_ms);
    }
    cursor += backoff_ms;
    result.elapsed_ms += backoff_ms;
    net.NotifyRetry(to);
  }

  if (IsRetryableTransport(last) && result.attempts > 1) {
    // Exhausted: keep the code (NetworkError / SerializationError) so
    // failover logic still dispatches on it, but name the dead source
    // and the spend.
    result.status =
        Status(last.code(), "source '" + to + "' unreachable after " +
                                std::to_string(result.attempts) +
                                " attempts (last error: " + last.message() +
                                ")");
  } else {
    result.status = std::move(last);
  }
  return result;
}

}  // namespace gisql
