#include "net/sim_network.h"

#include <algorithm>

#include "common/hash.h"
#include "wire/protocol.h"

namespace gisql {

void SimNetwork::SetLink(const std::string& a, const std::string& b,
                         LinkSpec spec) {
  links_[LinkKey(a, b)] = spec;
}

const LinkSpec& SimNetwork::GetLink(const std::string& a,
                                    const std::string& b) const {
  auto it = links_.find(LinkKey(a, b));
  return it == links_.end() ? default_link_ : it->second;
}

Status SimNetwork::RegisterHost(const std::string& name,
                                RpcHandler* handler) {
  if (handler == nullptr) {
    return Status::InvalidArgument("null handler for host '", name, "'");
  }
  auto [it, inserted] = hosts_.emplace(name, HostEntry{handler, false});
  if (!inserted) {
    return Status::AlreadyExists("host '", name, "' already registered");
  }
  return Status::OK();
}

Status SimNetwork::UnregisterHost(const std::string& name) {
  if (hosts_.erase(name) == 0) {
    return Status::NotFound("host '", name, "' not registered");
  }
  return Status::OK();
}

void SimNetwork::SetHostDown(const std::string& name, bool down) {
  auto it = hosts_.find(name);
  if (it != hosts_.end()) it->second.down = down;
}

void SimNetwork::InstallFaults(uint64_t seed, FaultProfile profile) {
  faults_ = std::make_unique<FaultSchedule>(seed, profile);
}

uint64_t SimNetwork::NextMessageIndex(const std::string& from,
                                      const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  return msg_index_[{from, to}]++;
}

namespace {

/// Flips three pseudo-random bits of `frame`, positioned by `entropy`.
/// Three flips defeat any accidental CRC-32 self-cancellation a single
/// unlucky flip pattern could produce with a different checksum.
void CorruptFrame(std::vector<uint8_t>* frame, uint64_t entropy) {
  if (frame->empty()) return;
  uint64_t bits = HashInt(entropy);
  const uint64_t total_bits = frame->size() * 8;
  for (int i = 0; i < 3; ++i) {
    const uint64_t pos = bits % total_bits;
    (*frame)[pos / 8] ^= static_cast<uint8_t>(1u << (pos % 8));
    bits = HashInt(bits);
  }
}

}  // namespace

RpcAttempt SimNetwork::CallAttempt(const std::string& from,
                                   const std::string& to, uint8_t opcode,
                                   const std::vector<uint8_t>& request,
                                   double detection_window_ms,
                                   const TraceSink& sink) {
  RpcAttempt a =
      CallAttemptImpl(from, to, opcode, request, detection_window_ms, sink);
  // Latency/size tails: every attempt (timeouts included — callers
  // really wait them out) lands in the histograms.
  metrics_.Observe("net.rpc_ms", a.elapsed_ms);
  if (a.bytes_received > 0) {
    metrics_.Observe("net.response_bytes",
                     static_cast<double>(a.bytes_received));
  }
  if (observer_ != nullptr) observer_->OnRpcAttempt(from, to, opcode, a);
  return a;
}

RpcAttempt SimNetwork::CallAttemptImpl(const std::string& from,
                                       const std::string& to, uint8_t opcode,
                                       const std::vector<uint8_t>& request,
                                       double detection_window_ms,
                                       const TraceSink& sink) {
  RpcAttempt a;
  const LinkSpec& link = GetLink(from, to);
  const double timeout_ms = 2.0 * link.latency_ms + detection_window_ms;

  // Phase spans hang off the caller's span; `t` walks the simulated
  // clock across send → handle → receive.
  double t = sink.start_ms;
  auto phase = [&](const char* name, double dur_ms, int64_t bytes_out,
                   int64_t bytes_in, const std::string& note) {
    if (sink.trace != nullptr) {
      const uint64_t id = sink.trace->Begin(name, "net", sink.parent, t);
      sink.trace->SetHost(id, to);
      if (bytes_out != 0 || bytes_in != 0) {
        sink.trace->AddIo(id, bytes_out, bytes_in, 0, 0, 0);
      }
      if (!note.empty()) sink.trace->SetNote(id, note);
      sink.trace->End(id, t + dur_ms);
    }
    t += dur_ms;
  };

  auto it = hosts_.find(to);
  if (it == hosts_.end()) {
    // Configuration error, not a simulated network event: nothing was
    // sent, but a retry loop still burns the detection window learning
    // nobody answers at that address.
    a.status = Status::NetworkError("host '", to, "' is not registered");
    a.elapsed_ms = timeout_ms;
    phase("timeout", timeout_ms, 0, 0, "host not registered");
    return a;
  }

  FaultSchedule::Decision fault;
  if (faults_ != nullptr) {
    fault = faults_->Next(from, to, opcode, NextMessageIndex(from, to));
    if (fault.kind == FaultKind::kDuplicate &&
        opcode == static_cast<uint8_t>(wire::Opcode::kAdminSql)) {
      // The admin channel is not idempotent (see fault_schedule.h);
      // duplication is downgraded to a clean delivery.
      fault.kind = FaultKind::kNone;
    }
    if (fault.kind != FaultKind::kNone) {
      metrics_.Add(std::string("net.faults.") + FaultKindName(fault.kind), 1);
    }
    a.fault = fault.kind;
  }

  if (it->second.down || fault.kind == FaultKind::kOutage) {
    // Connection refused / partitioned link: nothing crosses the wire;
    // the caller burns the detection timeout.
    a.status = Status::NetworkError("host '", to, "' is unreachable");
    a.elapsed_ms = timeout_ms;
    metrics_.Add("net.sim_us", static_cast<int64_t>(a.elapsed_ms * 1e3));
    phase("timeout", timeout_ms, 0, 0,
          fault.kind == FaultKind::kOutage ? "outage" : "host down");
    return a;
  }

  const double spike = fault.kind == FaultKind::kSpike ? fault.spike_factor
                                                       : 1.0;
  a.bytes_sent = static_cast<int64_t>(request.size()) + 16;  // header

  if (fault.kind == FaultKind::kDrop) {
    // The request vanishes in transit: bytes left the sender, the
    // handler never ran, and the caller waits out the full window.
    metrics_.Add("net.messages", 1);
    metrics_.Add("net.bytes_sent", a.bytes_sent);
    a.status = Status::NetworkError("message to host '", to,
                                    "' lost in transit");
    a.elapsed_ms = timeout_ms;
    metrics_.Add("net.sim_us", static_cast<int64_t>(a.elapsed_ms * 1e3));
    metrics_.Set("net.last_elapsed_ms", a.elapsed_ms);
    phase("send", timeout_ms, a.bytes_sent, 0, "lost in transit");
    return a;
  }

  const double send_ms = spike * link.TransferTimeMs(a.bytes_sent);
  double elapsed = send_ms;
  phase("send", send_ms, a.bytes_sent, 0, "");

  double processing_ms = 0.0;
  Result<std::vector<uint8_t>> response =
      it->second.handler->Handle(opcode, request, &processing_ms);
  elapsed += processing_ms;
  phase("handle", processing_ms, 0, 0, "");

  metrics_.Add("net.messages", 1);
  metrics_.Add("net.bytes_sent", a.bytes_sent);

  if (fault.kind == FaultKind::kDuplicate) {
    // At-least-once delivery: the handler runs again on the duplicate
    // and its (ignored) response still crosses the wire. The caller's
    // latency is set by the first response alone.
    double dup_processing_ms = 0.0;
    Result<std::vector<uint8_t>> dup =
        it->second.handler->Handle(opcode, request, &dup_processing_ms);
    metrics_.Add("net.messages", 1);
    metrics_.Add("net.bytes_sent", a.bytes_sent);
    const int64_t dup_bytes =
        dup.ok() ? static_cast<int64_t>(dup->size()) +
                       static_cast<int64_t>(wire::kFrameHeaderBytes) + 16
                 : static_cast<int64_t>(dup.status().message().size()) + 24;
    metrics_.Add("net.bytes_received", dup_bytes);
  }

  if (!response.ok()) {
    // Error frames still cross the wire.
    const int64_t err_bytes =
        static_cast<int64_t>(response.status().message().size()) + 24;
    const double err_ms = spike * link.TransferTimeMs(err_bytes);
    elapsed += err_ms;
    metrics_.Add("net.bytes_received", err_bytes);
    a.bytes_received = err_bytes;
    a.status = response.status();
    a.elapsed_ms = elapsed;
    metrics_.Add("net.sim_us", static_cast<int64_t>(elapsed * 1e3));
    metrics_.Set("net.last_elapsed_ms", elapsed);
    phase("recv", err_ms, 0, err_bytes, "application error");
    return a;
  }

  // The response travels inside a checksummed frame so in-flight damage
  // is detected at the receiver instead of consumed.
  std::vector<uint8_t> frame = wire::SealFrame(*response);

  if (fault.kind == FaultKind::kCrash) {
    // The source dies mid-response: the connection resets after a
    // deterministic prefix and the caller waits out the window before
    // declaring it dead. The schedule has opened an outage window for
    // the restart.
    const size_t cut = frame.empty() ? 0 : fault.entropy % frame.size();
    const int64_t partial = static_cast<int64_t>(cut) + 16;
    const double crash_ms =
        spike * link.TransferTimeMs(partial) + detection_window_ms;
    elapsed += crash_ms;
    phase("recv", crash_ms, 0, partial, "crashed mid-response");
    metrics_.Add("net.bytes_received", partial);
    a.bytes_received = partial;
    a.status = Status::NetworkError("host '", to,
                                    "' crashed mid-response after ", cut,
                                    " of ", frame.size(), " frame bytes");
    a.elapsed_ms = elapsed;
    metrics_.Add("net.sim_us", static_cast<int64_t>(elapsed * 1e3));
    metrics_.Set("net.last_elapsed_ms", elapsed);
    return a;
  }

  if (fault.kind == FaultKind::kCorrupt) {
    CorruptFrame(&frame, fault.entropy);
  }

  a.bytes_received = static_cast<int64_t>(frame.size()) + 16;
  const double recv_ms = spike * link.TransferTimeMs(a.bytes_received);
  elapsed += recv_ms;
  phase("recv", recv_ms, 0, a.bytes_received,
        fault.kind == FaultKind::kCorrupt ? "corrupt frame" : "");
  metrics_.Add("net.bytes_received", a.bytes_received);
  metrics_.Add("net.bytes." + to, a.bytes_received);
  metrics_.Add("net.sim_us", static_cast<int64_t>(elapsed * 1e3));
  metrics_.Set("net.last_elapsed_ms", elapsed);
  a.elapsed_ms = elapsed;

  Result<std::vector<uint8_t>> opened = wire::OpenFrame(frame);
  if (!opened.ok()) {
    a.status = opened.status();
    return a;
  }
  a.payload = std::move(*opened);
  a.status = Status::OK();
  return a;
}

Result<RpcResult> SimNetwork::Call(const std::string& from,
                                   const std::string& to, uint8_t opcode,
                                   const std::vector<uint8_t>& request) {
  RpcAttempt attempt = CallAttempt(from, to, opcode, request);
  if (!attempt.ok()) return attempt.status;
  RpcResult result;
  result.payload = std::move(attempt.payload);
  result.elapsed_ms = attempt.elapsed_ms;
  result.bytes_sent = attempt.bytes_sent;
  result.bytes_received = attempt.bytes_received;
  return result;
}

std::vector<std::string> SimNetwork::HostNames() const {
  std::vector<std::string> names;
  names.reserve(hosts_.size());
  for (const auto& [name, entry] : hosts_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace gisql
