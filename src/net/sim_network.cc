#include "net/sim_network.h"

#include <algorithm>

namespace gisql {

void SimNetwork::SetLink(const std::string& a, const std::string& b,
                         LinkSpec spec) {
  links_[LinkKey(a, b)] = spec;
}

const LinkSpec& SimNetwork::GetLink(const std::string& a,
                                    const std::string& b) const {
  auto it = links_.find(LinkKey(a, b));
  return it == links_.end() ? default_link_ : it->second;
}

Status SimNetwork::RegisterHost(const std::string& name,
                                RpcHandler* handler) {
  if (handler == nullptr) {
    return Status::InvalidArgument("null handler for host '", name, "'");
  }
  auto [it, inserted] = hosts_.emplace(name, HostEntry{handler, false});
  if (!inserted) {
    return Status::AlreadyExists("host '", name, "' already registered");
  }
  return Status::OK();
}

Status SimNetwork::UnregisterHost(const std::string& name) {
  if (hosts_.erase(name) == 0) {
    return Status::NotFound("host '", name, "' not registered");
  }
  return Status::OK();
}

void SimNetwork::SetHostDown(const std::string& name, bool down) {
  auto it = hosts_.find(name);
  if (it != hosts_.end()) it->second.down = down;
}

Result<RpcResult> SimNetwork::Call(const std::string& from,
                                   const std::string& to, uint8_t opcode,
                                   const std::vector<uint8_t>& request) {
  auto it = hosts_.find(to);
  if (it == hosts_.end()) {
    return Status::NetworkError("host '", to, "' is not registered");
  }
  if (it->second.down) {
    return Status::NetworkError("host '", to, "' is unreachable");
  }
  const LinkSpec& link = GetLink(from, to);

  RpcResult result;
  result.bytes_sent = static_cast<int64_t>(request.size()) + 16;  // header
  double elapsed = link.TransferTimeMs(result.bytes_sent);

  double processing_ms = 0.0;
  Result<std::vector<uint8_t>> response =
      it->second.handler->Handle(opcode, request, &processing_ms);
  elapsed += processing_ms;

  metrics_.Add("net.messages", 1);
  metrics_.Add("net.bytes_sent", result.bytes_sent);

  if (!response.ok()) {
    // Error frames still cross the wire.
    const int64_t err_bytes =
        static_cast<int64_t>(response.status().message().size()) + 24;
    elapsed += link.TransferTimeMs(err_bytes);
    metrics_.Add("net.bytes_received", err_bytes);
    metrics_.Set("net.last_elapsed_ms", elapsed);
    return response.status();
  }

  result.payload = std::move(*response);
  result.bytes_received = static_cast<int64_t>(result.payload.size()) + 16;
  elapsed += link.TransferTimeMs(result.bytes_received);
  result.elapsed_ms = elapsed;

  metrics_.Add("net.bytes_received", result.bytes_received);
  metrics_.Add("net.bytes." + to, result.bytes_received);
  metrics_.Set("net.last_elapsed_ms", elapsed);
  return result;
}

std::vector<std::string> SimNetwork::HostNames() const {
  std::vector<std::string> names;
  names.reserve(hosts_.size());
  for (const auto& [name, entry] : hosts_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace gisql
