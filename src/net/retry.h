/// \file retry.h
/// \brief Retrying RPC engine: interprets a RetryPolicy over
/// SimNetwork::CallAttempt.
///
/// The mediator talks to autonomous sources over a faulty WAN, so every
/// remote interaction (fragment shipping, schema import, 2PC rounds)
/// funnels through CallWithRetry rather than raw SimNetwork::Call. One
/// code path means one accounting model: E11 failover costs and E15
/// chaos costs come from the same arithmetic.
///
/// Retry semantics: only *transport* failures are retried —
/// NetworkError (drop, outage, crash, dead host) and
/// SerializationError (corrupted frame detected by checksum).
/// Application-level errors (bad SQL, missing table, constraint
/// violations) are returned immediately: the source answered, retrying
/// cannot change its answer. Exhaustion preserves the final attempt's
/// status code and names the unreachable source so callers can decide
/// between failover (replicated views) and surfacing a typed error.
///
/// All backoff delays are charged to the *simulated* clock via the
/// returned elapsed_ms; nothing here sleeps.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/retry_policy.h"
#include "net/sim_network.h"

namespace gisql {

/// \brief Aggregate outcome of a retried call.
struct RetryResult {
  Status status;                 ///< OK or the final attempt's failure
  std::vector<uint8_t> payload;  ///< valid iff status.ok()
  double elapsed_ms = 0.0;       ///< all attempts + backoff, simulated
  int attempts = 0;              ///< attempts actually made (>= 1)
  int64_t bytes_sent = 0;        ///< summed over attempts
  int64_t bytes_received = 0;    ///< summed over attempts

  bool ok() const { return status.ok(); }
};

/// \brief True for failures worth retrying: the transport (not the
/// source's answer) failed, so a later attempt may succeed.
inline bool IsRetryableTransport(const Status& s) {
  return s.IsNetworkError() || s.IsSerializationError();
}

/// \brief Calls `to` up to policy.max_attempts times, backing off
/// between attempts with deterministic jitter. `stream_nonce`
/// decorrelates jitter across concurrent call sites targeting the same
/// host (pass e.g. a fragment ordinal); 0 is fine for sequential
/// callers. When `sink` carries a TraceCollector, every attempt and
/// every backoff wait is recorded as a span under sink.parent,
/// advancing from sink.start_ms on the simulated clock.
RetryResult CallWithRetry(SimNetwork& net, const RetryPolicy& policy,
                          const std::string& from, const std::string& to,
                          uint8_t opcode, const std::vector<uint8_t>& request,
                          uint64_t stream_nonce = 0,
                          const TraceSink& sink = TraceSink());

}  // namespace gisql
