#include "types/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/hash.h"
#include "types/datetime.h"

namespace gisql {

double Value::NumericValue() const {
  switch (type_) {
    case TypeId::kBool: return AsBool() ? 1.0 : 0.0;
    case TypeId::kInt64:
    case TypeId::kDate: return static_cast<double>(std::get<int64_t>(v_));
    case TypeId::kDouble: return AsDouble();
    default: return 0.0;
  }
}

Result<Value> Value::CastTo(TypeId to) const {
  if (is_null()) return Value::Null(to);
  if (type_ == to) return *this;
  switch (to) {
    case TypeId::kInt64:
      switch (type_) {
        case TypeId::kDouble:
          return Value::Int(static_cast<int64_t>(AsDouble()));
        case TypeId::kDate: return Value::Int(std::get<int64_t>(v_));
        case TypeId::kBool: return Value::Int(AsBool() ? 1 : 0);
        case TypeId::kString: {
          errno = 0;
          char* end = nullptr;
          const long long parsed = std::strtoll(AsString().c_str(), &end, 10);
          if (end == AsString().c_str() || *end != '\0' || errno == ERANGE) {
            return Status::InvalidArgument("cannot cast '", AsString(),
                                           "' to BIGINT");
          }
          return Value::Int(parsed);
        }
        default: break;
      }
      break;
    case TypeId::kDouble:
      switch (type_) {
        case TypeId::kInt64:
        case TypeId::kDate:
          return Value::Double(static_cast<double>(std::get<int64_t>(v_)));
        case TypeId::kBool: return Value::Double(AsBool() ? 1.0 : 0.0);
        case TypeId::kString: {
          errno = 0;
          char* end = nullptr;
          const double parsed = std::strtod(AsString().c_str(), &end);
          if (end == AsString().c_str() || *end != '\0' || errno == ERANGE) {
            return Status::InvalidArgument("cannot cast '", AsString(),
                                           "' to DOUBLE");
          }
          return Value::Double(parsed);
        }
        default: break;
      }
      break;
    case TypeId::kString: {
      if (type_ == TypeId::kString) return *this;
      // Render numerics/bools without the quoting ToString() adds.
      switch (type_) {
        case TypeId::kBool: return Value::String(AsBool() ? "true" : "false");
        case TypeId::kInt64:
          return Value::String(std::to_string(std::get<int64_t>(v_)));
        case TypeId::kDate:
          return Value::String(FormatDate(std::get<int64_t>(v_)));
        case TypeId::kDouble: {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%g", AsDouble());
          return Value::String(buf);
        }
        default: break;
      }
      break;
    }
    case TypeId::kDate:
      if (type_ == TypeId::kInt64) return Value::Date(AsInt());
      if (type_ == TypeId::kString) {
        GISQL_ASSIGN_OR_RETURN(int64_t days, ParseDateString(AsString()));
        return Value::Date(days);
      }
      break;
    case TypeId::kBool:
      if (type_ == TypeId::kInt64) return Value::Bool(AsInt() != 0);
      break;
    case TypeId::kNull: break;
  }
  return Status::InvalidArgument("cannot cast ", TypeName(type_), " to ",
                                 TypeName(to));
}

int Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  // Cross-type numeric comparison via double widening.
  const bool numeric =
      (IsNumeric(type_) || type_ == TypeId::kBool) &&
      (IsNumeric(other.type_) || other.type_ == TypeId::kBool);
  if (type_ != other.type_ && !numeric) {
    // Incomparable heterogenous types: order by type id for stability.
    return type_ < other.type_ ? -1 : 1;
  }
  if (type_ == TypeId::kString && other.type_ == TypeId::kString) {
    const int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (type_ == TypeId::kBool && other.type_ == TypeId::kBool) {
    return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
  }
  if ((type_ == TypeId::kInt64 || type_ == TypeId::kDate) &&
      (other.type_ == TypeId::kInt64 || other.type_ == TypeId::kDate)) {
    const int64_t a = std::get<int64_t>(v_);
    const int64_t b = std::get<int64_t>(other.v_);
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  const double a = NumericValue();
  const double b = other.NumericValue();
  return a < b ? -1 : (a > b ? 1 : 0);
}

uint64_t Value::Hash() const {
  if (is_null()) return 0x9b14deadULL;
  switch (type_) {
    case TypeId::kBool: return HashInt(AsBool() ? 1 : 2);
    case TypeId::kInt64:
    case TypeId::kDate: {
      const int64_t i = std::get<int64_t>(v_);
      return HashInt(static_cast<uint64_t>(i));
    }
    case TypeId::kDouble: {
      const double d = AsDouble();
      // Hash integral doubles like the equal int64 so joins across
      // INT64/DOUBLE keys hash consistently with Compare().
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return HashInt(static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return HashInt(bits);
    }
    case TypeId::kString: return HashString(AsString());
    case TypeId::kNull: break;
  }
  return 0;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  switch (type_) {
    case TypeId::kBool: return AsBool() ? "true" : "false";
    case TypeId::kInt64: return std::to_string(std::get<int64_t>(v_));
    case TypeId::kDate:
      return "DATE '" + FormatDate(std::get<int64_t>(v_)) + "'";
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case TypeId::kString: return "'" + AsString() + "'";
    case TypeId::kNull: break;
  }
  return "?";
}

int64_t Value::WireSize() const {
  if (is_null()) return 2;
  switch (type_) {
    case TypeId::kBool: return 2;
    case TypeId::kInt64:
    case TypeId::kDate: return 6;
    case TypeId::kDouble: return 9;
    case TypeId::kString: return 2 + static_cast<int64_t>(AsString().size());
    case TypeId::kNull: break;
  }
  return 2;
}

}  // namespace gisql
