/// \file row.h
/// \brief Rows and row batches — the unit of data flow between operators
/// and across the wire.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "types/schema.h"
#include "types/value.h"

namespace gisql {

/// \brief A tuple of scalar values positionally matching some Schema.
using Row = std::vector<Value>;

/// \brief Hash of a row restricted to the given key columns.
uint64_t HashRowKeys(const Row& row, const std::vector<size_t>& keys);

/// \brief Three-way lexicographic comparison on the given key columns.
int CompareRowKeys(const Row& a, const Row& b, const std::vector<size_t>& keys);

/// \brief A batch of rows sharing one schema. Operators produce and
/// consume batches (Volcano-with-batches execution model).
class RowBatch {
 public:
  RowBatch() : schema_(std::make_shared<Schema>()) {}
  explicit RowBatch(SchemaPtr schema) : schema_(std::move(schema)) {}
  RowBatch(SchemaPtr schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const SchemaPtr& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& rows() { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  void Append(Row row) { rows_.push_back(std::move(row)); }
  void Reserve(size_t n) { rows_.reserve(n); }
  void Clear() { rows_.clear(); }

  /// \brief Actual serialized payload size of all rows in bytes.
  int64_t WireSize() const;

  /// \brief ASCII table rendering (for examples and debugging).
  std::string ToString(size_t max_rows = 20) const;

 private:
  SchemaPtr schema_;
  std::vector<Row> rows_;
};

}  // namespace gisql
