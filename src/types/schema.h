/// \file schema.h
/// \brief Fields, schemas, and qualified-name resolution.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"

namespace gisql {

/// \brief One column: a name, a type, nullability, and an optional
/// qualifier (the table or alias the column came from).
struct Field {
  std::string name;
  TypeId type = TypeId::kNull;
  bool nullable = true;
  std::string qualifier;  ///< table name or alias; empty for computed columns

  Field() = default;
  Field(std::string n, TypeId t, bool nul = true, std::string qual = "")
      : name(std::move(n)),
        type(t),
        nullable(nul),
        qualifier(std::move(qual)) {}

  /// \brief "qualifier.name" or bare name.
  std::string QualifiedName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }

  bool operator==(const Field& o) const {
    return name == o.name && type == o.type && nullable == o.nullable;
  }
};

/// \brief An ordered list of fields with name-based lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// \brief Resolves a possibly qualified column reference.
  ///
  /// Bare names must be unambiguous across qualifiers; qualified names
  /// ("o.price") must match both parts. Ambiguity and absence are
  /// reported as BindError.
  Result<size_t> ResolveColumn(const std::string& qualifier,
                               const std::string& name) const;

  /// \brief Index of the first field with this exact (unqualified) name,
  /// or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// \brief Schema of `this` followed by `right` (join output).
  Schema Concat(const Schema& right) const;

  /// \brief Re-qualifies every field with the given alias.
  Schema WithQualifier(const std::string& alias) const;

  /// \brief Projection keeping the given field indexes, in order.
  Schema Select(const std::vector<size_t>& indexes) const;

  /// \brief Structural equality on (name, type, nullable) tuples.
  bool Equals(const Schema& other) const { return fields_ == other.fields_; }

  /// \brief Same arity and pairwise implicitly-castable field types —
  /// the precondition for UNION-compatible global views.
  bool UnionCompatible(const Schema& other) const;

  /// \brief "(a BIGINT, b VARCHAR)" style rendering.
  std::string ToString() const;

  /// \brief Estimated serialized row width in bytes (cost model input).
  int64_t EstimatedRowWidth() const;

 private:
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<Schema>;

}  // namespace gisql
