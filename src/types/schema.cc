#include "types/schema.h"

#include "common/string_util.h"

namespace gisql {

Result<size_t> Schema::ResolveColumn(const std::string& qualifier,
                                     const std::string& name) const {
  std::optional<size_t> found;
  for (size_t i = 0; i < fields_.size(); ++i) {
    const Field& f = fields_[i];
    if (!EqualsIgnoreCase(f.name, name)) continue;
    if (!qualifier.empty() && !EqualsIgnoreCase(f.qualifier, qualifier)) {
      continue;
    }
    if (found.has_value()) {
      return Status::BindError("ambiguous column reference '",
                               qualifier.empty() ? name
                                                 : qualifier + "." + name,
                               "'");
    }
    found = i;
  }
  if (!found.has_value()) {
    return Status::BindError("column '",
                             qualifier.empty() ? name : qualifier + "." + name,
                             "' not found in schema ", ToString());
  }
  return *found;
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return i;
  }
  return std::nullopt;
}

Schema Schema::Concat(const Schema& right) const {
  std::vector<Field> all = fields_;
  all.insert(all.end(), right.fields_.begin(), right.fields_.end());
  return Schema(std::move(all));
}

Schema Schema::WithQualifier(const std::string& alias) const {
  std::vector<Field> all = fields_;
  for (auto& f : all) f.qualifier = alias;
  return Schema(std::move(all));
}

Schema Schema::Select(const std::vector<size_t>& indexes) const {
  std::vector<Field> out;
  out.reserve(indexes.size());
  for (size_t i : indexes) out.push_back(fields_[i]);
  return Schema(std::move(out));
}

bool Schema::UnionCompatible(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (!IsImplicitlyCastable(other.fields_[i].type, fields_[i].type) &&
        !IsImplicitlyCastable(fields_[i].type, other.fields_[i].type)) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].QualifiedName();
    out += " ";
    out += TypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

int64_t Schema::EstimatedRowWidth() const {
  int64_t w = 2;  // row header
  for (const auto& f : fields_) w += EstimatedWireSize(f.type);
  return w;
}

}  // namespace gisql
