/// \file value.h
/// \brief Dynamically typed scalar value of the global data model.

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "types/data_type.h"

namespace gisql {

/// \brief A nullable scalar. NULL is represented by is_null() regardless
/// of the declared type, mirroring SQL semantics.
class Value {
 public:
  /// Constructs a NULL of type kNull.
  Value() : type_(TypeId::kNull) {}

  static Value Null(TypeId type = TypeId::kNull) {
    Value v;
    v.type_ = type;
    return v;
  }
  static Value Bool(bool b) { return Value(TypeId::kBool, Payload(b)); }
  static Value Int(int64_t i) { return Value(TypeId::kInt64, Payload(i)); }
  static Value Double(double d) { return Value(TypeId::kDouble, Payload(d)); }
  static Value String(std::string s) {
    return Value(TypeId::kString, Payload(std::move(s)));
  }
  static Value Date(int64_t days) { return Value(TypeId::kDate, Payload(days)); }

  TypeId type() const { return type_; }
  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }

  /// \name Unchecked accessors (caller must know the type; NULL-checked
  /// access goes through is_null()).
  /// @{
  bool AsBool() const { return std::get<bool>(v_); }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  /// @}

  /// \brief Numeric view: INT64/DATE widened to double; BOOL as 0/1.
  double NumericValue() const;

  /// \brief Casts to `to`; implicit-castable conversions plus
  /// string<->numeric explicit casts. NULL casts to NULL of the target.
  Result<Value> CastTo(TypeId to) const;

  /// \brief Three-way comparison. NULLs sort first and compare equal to
  /// each other (this is the ORDER BY / join-key ordering, not SQL
  /// ternary logic — predicate NULL semantics live in the evaluator).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// \brief Stable hash consistent with Compare()==0 across numeric
  /// representations of the same number.
  uint64_t Hash() const;

  /// \brief SQL-literal-ish rendering ("NULL", "'abc'", "42", "1.5").
  std::string ToString() const;

  /// \brief Bytes this value occupies on the wire (actual, not estimate).
  int64_t WireSize() const;

 private:
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string>;
  Value(TypeId t, Payload p) : type_(t), v_(std::move(p)) {}

  TypeId type_;
  Payload v_;
};

}  // namespace gisql
