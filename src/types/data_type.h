/// \file data_type.h
/// \brief Scalar type identifiers and type-compatibility rules of the
/// global data model.
///
/// The global information system defines one canonical data model; each
/// heterogeneous component source maps its export schema into these types
/// (legacy sources support only a subset, see source/capabilities.h).

#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace gisql {

/// \brief Canonical scalar types of the global data model.
enum class TypeId : uint8_t {
  kNull = 0,    ///< the type of the NULL literal before coercion
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
  kDate = 5,    ///< days since 1970-01-01, stored as int64
};

/// \brief Human-readable SQL-ish name ("BIGINT", "VARCHAR", ...).
const char* TypeName(TypeId t);

/// \brief True if a value of `from` may be implicitly coerced to `to`
/// (NULL → anything, INT64 → DOUBLE, INT64 ↔ DATE).
bool IsImplicitlyCastable(TypeId from, TypeId to);

/// \brief True for INT64 / DOUBLE / DATE.
bool IsNumeric(TypeId t);

/// \brief The common supertype used for comparisons/arithmetic between
/// the two types, or InvalidArgument when none exists.
Result<TypeId> CommonType(TypeId a, TypeId b);

/// \brief Parses a type name as accepted by CREATE TABLE
/// (int/bigint/integer, double/float/real, varchar/string/text,
/// bool/boolean, date). Case-insensitive.
Result<TypeId> ParseTypeName(const std::string& name);

/// \brief Bytes a value of this type occupies on the wire, used by the
/// cost model (strings use an estimated average width).
int64_t EstimatedWireSize(TypeId t);

}  // namespace gisql
