/// \file datetime.h
/// \brief Civil-date arithmetic for the DATE type (days since
/// 1970-01-01), using Howard Hinnant's proleptic-Gregorian algorithms.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace gisql {

/// \brief Days since the epoch for a civil date (proleptic Gregorian).
int64_t DaysFromCivil(int year, unsigned month, unsigned day);

/// \brief Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, unsigned* month, unsigned* day);

/// \brief True for a valid Gregorian (year, month, day).
bool IsValidCivilDate(int year, unsigned month, unsigned day);

/// \brief Parses "YYYY-MM-DD" into days since the epoch.
Result<int64_t> ParseDateString(std::string_view text);

/// \brief Renders days since the epoch as "YYYY-MM-DD".
std::string FormatDate(int64_t days);

}  // namespace gisql
