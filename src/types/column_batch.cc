#include "types/column_batch.h"

#include "common/status.h"

namespace gisql {

namespace {

/// Appends one value to `col`, coercing implicitly castable types to
/// the declared column type. Returns a non-OK status for values that
/// would need an explicit cast.
Status AppendCell(ColumnBatch::Column* col, const Value& v, size_t row,
                  size_t total_rows) {
  if (v.is_null()) {
    col->SetNull(row, total_rows);
    switch (col->type) {
      case TypeId::kBool: col->bools.push_back(0); break;
      case TypeId::kInt64:
      case TypeId::kDate: col->ints.push_back(0); break;
      case TypeId::kDouble: col->doubles.push_back(0.0); break;
      case TypeId::kString: col->offsets.push_back(
          static_cast<uint32_t>(col->arena.size())); break;
      case TypeId::kNull: break;
    }
    return Status::OK();
  }
  switch (col->type) {
    case TypeId::kBool:
      if (v.type() != TypeId::kBool) break;
      col->bools.push_back(v.AsBool() ? 1 : 0);
      return Status::OK();
    case TypeId::kInt64:
    case TypeId::kDate:
      if (v.type() != TypeId::kInt64 && v.type() != TypeId::kDate) break;
      col->ints.push_back(v.AsInt());
      return Status::OK();
    case TypeId::kDouble:
      if (v.type() == TypeId::kDouble) {
        col->doubles.push_back(v.AsDouble());
        return Status::OK();
      }
      if (v.type() == TypeId::kInt64 || v.type() == TypeId::kDate) {
        col->doubles.push_back(static_cast<double>(v.AsInt()));
        return Status::OK();
      }
      break;
    case TypeId::kString:
      if (v.type() != TypeId::kString) break;
      if (col->arena.size() + v.AsString().size() > UINT32_MAX) {
        return Status::InvalidArgument(
            "string column exceeds the 4 GiB arena limit");
      }
      col->arena.append(v.AsString());
      col->offsets.push_back(static_cast<uint32_t>(col->arena.size()));
      return Status::OK();
    case TypeId::kNull:
      break;  // only NULLs fit a kNull column
  }
  return Status::InvalidArgument("cannot store ", TypeName(v.type()),
                                 " value in ", TypeName(col->type),
                                 " column");
}

template <typename RowAt>
Result<ColumnBatch> ConvertImpl(const SchemaPtr& schema, size_t n,
                                const std::vector<size_t>* columns,
                                RowAt row_at) {
  ColumnBatch out(schema);
  out.set_num_rows(n);
  std::vector<bool> wanted(schema->num_fields(), columns == nullptr);
  if (columns != nullptr) {
    for (size_t c : *columns) {
      if (c < wanted.size()) wanted[c] = true;
    }
  }
  for (size_t c = 0; c < schema->num_fields(); ++c) {
    if (!wanted[c]) continue;
    ColumnBatch::Column& col = out.column(c);
    switch (col.type) {
      case TypeId::kBool: col.bools.reserve(n); break;
      case TypeId::kInt64:
      case TypeId::kDate: col.ints.reserve(n); break;
      case TypeId::kDouble: col.doubles.reserve(n); break;
      case TypeId::kString: col.offsets.reserve(n + 1); break;
      case TypeId::kNull: break;
    }
    if (col.type == TypeId::kString) col.offsets.push_back(0);
    for (size_t r = 0; r < n; ++r) {
      const Row& row = row_at(r);
      if (c >= row.size()) {
        return Status::InvalidArgument("row ", r, " has ", row.size(),
                                       " values; schema expects ",
                                       schema->num_fields());
      }
      GISQL_RETURN_NOT_OK(AppendCell(&col, row[c], r, n));
    }
  }
  return out;
}

}  // namespace

Value ColumnBatch::Column::ValueAt(size_t row) const {
  if (IsNull(row)) return Value::Null(type);
  switch (type) {
    case TypeId::kBool: return Value::Bool(bools[row] != 0);
    case TypeId::kInt64: return Value::Int(ints[row]);
    case TypeId::kDate: return Value::Date(ints[row]);
    case TypeId::kDouble: return Value::Double(doubles[row]);
    case TypeId::kString: return Value::String(std::string(StringAt(row)));
    case TypeId::kNull: break;
  }
  return Value::Null(type);
}

ColumnBatch::ColumnBatch(SchemaPtr schema) : schema_(std::move(schema)) {
  columns_.resize(schema_->num_fields());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].type = schema_->field(i).type;
  }
}

Result<ColumnBatch> ColumnBatch::FromRows(const RowBatch& batch) {
  const std::vector<Row>& rows = batch.rows();
  return ConvertImpl(batch.schema(), rows.size(), nullptr,
                     [&](size_t r) -> const Row& { return rows[r]; });
}

Result<ColumnBatch> ColumnBatch::FromRowPtrs(
    const SchemaPtr& schema, const std::vector<const Row*>& rows,
    const std::vector<size_t>* columns) {
  return ConvertImpl(schema, rows.size(), columns,
                     [&](size_t r) -> const Row& { return *rows[r]; });
}

RowBatch ColumnBatch::ToRows() const {
  RowBatch out(schema_);
  out.Reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    Row row;
    row.reserve(columns_.size());
    for (const Column& col : columns_) row.push_back(col.ValueAt(r));
    out.Append(std::move(row));
  }
  return out;
}

}  // namespace gisql
