#include "types/data_type.h"

#include "common/string_util.h"

namespace gisql {

const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kNull: return "NULL";
    case TypeId::kBool: return "BOOLEAN";
    case TypeId::kInt64: return "BIGINT";
    case TypeId::kDouble: return "DOUBLE";
    case TypeId::kString: return "VARCHAR";
    case TypeId::kDate: return "DATE";
  }
  return "?";
}

bool IsNumeric(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDouble || t == TypeId::kDate;
}

bool IsImplicitlyCastable(TypeId from, TypeId to) {
  if (from == to) return true;
  if (from == TypeId::kNull) return true;
  if (from == TypeId::kInt64 && to == TypeId::kDouble) return true;
  if (from == TypeId::kInt64 && to == TypeId::kDate) return true;
  if (from == TypeId::kDate && to == TypeId::kInt64) return true;
  return false;
}

Result<TypeId> CommonType(TypeId a, TypeId b) {
  if (a == b) return a;
  if (a == TypeId::kNull) return b;
  if (b == TypeId::kNull) return a;
  auto pair_is = [&](TypeId x, TypeId y) {
    return (a == x && b == y) || (a == y && b == x);
  };
  if (pair_is(TypeId::kInt64, TypeId::kDouble)) return TypeId::kDouble;
  if (pair_is(TypeId::kInt64, TypeId::kDate)) return TypeId::kInt64;
  return Status::InvalidArgument("no common type for ", TypeName(a), " and ",
                                 TypeName(b));
}

Result<TypeId> ParseTypeName(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "int" || n == "bigint" || n == "integer" || n == "int64") {
    return TypeId::kInt64;
  }
  if (n == "double" || n == "float" || n == "real") return TypeId::kDouble;
  if (n == "varchar" || n == "string" || n == "text" || n == "char") {
    return TypeId::kString;
  }
  if (n == "bool" || n == "boolean") return TypeId::kBool;
  if (n == "date") return TypeId::kDate;
  return Status::InvalidArgument("unknown type name '", name, "'");
}

int64_t EstimatedWireSize(TypeId t) {
  switch (t) {
    case TypeId::kNull: return 1;
    case TypeId::kBool: return 2;
    case TypeId::kInt64: return 6;
    case TypeId::kDouble: return 9;
    case TypeId::kString: return 18;  // tag + len + ~16 chars average
    case TypeId::kDate: return 4;
  }
  return 8;
}

}  // namespace gisql
