#include "types/row.h"

#include <algorithm>
#include <sstream>

#include "common/hash.h"

namespace gisql {

uint64_t HashRowKeys(const Row& row, const std::vector<size_t>& keys) {
  uint64_t h = kFnvOffset;
  for (size_t k : keys) h = HashCombine(h, row[k].Hash());
  return h;
}

int CompareRowKeys(const Row& a, const Row& b,
                   const std::vector<size_t>& keys) {
  for (size_t k : keys) {
    const int c = a[k].Compare(b[k]);
    if (c != 0) return c;
  }
  return 0;
}

int64_t RowBatch::WireSize() const {
  int64_t total = 0;
  for (const auto& row : rows_) {
    total += 2;  // row header
    for (const auto& v : row) total += v.WireSize();
  }
  return total;
}

std::string RowBatch::ToString(size_t max_rows) const {
  // Compute column widths over header + displayed rows.
  const size_t ncols = schema_->num_fields();
  std::vector<std::string> headers(ncols);
  std::vector<size_t> widths(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    headers[c] = schema_->field(c).QualifiedName();
    widths[c] = headers[c].size();
  }
  const size_t shown = std::min(max_rows, rows_.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      cells[r][c] = c < rows_[r].size() ? rows_[r][c].ToString() : "?";
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::ostringstream oss;
  auto rule = [&] {
    oss << "+";
    for (size_t c = 0; c < ncols; ++c) {
      oss << std::string(widths[c] + 2, '-') << "+";
    }
    oss << "\n";
  };
  auto line = [&](const std::vector<std::string>& vals) {
    oss << "|";
    for (size_t c = 0; c < ncols; ++c) {
      oss << " " << vals[c] << std::string(widths[c] - vals[c].size(), ' ')
          << " |";
    }
    oss << "\n";
  };
  rule();
  line(headers);
  rule();
  for (size_t r = 0; r < shown; ++r) line(cells[r]);
  rule();
  if (rows_.size() > shown) {
    oss << "... " << (rows_.size() - shown) << " more rows\n";
  }
  oss << rows_.size() << " row(s)\n";
  return oss.str();
}

}  // namespace gisql
