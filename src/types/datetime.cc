#include "types/datetime.h"

#include <cstdio>

namespace gisql {

int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);          // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;         // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, unsigned* month, unsigned* day) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;     // [0, 399]
  const int y = static_cast<int>(yoe) + static_cast<int>(era) * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  *day = doy - (153 * mp + 2) / 5 + 1;
  *month = mp + (mp < 10 ? 3 : -9);
  *year = y + (*month <= 2);
}

bool IsValidCivilDate(int year, unsigned month, unsigned day) {
  if (month < 1 || month > 12 || day < 1) return false;
  static const unsigned kDays[] = {31, 28, 31, 30, 31, 30,
                                   31, 31, 30, 31, 30, 31};
  unsigned max_day = kDays[month - 1];
  const bool leap =
      (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
  if (month == 2 && leap) max_day = 29;
  return day <= max_day;
}

Result<int64_t> ParseDateString(std::string_view text) {
  // Strict full-width "YYYY-MM-DD": exactly 10 characters, digits in
  // the date positions, '-' separators, nothing else. (The previous
  // sscanf-based parse stopped at the first non-matching character, so
  // "2020-01-1a" parsed as January 1st and "20-1-1234" as year 20 —
  // trailing garbage silently changed the value instead of failing.)
  auto invalid = [&]() -> Status {
    return Status::InvalidArgument("invalid date literal '",
                                   std::string(text),
                                   "' (want YYYY-MM-DD)");
  };
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') {
    return invalid();
  }
  auto digit = [&](size_t i) { return text[i] >= '0' && text[i] <= '9'; };
  for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u}) {
    if (!digit(i)) return invalid();
  }
  auto field = [&](size_t begin, size_t len) {
    unsigned v = 0;
    for (size_t i = begin; i < begin + len; ++i) {
      v = v * 10 + static_cast<unsigned>(text[i] - '0');
    }
    return v;
  };
  const int year = static_cast<int>(field(0, 4));
  const unsigned month = field(5, 2);
  const unsigned day = field(8, 2);
  if (!IsValidCivilDate(year, month, day)) return invalid();
  return DaysFromCivil(year, month, day);
}

std::string FormatDate(int64_t days) {
  int year;
  unsigned month, day;
  CivilFromDays(days, &year, &month, &day);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", year, month, day);
  return buf;
}

}  // namespace gisql
