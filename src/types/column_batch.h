/// \file column_batch.h
/// \brief Column-major batches: per-type contiguous arrays, a null
/// bitmap per column, and a shared string arena with offsets.
///
/// A ColumnBatch is the cache- and wire-friendly dual of RowBatch. The
/// executor's vectorized kernels (exec/vectorized.h) run over its
/// contiguous arrays, and the columnar wire encoding
/// (wire::WriteColumnBatch) serializes them with bulk copies instead of
/// one tag byte + varint per value. Conversions to and from RowBatch
/// are lossy only in one deliberate way: non-null values are coerced to
/// the column's declared type (implicit casts only — INT64→DOUBLE,
/// INT64↔DATE), exactly the coercion UNION-view merging already applies
/// at the mediator. Values that would need a non-implicit cast make
/// FromRows fail, and callers fall back to the row representation.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "types/row.h"
#include "types/schema.h"
#include "types/value.h"

namespace gisql {

/// \brief A batch of rows stored column-major.
class ColumnBatch {
 public:
  /// \brief One column: dense per-type storage plus a null bitmap.
  ///
  /// All slots are materialized (null slots hold zero / the empty
  /// string) so every array indexes directly by row number. Exactly one
  /// of the data vectors is populated, selected by `type`:
  /// kBool → bools, kInt64/kDate → ints, kDouble → doubles,
  /// kString → offsets+arena, kNull → nothing (every row is NULL).
  struct Column {
    TypeId type = TypeId::kNull;
    /// Null bitmap, bit r set = row r is NULL. Empty means no nulls.
    std::vector<uint8_t> nulls;
    std::vector<uint8_t> bools;
    std::vector<int64_t> ints;
    std::vector<double> doubles;
    /// String columns: num_rows()+1 offsets into `arena`.
    std::vector<uint32_t> offsets;
    std::string arena;

    bool has_nulls() const { return !nulls.empty(); }

    bool IsNull(size_t row) const {
      return type == TypeId::kNull ||
             (!nulls.empty() && ((nulls[row >> 3] >> (row & 7)) & 1) != 0);
    }

    /// \brief Marks `row` NULL, allocating the bitmap for `total_rows`
    /// rows on first use.
    void SetNull(size_t row, size_t total_rows) {
      if (nulls.empty()) nulls.assign((total_rows + 7) / 8, 0);
      nulls[row >> 3] |= static_cast<uint8_t>(1u << (row & 7));
    }

    std::string_view StringAt(size_t row) const {
      return std::string_view(arena.data() + offsets[row],
                              offsets[row + 1] - offsets[row]);
    }

    /// \brief Materializes one cell as a Value (typed NULL for null
    /// slots).
    Value ValueAt(size_t row) const;
  };

  ColumnBatch() : schema_(std::make_shared<Schema>()) {}
  explicit ColumnBatch(SchemaPtr schema);

  /// \brief Converts a row batch, coercing values to the declared
  /// column types (implicit casts only; anything else fails with
  /// InvalidArgument so the caller can keep the row representation).
  static Result<ColumnBatch> FromRows(const RowBatch& batch);

  /// \brief Same conversion over borrowed rows (used by component
  /// sources whose scan produces row pointers). `columns` optionally
  /// restricts conversion to the listed column indexes; the others stay
  /// empty (schema arity is preserved, their cells must not be read).
  static Result<ColumnBatch> FromRowPtrs(
      const SchemaPtr& schema, const std::vector<const Row*>& rows,
      const std::vector<size_t>* columns = nullptr);

  /// \brief Materializes back to rows; NULL cells become typed NULLs of
  /// the column type.
  RowBatch ToRows() const;

  const SchemaPtr& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }

  /// \brief Used by the wire decoder, which fills columns directly.
  void set_num_rows(size_t n) { num_rows_ = n; }

  /// \brief Rebinds an arity-identical schema (the mediator adopts the
  /// plan's qualified schema after a wire decode). Column value types
  /// are untouched: `Column::type` stays the truth about the data.
  void AdoptSchema(SchemaPtr schema) { schema_ = std::move(schema); }

 private:
  SchemaPtr schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace gisql
