/// \file advisor_host.cc
/// \brief GlobalSystem's implementation of the AdvisorHost action
/// surface, plus advisor configuration.
///
/// The advisor decides; this file acts. MaterializeReplica is the one
/// genuinely multi-step action: copy the base table's rows to the
/// target source as a single bulk transfer on the simulated WAN, import
/// the copy into the catalog, then atomically (from the planner's point
/// of view — the catalog is mediator-local) swap the global name from
/// "table" to a replicated view over {table__base, table__<target>}.
/// DemoteReplicatedView reverses every step.

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/bytes.h"
#include "core/global_system.h"
#include "net/retry.h"
#include "source/fragment.h"
#include "wire/protocol.h"
#include "wire/serde.h"

namespace gisql {

namespace {

/// Mediator→source control-plane call under the system retry policy.
/// (Local twin of the helper in global_system.cc — both are file-local
/// by design; the retry plumbing is not part of GlobalSystem's API.)
Result<std::vector<uint8_t>> RetriedCall(SimNetwork& net,
                                         const RetryPolicy& policy,
                                         const std::string& to,
                                         wire::Opcode op,
                                         const std::vector<uint8_t>& req) {
  RetryResult r = CallWithRetry(net, policy, GlobalSystem::kMediatorHost, to,
                                static_cast<uint8_t>(op), req);
  if (!r.ok()) return r.status;
  return std::move(r.payload);
}

bool EnvTruthy(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "1" || s == "true" || s == "TRUE" || s == "on" || s == "ON" ||
         s == "yes" || s == "YES";
}

}  // namespace

void GlobalSystem::ConfigureAdvisor() {
  AdvisorConfig c = AdvisorConfig::FromOptions(options_);
  // The kill switch must work even for programs that build their
  // PlannerOptions programmatically (never calling ApplyEnv), so it is
  // honored here too, not just in options parsing.
  if (EnvTruthy("GISQL_ADVISOR_KILL")) c.enabled = false;
  if (advisor_ == nullptr) {
    advisor_ = std::make_unique<Advisor>(c, this, &query_log_, &health_,
                                         &slo_, &governor_, &catalog_);
  } else {
    advisor_->Configure(c);
  }
}

Result<std::string> GlobalSystem::MaterializeReplica(
    const std::string& global_table, const std::string& target_source) {
  GISQL_ASSIGN_OR_RETURN(const TableMapping* mapping,
                         catalog_.GetTable(global_table));
  if (mapping->source_name == target_source) {
    return Status::InvalidArgument("table '", global_table,
                                   "' already lives on '", target_source,
                                   "'");
  }
  if (catalog_.TableInAnyView(global_table)) {
    return Status::InvalidArgument("table '", global_table,
                                   "' is already a view member");
  }
  const std::string owner_source = mapping->source_name;
  const std::string owner_exported = mapping->exported_name;
  const std::string replica_exported = owner_exported + "__r";
  const std::string replica_global = global_table + "__" + target_source;
  const std::string base_alias = global_table + "__base";
  if (catalog_.HasTable(replica_global) || catalog_.HasView(replica_global) ||
      catalog_.HasTable(base_alias) || catalog_.HasView(base_alias)) {
    return Status::AlreadyExists("replica names for '", global_table,
                                 "' are already in use");
  }

  // 1. Pull the base table's rows off the owner: a full-scan fragment
  // (retryable — reads are idempotent).
  FragmentPlan frag;
  frag.table = owner_exported;
  GISQL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> rows_payload,
      RetriedCall(network_, retry_policy_, owner_source,
                  wire::Opcode::kExecuteFragment,
                  wire::SerializeFragment(frag)));
  ByteReader rows_reader(rows_payload);
  GISQL_ASSIGN_OR_RETURN(RowBatch rows, wire::ReadBatch(&rows_reader));
  // A page-stats trailer may follow the batch; it is irrelevant here.

  // 2. Push them to the target as one bulk load. Single-attempt: the
  // load creates a table, which is not idempotent under retry.
  ByteWriter load;
  load.PutString(replica_exported);
  wire::WriteBatch(&load, rows);
  GISQL_ASSIGN_OR_RETURN(
      RpcResult rpc,
      network_.Call(kMediatorHost, target_source,
                    static_cast<uint8_t>(wire::Opcode::kBulkLoad),
                    load.data()));
  (void)rpc;

  // 3. Catalog surgery: import the replica, free the original global
  // name by aliasing the base, and promote the name to a replicated
  // view the planner routes by latency hint.
  GISQL_RETURN_NOT_OK(
      ImportTable(target_source, replica_exported, replica_global));
  GISQL_RETURN_NOT_OK(catalog_.RenameTable(global_table, base_alias));
  Status promoted = catalog_.CreateReplicatedView(
      global_table, {base_alias, replica_global});
  if (!promoted.ok()) {
    // Restore the original name; leaving the table reachable matters
    // more than the orphaned replica copy.
    (void)catalog_.RenameTable(base_alias, global_table);
    return promoted;
  }
  if (cache_) {
    cache_->InvalidateTables({global_table, base_alias, replica_global});
    cache_->InvalidateSource(target_source);
  }
  return replica_global;
}

Status GlobalSystem::DemoteReplicatedView(const std::string& view_name) {
  GISQL_ASSIGN_OR_RETURN(const GlobalView* view, catalog_.GetView(view_name));
  if (!view->replicated) {
    return Status::InvalidArgument("view '", view_name,
                                   "' is not a replicated view");
  }
  const std::string base_alias = view_name + "__base";
  // Copy before DropView invalidates the pointer.
  const std::vector<std::string> members = view->members;
  bool has_base = false;
  for (const auto& m : members) {
    if (m == base_alias) has_base = true;
  }
  if (!has_base) {
    return Status::InvalidArgument("view '", view_name,
                                   "' was not advisor-materialized (no '",
                                   base_alias, "' member)");
  }
  GISQL_RETURN_NOT_OK(catalog_.DropView(view_name));
  std::set<std::string> stale = {view_name, base_alias};
  for (const auto& member : members) {
    if (member == base_alias) continue;
    stale.insert(member);
    // Drop the replica at its source (best effort — the source may be
    // partitioned; the catalog drop below is what unroutes it) and in
    // the catalog.
    Result<const TableMapping*> replica = catalog_.GetTable(member);
    if (replica.ok()) {
      (void)ExecuteAt((*replica)->source_name,
                      "DROP TABLE " + (*replica)->exported_name);
    }
    (void)catalog_.DropTable(member);
  }
  GISQL_RETURN_NOT_OK(catalog_.RenameTable(base_alias, view_name));
  if (cache_) cache_->InvalidateTables(stale);
  return Status::OK();
}

}  // namespace gisql
