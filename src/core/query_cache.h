/// \file query_cache.h
/// \brief LRU result cache at the mediator, keyed by the decomposed
/// plan's canonical text.
///
/// Autonomy caveat (inherent to the 1989 architecture): component
/// systems may change their data without telling the mediator, so a
/// result cache can serve stale rows. The cache is therefore *off by
/// default*; when enabled, entries are invalidated whenever the
/// mediator itself touches a source (admin channel, statistics
/// refresh), and the owner may call Clear()/InvalidateSource() on
/// external signals.

#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "common/metrics.h"
#include "types/row.h"

namespace gisql {

class QueryCache {
 public:
  explicit QueryCache(size_t max_entries = 128)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  struct CachedResult {
    RowBatch batch;
    double original_elapsed_ms = 0.0;
  };

  /// \brief Returns the cached result for `key` and refreshes its LRU
  /// position, or nullopt.
  std::optional<CachedResult> Lookup(const std::string& key);

  /// \brief Stores a result under `key`, recording the set of sources
  /// and global table names it was computed from (for invalidation).
  /// Evicts the least recently used entry beyond capacity.
  void Insert(const std::string& key, RowBatch batch, double elapsed_ms,
              std::set<std::string> sources,
              std::set<std::string> tables = {});

  /// \brief Drops every entry computed from `source`.
  void InvalidateSource(const std::string& source);

  /// \brief Drops every entry that read any of `tables` (global catalog
  /// names). View lifecycle events — create/promote/demote of replicated
  /// views — change what a global name resolves to without touching a
  /// source, so source-level invalidation alone would leave stale rows.
  void InvalidateTables(const std::set<std::string>& tables);

  void Clear();

  /// \brief Mirrors hit/miss accounting into `m` (as `cache.hits` /
  /// `cache.misses` counters) so the owning system's experiments read
  /// cache behavior from the same registry as network traffic. Not
  /// owned; pass nullptr to detach.
  void set_metrics(MetricsRegistry* m) { metrics_ = m; }

  size_t size() const { return entries_.size(); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  struct Entry {
    CachedResult result;
    std::set<std::string> sources;
    std::set<std::string> tables;  ///< global names the plan scanned
    std::list<std::string>::iterator lru_pos;
  };

  size_t max_entries_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< front = most recent
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace gisql
