/// \file cursor_manager.h
/// \brief Mediator-side cursor state: one entry per streaming query,
/// from OpenCursor to drain/close/expiry.
///
/// GlobalSystem owns one CursorManager and orchestrates the protocol
/// (admission, execution, lease sweeps, clock advancement); the
/// manager is the bookkeeping — entries, their lifecycle states, and
/// the `gis.cursors` snapshot. An entry holds the pull pipeline
/// (exec/streaming.h) or the spool of a blocking plan, plus the
/// query's MemoryGrant: streaming entries re-grant per chunk so the
/// charged footprint is O(chunk); spool entries keep the full charge
/// until the cursor dies, because the spool really is resident.
///
/// Leases: every cursor carries a deadline on the simulated clock,
/// renewed by each fetch. GlobalSystem sweeps expired cursors lazily
/// inside each cursor call — there is no background thread, so expiry
/// is a pure function of the call sequence and replays exactly.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "exec/streaming.h"
#include "sched/memory_budget.h"
#include "types/row.h"

namespace gisql {

class CursorManager {
 public:
  enum class State : uint8_t {
    kOpen,     ///< fetchable
    kDrained,  ///< final chunk served; kept for observability
    kClosed,   ///< client closed (or a fatal fetch error ended it)
    kExpired,  ///< lease deadline passed before the client came back
  };
  static const char* StateName(State s);

  struct Entry {
    uint64_t id = 0;
    std::string sql;
    State state = State::kOpen;
    /// True: incremental pull pipeline. False: blocking plan drained
    /// into a spool at open.
    bool streaming = false;
    int64_t chunk_rows = 0;
    int64_t chunks = 0;  ///< chunks served so far
    int64_t rows = 0;    ///< rows served so far
    double opened_ms = 0.0;
    /// Lease duration; each fetch renews the deadline by this much.
    double lease_ms = 0.0;
    double lease_deadline_ms = 0.0;
    /// Simulated ms spent on this cursor so far (open + fetches +
    /// close), plus the traffic behind them.
    double elapsed_ms = 0.0;
    int64_t bytes_sent = 0;
    int64_t bytes_received = 0;
    int64_t messages = 0;
    int64_t retries = 0;
    /// Attribution carried from OpenCursor to the finalize-time
    /// query-log entry and tenant charge (obs/query_context.h).
    std::string tenant = "default";
    int priority = 1;
    double arrival_ms = 0.0;
    double admission_wait_ms = 0.0;
    /// Buffer-pool deltas accumulated per cursor operation (cursor
    /// lifetimes interleave with other queries, so the per-statement
    /// bracketing must accumulate here instead).
    int64_t page_hits = 0;
    int64_t page_misses = 0;
    double disk_ms = 0.0;
    /// Peak booked grant bytes across the cursor's life (streaming
    /// re-grants per chunk, so end-of-life used() would understate).
    int64_t mem_peak_bytes = 0;

    std::unique_ptr<RowStream> stream;
    /// Keeps the plan nodes the stream references alive.
    PlanNodePtr plan;
    MemoryGrant grant;
    /// MVCC snapshot pinned for this cursor's lifetime: holds the GC
    /// watermark back so version chains its scan references survive
    /// until the cursor finalizes (TransactionManager::PinSnapshot).
    /// 0 = no pin. Released together with the grant in FinalizeCursor
    /// — including on lease expiry.
    uint64_t snapshot_pin = 0;
  };

  /// \brief Registers a new open cursor and returns it. The reference
  /// stays valid until Finalize() retires enough finished entries —
  /// i.e. for the duration of the current cursor call.
  Entry& Create(std::string sql, bool streaming, int64_t chunk_rows,
                double opened_ms, double lease_ms);

  /// \brief The entry for `id` (any state), or null.
  Entry* Find(uint64_t id);
  const Entry* Find(uint64_t id) const;

  /// \brief Open entries only.
  size_t OpenCount() const;

  /// \brief Ids of open entries whose lease deadline lies strictly
  /// before `now_ms`, ascending.
  std::vector<uint64_t> ExpiredBefore(double now_ms) const;

  /// \brief Ends an entry's life: sets the state, drops the stream and
  /// the plan, releases the memory grant, and prunes the oldest
  /// finished entries beyond the retention bound. The entry reference
  /// (and any other finished entry's) is invalid afterwards.
  void Finalize(uint64_t id, State state);

  /// \brief `gis.cursors` rows (ascending id, live and retained
  /// finished entries), matching SystemTableSchema("gis.cursors").
  RowBatch Snapshot() const;

  /// \brief Monotone idempotency-token counter for source-side opens
  /// (exec/streaming.h consumes it). Never reused, so a retried open
  /// can always be told from a new one.
  uint64_t* token_counter() { return &next_token_; }

 private:
  /// Finished entries retained for gis.cursors, oldest pruned first.
  static constexpr size_t kMaxFinishedRetained = 256;

  std::map<uint64_t, Entry> entries_;
  uint64_t next_id_ = 1;
  uint64_t next_token_ = 1;
};

}  // namespace gisql
