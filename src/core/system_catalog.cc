#include "core/system_catalog.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/string_util.h"

namespace gisql {

namespace {

/// Appends every counter of one registry snapshot, labeled with the
/// registry name. The snapshot maps are sorted, so emission order is
/// deterministic. Gauges are deliberately absent — a gauge captures
/// "the value at some instant", and under pooled execution *which*
/// instant won a race is schedule-dependent; they render via
/// gis.gauges instead.
void AppendCounterRows(const std::string& registry,
                       const MetricsSnapshot& snap, RowBatch* out) {
  for (const auto& [name, value] : snap.counters) {
    out->Append({Value::String(registry), Value::String(name),
                 Value::String("counter"),
                 Value::Double(static_cast<double>(value))});
  }
}

void AppendGaugeRows(const std::string& registry, const MetricsSnapshot& snap,
                     RowBatch* out) {
  for (const auto& [name, value] : snap.gauges) {
    out->Append({Value::String(registry), Value::String(name),
                 Value::Double(value)});
  }
}

void AppendHistogramRows(const std::string& registry,
                         const MetricsSnapshot& snap, RowBatch* out) {
  for (const auto& [name, hist] : snap.histograms) {
    const HistogramSnapshot d = DigestHistogram(hist);
    out->Append({Value::String(registry), Value::String(name),
                 Value::Int(d.count), Value::Double(d.sum),
                 Value::Double(d.min), Value::Double(d.max),
                 Value::Double(d.p50), Value::Double(d.p95),
                 Value::Double(d.p99), Value::Double(d.p999)});
  }
}

}  // namespace

bool SystemCatalog::HasTable(const std::string& name) const {
  const auto names = SystemTableNames();
  return std::find(names.begin(), names.end(), ToLower(name)) != names.end();
}

Result<SchemaPtr> SystemCatalog::TableSchema(const std::string& name) const {
  return SystemTableSchema(name);
}

std::vector<std::string> SystemCatalog::TableNames() const {
  return SystemTableNames();
}

Result<RowBatch> SystemCatalog::Snapshot(const std::string& name) const {
  const std::string lower = ToLower(name);
  if (lower == "gis.sources") return SnapshotSources();
  if (lower == "gis.metrics") return SnapshotMetrics();
  if (lower == "gis.gauges") return SnapshotGauges();
  if (lower == "gis.histograms") return SnapshotHistograms();
  if (lower == "gis.queries") return SnapshotQueries();
  if (lower == "gis.admission") return SnapshotAdmission();
  if (lower == "gis.cursors") return SnapshotCursors();
  if (lower == "gis.storage") return SnapshotStorage();
  if (lower == "gis.transactions") return SnapshotTransactions();
  if (lower == "gis.tenants") return SnapshotTenants();
  if (lower == "gis.slo") return SnapshotSlo();
  if (lower == "gis.incidents") return SnapshotIncidents();
  if (lower == "gis.advisor") return SnapshotAdvisor();
  const auto schema = SystemTableSchema(name);
  return schema.status();  // NotFound with the known-table list
}

RowBatch SystemCatalog::SnapshotSources() const {
  RowBatch batch(SystemTableSchema("gis.sources").ValueUnsafe());
  // Every catalog-registered source gets a row even with zero traffic;
  // observed-but-unregistered hosts (none today) would also appear.
  std::set<std::string> names;
  for (const auto& n : catalog_->SourceNames()) names.insert(n);
  for (const auto& snap : health_->Snapshot()) names.insert(snap.source);
  for (const auto& n : names) {
    const SourceHealthSnapshot s = health_->SnapshotOf(n);
    const BreakerSnapshot b = governor_ != nullptr
                                  ? governor_->breakers().SnapshotOf(n)
                                  : BreakerSnapshot{};
    batch.Append({Value::String(n),
                  Value::String(SourceHealthStateName(s.state)),
                  Value::Int(s.requests), Value::Int(s.errors),
                  Value::Int(s.retries), Value::Int(s.consecutive_failures),
                  Value::Int(s.bytes_sent), Value::Int(s.bytes_received),
                  Value::Double(s.ewma_ms), Value::Double(s.p95_ms),
                  Value::String(s.last_error),
                  Value::String(BreakerStateName(b.state)),
                  Value::Int(b.skips), Value::Int(b.probes),
                  Value::Int(b.transitions)});
  }
  return batch;
}

RowBatch SystemCatalog::SnapshotMetrics() const {
  RowBatch batch(SystemTableSchema("gis.metrics").ValueUnsafe());
  AppendCounterRows("mediator", mediator_metrics_->SnapshotAll(), &batch);
  AppendCounterRows("network", network_metrics_->SnapshotAll(), &batch);
  return batch;
}

RowBatch SystemCatalog::SnapshotGauges() const {
  RowBatch batch(SystemTableSchema("gis.gauges").ValueUnsafe());
  AppendGaugeRows("mediator", mediator_metrics_->SnapshotAll(), &batch);
  AppendGaugeRows("network", network_metrics_->SnapshotAll(), &batch);
  return batch;
}

RowBatch SystemCatalog::SnapshotHistograms() const {
  RowBatch batch(SystemTableSchema("gis.histograms").ValueUnsafe());
  AppendHistogramRows("mediator", mediator_metrics_->SnapshotAll(), &batch);
  AppendHistogramRows("network", network_metrics_->SnapshotAll(), &batch);
  return batch;
}

RowBatch SystemCatalog::SnapshotQueries() const {
  RowBatch batch(SystemTableSchema("gis.queries").ValueUnsafe());
  for (const auto& e : query_log_->Snapshot()) {
    batch.Append({Value::Int(e.id), Value::String(e.sql),
                  Value::Double(e.elapsed_ms), Value::Int(e.bytes_sent),
                  Value::Int(e.bytes_received), Value::Int(e.messages),
                  Value::Int(e.retries), Value::Bool(e.cache_hit),
                  Value::Int(e.rows), Value::Int(e.trace_root),
                  Value::Double(e.admission_wait_ms),
                  Value::String(e.shed_reason), Value::String(e.tenant),
                  Value::Int(e.priority), Value::Double(e.finish_ms),
                  Value::String(e.fingerprint)});
  }
  return batch;
}

RowBatch SystemCatalog::SnapshotAdmission() const {
  RowBatch batch(SystemTableSchema("gis.admission").ValueUnsafe());
  const GovernorSnapshot g =
      governor_ != nullptr ? governor_->Snapshot() : GovernorSnapshot{};
  batch.Append({Value::Int(g.admission_config.max_concurrent),
                Value::Int(g.admission_config.queue_limit),
                Value::Double(g.admission_config.max_wait_ms),
                Value::Int(g.admission.in_flight),
                Value::Int(g.admission.admitted),
                Value::Int(g.admission.queued),
                Value::Int(g.admission.shed_queue_full),
                Value::Int(g.admission.shed_deadline),
                Value::Int(g.shed_memory_budget),
                Value::Double(g.admission.total_wait_ms),
                Value::Int(g.mem_query_cap), Value::Int(g.mem_global_cap),
                Value::Int(g.mem_peak_bytes),
                Value::Bool(g.breaker_enabled), Value::Int(g.breakers_open),
                Value::Int(g.breaker_transitions),
                Value::Int(g.breaker_skips), Value::Int(g.breaker_probes)});
  return batch;
}

RowBatch SystemCatalog::SnapshotCursors() const {
  if (cursors_ == nullptr) {
    return RowBatch(SystemTableSchema("gis.cursors").ValueUnsafe());
  }
  return cursors_->Snapshot();
}

RowBatch SystemCatalog::SnapshotStorage() const {
  RowBatch batch(SystemTableSchema("gis.storage").ValueUnsafe());
  if (sources_ == nullptr) return batch;
  // One row per source's buffer pool, sorted by source name.
  std::vector<const ComponentSource*> ordered;
  ordered.reserve(sources_->size());
  for (const auto& s : *sources_) ordered.push_back(s.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const ComponentSource* a, const ComponentSource* b) {
              return a->name() < b->name();
            });
  for (const ComponentSource* s : ordered) {
    const BufferPoolStats p =
        const_cast<ComponentSource*>(s)->engine().pool().Snapshot();
    const int64_t accesses = p.hits + p.misses;
    batch.Append(
        {Value::String(s->name()),
         Value::Int(static_cast<int64_t>(p.page_size)),
         Value::Int(static_cast<int64_t>(p.pool_frames)),
         Value::Int(static_cast<int64_t>(p.frames_used)),
         Value::Int(p.pages_live), Value::Int(p.hits),
         Value::Int(p.misses), Value::Int(p.evictions),
         Value::Int(p.disk_reads), Value::Int(p.disk_writes),
         Value::Double(p.disk_us / 1e3),
         Value::Double(accesses > 0
                           ? static_cast<double>(p.hits) /
                                 static_cast<double>(accesses)
                           : 0.0)});
  }
  return batch;
}

RowBatch SystemCatalog::SnapshotTransactions() const {
  RowBatch batch(SystemTableSchema("gis.transactions").ValueUnsafe());
  if (txns_ == nullptr) return batch;
  // Active plus the bounded finished ring, ascending by id — the
  // manager's Snapshot order is already deterministic.
  for (const auto& t : txns_->Snapshot()) {
    std::string participants;
    for (const auto& p : t.participants) {
      if (!participants.empty()) participants += ",";
      participants += p;
    }
    batch.Append({Value::Int(static_cast<int64_t>(t.id)),
                  Value::String(TxnStateName(t.state)),
                  Value::Int(static_cast<int64_t>(t.snapshot_ts)),
                  Value::Int(static_cast<int64_t>(t.commit_ts)),
                  Value::Int(t.statements), Value::String(participants),
                  Value::Int(t.lock_waits), Value::String(t.abort_reason),
                  Value::Double(t.begin_ms), Value::Double(t.end_ms)});
  }
  return batch;
}

RowBatch SystemCatalog::SnapshotTenants() const {
  RowBatch batch(SystemTableSchema("gis.tenants").ValueUnsafe());
  if (tenants_ == nullptr) return batch;
  for (const auto& t : tenants_->SnapshotTenants()) {
    batch.Append({Value::String(t.tenant), Value::Int(t.queries),
                  Value::Int(t.sheds), Value::Int(t.cache_hits),
                  Value::Int(t.rows), Value::Double(t.elapsed_ms),
                  Value::Double(t.admission_wait_ms),
                  Value::Int(t.bytes_sent), Value::Int(t.bytes_received),
                  Value::Int(t.messages), Value::Int(t.retries),
                  Value::Int(t.mem_peak_bytes), Value::Int(t.page_hits),
                  Value::Int(t.page_misses), Value::Double(t.disk_ms)});
  }
  return batch;
}

RowBatch SystemCatalog::SnapshotSlo() const {
  RowBatch batch(SystemTableSchema("gis.slo").ValueUnsafe());
  if (slo_ == nullptr) return batch;
  for (const auto& s : slo_->Snapshot()) {
    batch.Append({Value::String(s.name), Value::Int(s.priority),
                  Value::Double(s.target_ms), Value::Double(s.goal),
                  Value::Int(s.fast_total), Value::Int(s.fast_good),
                  Value::Int(s.slow_total), Value::Int(s.slow_good),
                  Value::Double(s.fast_attainment),
                  Value::Double(s.slow_attainment),
                  Value::Double(s.fast_burn), Value::Double(s.slow_burn),
                  Value::Bool(s.alerting), Value::Int(s.alerts),
                  Value::Double(s.last_alert_ms)});
  }
  return batch;
}

RowBatch SystemCatalog::SnapshotIncidents() const {
  RowBatch batch(SystemTableSchema("gis.incidents").ValueUnsafe());
  if (flight_ == nullptr) return batch;
  for (const auto& i : flight_->Incidents()) {
    batch.Append({Value::Int(i.id), Value::Double(i.at_ms),
                  Value::String(i.trigger), Value::String(i.detail),
                  Value::String(i.json)});
  }
  return batch;
}

RowBatch SystemCatalog::SnapshotAdvisor() const {
  RowBatch batch(SystemTableSchema("gis.advisor").ValueUnsafe());
  if (advisor_ == nullptr) return batch;
  for (const auto& d : advisor_->Decisions()) {
    batch.Append({Value::Int(d.id), Value::Double(d.at_ms),
                  Value::String(d.kind), Value::String(d.target),
                  Value::String(d.evidence), Value::String(d.action),
                  Value::String(d.outcome)});
  }
  return batch;
}

}  // namespace gisql
