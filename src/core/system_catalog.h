/// \file system_catalog.h
/// \brief The mediator's concrete SystemTableProvider: snapshots the
/// health tracker, both metrics registries, the query log, and the
/// resource governor into `gis.*` row batches.

#pragma once

#include <vector>

#include "advisor/advisor.h"
#include "catalog/catalog.h"
#include "catalog/system_tables.h"
#include "common/metrics.h"
#include "core/cursor_manager.h"
#include "core/query_log.h"
#include "core/source_health.h"
#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "obs/tenant_accountant.h"
#include "sched/governor.h"
#include "source/component_source.h"
#include "txn/transaction_manager.h"

namespace gisql {

/// \brief Serves the built-in `gis.*` tables from live mediator state.
///
/// Owned by GlobalSystem, which registers it in the Catalog and threads
/// it into ExecContext. All referenced state outlives the provider
/// (they are sibling members of the same GlobalSystem). Snapshots are
/// deterministically ordered: sources and metric names sort
/// lexicographically, query-log entries ascend by id.
class SystemCatalog : public SystemTableProvider {
 public:
  SystemCatalog(const SourceHealthTracker* health,
                const MetricsRegistry* mediator_metrics,
                const MetricsRegistry* network_metrics,
                const QueryLog* query_log, const Catalog* catalog,
                const ResourceGovernor* governor,
                const CursorManager* cursors = nullptr,
                const std::vector<ComponentSourcePtr>* sources = nullptr,
                const TransactionManager* txns = nullptr,
                const TenantAccountant* tenants = nullptr,
                const SloEngine* slo = nullptr,
                const FlightRecorder* flight = nullptr,
                const Advisor* advisor = nullptr)
      : health_(health),
        mediator_metrics_(mediator_metrics),
        network_metrics_(network_metrics),
        query_log_(query_log),
        catalog_(catalog),
        governor_(governor),
        cursors_(cursors),
        sources_(sources),
        txns_(txns),
        tenants_(tenants),
        slo_(slo),
        flight_(flight),
        advisor_(advisor) {}

  bool HasTable(const std::string& name) const override;
  Result<SchemaPtr> TableSchema(const std::string& name) const override;
  Result<RowBatch> Snapshot(const std::string& name) const override;
  std::vector<std::string> TableNames() const override;

 private:
  RowBatch SnapshotSources() const;
  RowBatch SnapshotMetrics() const;
  RowBatch SnapshotGauges() const;
  RowBatch SnapshotHistograms() const;
  RowBatch SnapshotQueries() const;
  RowBatch SnapshotAdmission() const;
  RowBatch SnapshotCursors() const;
  RowBatch SnapshotStorage() const;
  RowBatch SnapshotTransactions() const;
  RowBatch SnapshotTenants() const;
  RowBatch SnapshotSlo() const;
  RowBatch SnapshotIncidents() const;
  RowBatch SnapshotAdvisor() const;

  const SourceHealthTracker* health_;
  const MetricsRegistry* mediator_metrics_;
  const MetricsRegistry* network_metrics_;
  const QueryLog* query_log_;
  const Catalog* catalog_;
  const ResourceGovernor* governor_;
  const CursorManager* cursors_;
  const std::vector<ComponentSourcePtr>* sources_;
  const TransactionManager* txns_;
  const TenantAccountant* tenants_;
  const SloEngine* slo_;
  const FlightRecorder* flight_;
  const Advisor* advisor_;
};

}  // namespace gisql
