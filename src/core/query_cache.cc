#include "core/query_cache.h"

namespace gisql {

std::optional<QueryCache::CachedResult> QueryCache::Lookup(
    const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    if (metrics_ != nullptr) metrics_->Add("cache.misses", 1);
    return std::nullopt;
  }
  ++hits_;
  if (metrics_ != nullptr) metrics_->Add("cache.hits", 1);
  lru_.erase(it->second.lru_pos);
  lru_.push_front(key);
  it->second.lru_pos = lru_.begin();
  return it->second.result;
}

void QueryCache::Insert(const std::string& key, RowBatch batch,
                        double elapsed_ms, std::set<std::string> sources,
                        std::set<std::string> tables) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
  while (entries_.size() >= max_entries_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  Entry entry;
  entry.result.batch = std::move(batch);
  entry.result.original_elapsed_ms = elapsed_ms;
  entry.sources = std::move(sources);
  entry.tables = std::move(tables);
  entry.lru_pos = lru_.begin();
  entries_.emplace(key, std::move(entry));
}

void QueryCache::InvalidateSource(const std::string& source) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.sources.count(source)) {
      lru_.erase(it->second.lru_pos);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryCache::InvalidateTables(const std::set<std::string>& tables) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool hit = false;
    for (const auto& t : tables) {
      if (it->second.tables.count(t)) {
        hit = true;
        break;
      }
    }
    if (hit) {
      lru_.erase(it->second.lru_pos);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryCache::Clear() {
  entries_.clear();
  lru_.clear();
}

}  // namespace gisql
