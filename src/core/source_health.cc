#include "core/source_health.h"

#include <algorithm>

namespace gisql {

const char* SourceHealthStateName(SourceHealthState state) {
  switch (state) {
    case SourceHealthState::kHealthy: return "healthy";
    case SourceHealthState::kDegraded: return "degraded";
    case SourceHealthState::kSuspect: return "suspect";
  }
  return "?";
}

void SourceHealthTracker::OnRpcAttempt(const std::string& from,
                                       const std::string& to, uint8_t opcode,
                                       const RpcAttempt& attempt) {
  (void)from;
  (void)opcode;
  std::lock_guard<std::mutex> lock(mu_);
  PerSource& s = sources_[to];
  ++s.requests;
  s.bytes_sent += attempt.bytes_sent;
  s.bytes_received += attempt.bytes_received;
  s.latency.Observe(attempt.elapsed_ms);
  s.ewma_ms = s.requests == 1
                  ? attempt.elapsed_ms
                  : kEwmaAlpha * attempt.elapsed_ms +
                        (1.0 - kEwmaAlpha) * s.ewma_ms;
  const bool failed = !attempt.ok();
  if (failed) {
    ++s.errors;
    ++s.consecutive_failures;
    s.last_error = attempt.status.message();
  } else {
    s.consecutive_failures = 0;
  }
  s.recent_errors.push_back(failed);
  while (s.recent_errors.size() > kRecentWindow) s.recent_errors.pop_front();
  if (listener_ != nullptr) listener_->OnSourceOutcome(to, !failed);
}

void SourceHealthTracker::OnRetry(const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  ++sources_[to].retries;
}

SourceHealthState SourceHealthTracker::DeriveState(const PerSource& s) {
  if (s.consecutive_failures >= kSuspectStreak) {
    return SourceHealthState::kSuspect;
  }
  if (s.consecutive_failures >= kDegradedStreak) {
    return SourceHealthState::kDegraded;
  }
  if (s.recent_errors.size() >= kRatioMinSamples) {
    const auto failed = static_cast<double>(std::count(
        s.recent_errors.begin(), s.recent_errors.end(), true));
    if (failed / static_cast<double>(s.recent_errors.size()) >=
        kDegradedErrorRatio) {
      return SourceHealthState::kDegraded;
    }
  }
  return SourceHealthState::kHealthy;
}

SourceHealthSnapshot SourceHealthTracker::MakeSnapshot(
    const std::string& name, const PerSource& s) {
  SourceHealthSnapshot snap;
  snap.source = name;
  snap.state = DeriveState(s);
  snap.requests = s.requests;
  snap.errors = s.errors;
  snap.retries = s.retries;
  snap.consecutive_failures = s.consecutive_failures;
  snap.bytes_sent = s.bytes_sent;
  snap.bytes_received = s.bytes_received;
  snap.ewma_ms = s.ewma_ms;
  snap.p95_ms = s.latency.Percentile(0.95);
  snap.last_error = s.last_error;
  return snap;
}

std::vector<SourceHealthSnapshot> SourceHealthTracker::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SourceHealthSnapshot> out;
  out.reserve(sources_.size());
  for (const auto& [name, s] : sources_) {
    out.push_back(MakeSnapshot(name, s));
  }
  return out;
}

SourceHealthSnapshot SourceHealthTracker::SnapshotOf(
    const std::string& source) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(source);
  if (it == sources_.end()) {
    SourceHealthSnapshot snap;
    snap.source = source;
    return snap;
  }
  return MakeSnapshot(source, it->second);
}

SourceHealthState SourceHealthTracker::StateOf(
    const std::string& source) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(source);
  return it == sources_.end() ? SourceHealthState::kHealthy
                              : DeriveState(it->second);
}

void SourceHealthTracker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.clear();
}

}  // namespace gisql
