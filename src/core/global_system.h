/// \file global_system.h
/// \brief The public API of gisql: a Global Information System mediator.
///
/// A GlobalSystem hosts a simulated network, a set of autonomous
/// component information systems, and the mediator stack (catalog,
/// planner, optimizer, decomposer, executor). Typical use:
///
/// \code
///   GlobalSystem gis;
///   auto* hq = *gis.CreateSource("hq", SourceDialect::kRelational);
///   hq->ExecuteLocalSql("CREATE TABLE orders (id bigint, total double)");
///   hq->ExecuteLocalSql("INSERT INTO orders VALUES (1, 9.5)");
///   gis.ImportSource("hq");
///   auto result = gis.Query("SELECT total FROM orders WHERE id = 1");
///   std::cout << result->batch.ToString();
/// \endcode

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "advisor/advisor.h"
#include "catalog/catalog.h"
#include "common/retry_policy.h"
#include "common/trace.h"
#include "core/cursor_manager.h"
#include "core/query_cache.h"
#include "core/query_log.h"
#include "core/source_health.h"
#include "core/system_catalog.h"
#include "exec/executor.h"
#include "net/sim_network.h"
#include "obs/flight_recorder.h"
#include "obs/query_context.h"
#include "obs/slo.h"
#include "obs/tenant_accountant.h"
#include "planner/options.h"
#include "planner/plan.h"
#include "sched/governor.h"
#include "source/component_source.h"
#include "sql/ast.h"
#include "txn/transaction_manager.h"

namespace gisql {

/// \brief Per-query accounting (all values from the simulation, fully
/// deterministic).
struct QueryMetrics {
  double elapsed_ms = 0.0;      ///< simulated end-to-end latency
  int64_t bytes_sent = 0;       ///< mediator → sources
  int64_t bytes_received = 0;   ///< sources → mediator
  int64_t messages = 0;         ///< RPCs issued
  int64_t retries = 0;          ///< backoff retries spent on this query
  /// Served from the mediator result cache: no network traffic at all
  /// (the zeros above are real zeros, not unknowns).
  bool cache_hit = false;
  /// Simulated time spent in the admission queue before a slot freed
  /// (0 under closed-loop traffic or with admission control off).
  double admission_wait_ms = 0.0;
  std::string plan_text;        ///< EXPLAIN of the executed plan
};

/// \brief A query's rows plus its accounting.
struct QueryResult {
  RowBatch batch;
  QueryMetrics metrics;
};

/// \brief The mediator and its world.
///
/// GlobalSystem is also the advisor's AdvisorHost: the advisor decides,
/// and the host methods below (MaterializeReplica / DemoteReplicatedView)
/// carry the actions over the same wire protocol every other mediator
/// operation uses.
class GlobalSystem : public AdvisorHost {
 public:
  explicit GlobalSystem(PlannerOptions options = PlannerOptions());

  /// \name Topology
  /// @{

  /// \brief Creates a component source, registers it on the network,
  /// and records it in the catalog. The GlobalSystem owns the source;
  /// the returned pointer stays valid for the system's lifetime.
  Result<ComponentSource*> CreateSource(const std::string& name,
                                        SourceDialect dialect);

  /// \brief The source previously created under `name`.
  Result<ComponentSource*> GetSource(const std::string& name) const;

  SimNetwork& network() { return network_; }
  Catalog& catalog() { return catalog_; }
  /// @}

  /// \name Schema integration
  /// @{

  /// \brief Imports every exported table of `source_name` over the
  /// protocol (schema + statistics). Global names default to the
  /// exported names; on conflict, "<source>_<table>".
  Status ImportSource(const std::string& source_name);

  /// \brief Imports one table under an explicit global name.
  Status ImportTable(const std::string& source_name,
                     const std::string& exported_name,
                     const std::string& global_name);

  /// \brief Re-fetches statistics for a registered global table.
  Status RefreshStats(const std::string& global_name);

  /// \brief Defines a union-compatible global view (partitioned entity
  /// across sources; queries read every member).
  Status CreateUnionView(const std::string& name,
                         const std::vector<std::string>& members);

  /// \brief Defines a replicated view: each member holds a full copy.
  /// Queries read the cheapest replica and fail over to the others when
  /// its source is unreachable.
  Status CreateReplicatedView(const std::string& name,
                              const std::vector<std::string>& members);

  /// \brief Ships DDL/DML to a source over the admin channel of the
  /// wire protocol (the network-visible alternative to calling
  /// ComponentSource::ExecuteLocalSql in-process).
  Status ExecuteAt(const std::string& source_name, const std::string& sql);

  /// \brief One statement of a global transaction.
  struct GlobalWrite {
    std::string source;  ///< destination host
    std::string sql;     ///< INSERT statement
  };

  /// \brief Atomically applies INSERTs across multiple autonomous
  /// sources via two-phase commit over the wire protocol.
  ///
  /// Phase 1 PREPAREs (parse + full validation + staging) every
  /// statement; any failure aborts all participants and nothing is
  /// applied. Phase 2 COMMITs. If a participant becomes unreachable
  /// *between* the phases the transaction is left in the classic 2PC
  /// in-doubt state: committed participants keep their rows, the
  /// unreachable one still holds its staged rows, and the returned
  /// Internal error names it so the operator can resolve (re-send
  /// COMMIT via the wire, or abort at the source).
  Status ExecuteAtomically(const std::vector<GlobalWrite>& writes);
  /// @}

  /// \name Interactive global transactions (snapshot isolation)
  ///
  /// The mediator's TransactionManager hands every transaction a global
  /// snapshot timestamp at Begin. Reads inside the transaction
  /// (QueryInTxn) ship that timestamp on every fragment, so sources
  /// evaluate MVCC visibility [begin_ts, end_ts) against one consistent
  /// global snapshot — and overlay the transaction's own staged writes
  /// (read-your-writes). Writes (TxnWrite) prepare at the owning source
  /// under row/table locks; a lock conflict never blocks (the
  /// simulation is single-threaded) — the mediator records the
  /// waits-for edge, runs deadlock detection, and either sheds the
  /// statement (Status::Overloaded, no cycle: caller may retry later)
  /// or resolves the cycle by aborting the youngest transaction on it.
  /// Commit runs the existing 2PC machinery, stamping row versions
  /// with a fresh commit timestamp and piggybacking the GC watermark.
  /// @{

  /// \brief Starts a global transaction; returns its id. Overloaded
  /// when txn_max_active transactions are already running.
  Result<uint64_t> BeginTransaction();

  /// \brief A SELECT inside the transaction: same pipeline as Query()
  /// but pinned to the transaction's snapshot and overlaying its own
  /// staged writes. Bypasses the result cache.
  Result<QueryResult> QueryInTxn(uint64_t txn_id, const std::string& sql);

  /// \brief Stages one INSERT or DELETE at `source` under the
  /// transaction's locks. ExecutionError names a deadlock (this
  /// transaction was chosen as victim and is already aborted) or a
  /// write-write conflict; Overloaded means the statement would block
  /// on an un-cycled lock conflict and may be retried.
  Status TxnWrite(uint64_t txn_id, const std::string& source,
                  const std::string& sql);

  /// \brief Commits: allocates the commit timestamp, delivers 2PC
  /// COMMIT (with the GC watermark) to every participant. A
  /// participant unreachable at commit leaves the classic in-doubt
  /// state, reported as Internal.
  Status CommitTransaction(uint64_t txn_id);

  /// \brief Aborts: best-effort 2PC ABORT at every participant, then
  /// marks the transaction aborted at the mediator.
  Status AbortTransaction(uint64_t txn_id, const std::string& reason = "");

  /// \brief Transaction bookkeeping (gis.transactions is the SQL view
  /// of the same state).
  TransactionManager& transactions() { return txns_; }
  const TransactionManager& transactions() const { return txns_; }
  /// @}

  /// \name Querying
  /// @{

  /// \brief Parses, plans, optimizes, decomposes, and executes a SELECT
  /// (or EXPLAIN SELECT) against the global schema. Arrives on the
  /// governor's virtual clock (closed-loop: at the completion time of
  /// the previous query, so it never queues).
  Result<QueryResult> Query(const std::string& sql);

  /// \brief Open-loop submission knobs for one query (see Submit).
  struct SubmitOptions {
    /// Simulated arrival time; < 0 uses the governor's virtual clock
    /// (the previous query's completion — closed-loop traffic).
    double arrival_ms = -1.0;
    /// Admission priority class: 0 background, 1 normal, 2 interactive.
    int priority = 1;
    /// Queue-wait deadline override; < 0 uses
    /// PlannerOptions::admission_max_wait_ms.
    double max_wait_ms = -1.0;
    /// Accountable principal the query is charged to; "" attributes
    /// to the "default" tenant (see obs/query_context.h).
    std::string tenant;
  };

  /// \brief Query() with explicit admission parameters. With
  /// admission_control on, the resource governor may *shed* the query
  /// — Status::Overloaded, zero simulated cost, nothing executed —
  /// when the wait queue is full or the deadline is unmeetable.
  /// Decisions are a pure function of the arrival schedule (and the
  /// configured knobs), so replays match bit for bit.
  Result<QueryResult> Submit(const std::string& sql,
                             const SubmitOptions& submit);

  /// \name Cursor-based streaming results
  ///
  /// The alternative to Query()/Submit() for large results: OpenCursor
  /// admits and plans the query but delivers it through FetchChunk as
  /// bounded chunks, so the mediator's resident footprint per query is
  /// O(chunk) instead of O(result). Streamable plans (filter / project
  /// / limit / union pipelines over remote scans) execute
  /// incrementally — sources stage the scan behind wire cursors
  /// (kOpenCursor/kFetchChunk/kCloseCursor) and rows cross the WAN one
  /// chunk at a time; blocking plans (joins, aggregates, sorts) drain
  /// into a spool charged to the query's memory grant at open and are
  /// then served from it. Cursors carry a lease on the simulated
  /// clock: one not fetched within its lease expires on the next
  /// cursor call, releasing its grant and source staging. Admission
  /// control gates OpenCursor exactly like Submit — a shed open
  /// allocates neither cursor nor grant. State is queryable as
  /// gis.cursors.
  /// @{

  /// \brief Per-cursor knobs; negatives fall back to PlannerOptions
  /// (cursor_chunk_rows / cursor_lease_ms).
  struct CursorOptions {
    SubmitOptions submit;   ///< admission parameters, as for Submit()
    int64_t chunk_rows = -1;
    double lease_ms = -1.0;
  };

  /// \brief One fetched chunk plus its per-fetch accounting.
  struct CursorChunkResult {
    RowBatch batch;
    /// True on the last chunk; the cursor is drained and already
    /// finalized (no CloseCursor needed, though calling it is OK).
    bool done = false;
    uint64_t seq = 0;        ///< 0-based chunk ordinal
    QueryMetrics metrics;    ///< this fetch only
  };

  /// \brief Admits, plans, and stages `sql` behind a cursor; returns
  /// its id. Overloaded when admission sheds it or the open-cursor
  /// limit is reached — in both cases nothing was allocated.
  Result<uint64_t> OpenCursor(const std::string& sql,
                              const CursorOptions& opts);
  Result<uint64_t> OpenCursor(const std::string& sql) {
    return OpenCursor(sql, CursorOptions());
  }

  /// \brief Serves the cursor's next chunk. After a transport error
  /// the cursor stays open and the same chunk can be re-fetched (the
  /// source re-serves idempotently); fatal errors finalize it.
  Result<CursorChunkResult> FetchChunk(uint64_t cursor_id);

  /// \brief Releases the cursor (idempotent; unknown or finished ids
  /// are OK).
  Status CloseCursor(uint64_t cursor_id);

  /// \brief Cursor bookkeeping, for tests/monitoring (gis.cursors is
  /// the SQL view of the same state).
  const CursorManager& cursors() const { return cursors_; }
  /// @}

  /// \brief The decomposed plan's EXPLAIN text, without executing.
  Result<std::string> Explain(const std::string& sql);

  /// \brief Full planning pipeline; exposed for tests and tooling.
  /// When `trace` is set, the pipeline stages (bind/plan, optimize,
  /// decompose) are recorded as zero-width lifecycle markers — planning
  /// is free on the simulated clock — under `parent`.
  Result<PlanNodePtr> PlanQuery(const sql::SelectStmt& stmt,
                                TraceCollector* trace = nullptr,
                                uint64_t parent = 0) const;
  /// @}

  /// \name Query-lifecycle tracing
  ///
  /// When enabled, every Query() call records a span tree — parse →
  /// plan stages → execute (one operator span per plan node, with
  /// per-attempt network sub-spans under each remote fragment) → cache
  /// — over the simulated clock. The collector holds the *last*
  /// executed query's trace; export it with
  /// trace()->ToChromeJson() / ToText(). Off by default (spans cost a
  /// little wall-clock on the hot path, never simulated time).
  /// @{
  void EnableTracing();
  void DisableTracing();
  /// \brief The last query's trace, or nullptr when tracing is off.
  TraceCollector* trace() { return trace_.get(); }
  /// @}

  /// \brief Mediator-side metrics: `cache.hits`/`cache.misses`
  /// counters, `query.count`, and the `query.ms`/`query.bytes`
  /// latency/size histograms (SnapshotHistogram gives p50/p95/p99).
  /// Network-side counters live in network().metrics().
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// \name Self-observation
  ///
  /// The mediator watches its own traffic: every RPC attempt feeds the
  /// per-source health tracker, every executed query lands in the
  /// bounded query log, and all of it is queryable as the `gis.*`
  /// system tables (gis.sources, gis.metrics, gis.histograms,
  /// gis.queries) through the ordinary SQL pipeline — zero network
  /// cost, so observing never perturbs the experiment.
  /// @{
  SourceHealthTracker& health() { return health_; }
  const SourceHealthTracker& health() const { return health_; }
  const QueryLog& query_log() const { return query_log_; }

  /// \brief Per-tenant attribution: every executed or shed statement
  /// is charged to exactly one tenant, and the accountant's Totals()
  /// row provably equals the sum of the per-tenant rows (gis.tenants
  /// is the SQL view).
  const TenantAccountant& tenants() const { return tenants_; }

  /// \brief SLO engine: rolling-window attainment and multi-window
  /// error-budget burn rates per priority class, on the simulated
  /// clock (gis.slo is the SQL view). Mutable access lets callers
  /// install custom objectives.
  SloEngine& slo() { return slo_; }
  const SloEngine& slo() const { return slo_; }

  /// \brief Flight recorder: bounded ring of recent query frames plus
  /// deterministic incident snapshots (gis.incidents is the SQL view).
  FlightRecorder& flight_recorder() { return flight_; }
  const FlightRecorder& flight_recorder() const { return flight_; }

  /// \brief Prometheus text exposition of the whole system: the
  /// mediator registry, the network registry, and labeled per-source
  /// health series (gisql_source_state/requests/errors/...).
  std::string ExportPrometheus() const;

  /// \brief Bytes of buffer-pool frames currently charged against the
  /// global memory budget, summed over every source. Pools only grow,
  /// so at quiescence `governor().memory().in_use()` equals exactly
  /// this residency.
  int64_t BufferPoolResidentBytes() const;
  /// @}

  void set_options(const PlannerOptions& options) {
    options_ = options;
    governor_.Configure(options);
    tenants_.set_max_tracked(options.tenant_max_tracked);
    slo_.Configure(options.slo_fast_window_ms, options.slo_slow_window_ms,
                   options.slo_burn_alert);
    flight_.Configure(
        options.flight_ring > 0 ? static_cast<size_t>(options.flight_ring) : 0,
        options.flight_max_incidents > 0
            ? static_cast<size_t>(options.flight_max_incidents)
            : 0,
        options.flight_cooldown_ms, options.flight_shed_spike,
        options.flight_shed_window_ms);
    flight_.set_enabled(options.flight_recorder);
    ConfigureAdvisor();
  }
  const PlannerOptions& options() const { return options_; }

  /// \name Resource governance
  ///
  /// Admission control, per-query/global memory budgets, and
  /// per-source circuit breakers (src/sched/, DESIGN.md "Resource
  /// governance"). State is queryable as gis.admission plus the
  /// breaker/shed columns of gis.sources and gis.queries.
  /// @{
  ResourceGovernor& governor() { return governor_; }
  const ResourceGovernor& governor() const { return governor_; }
  /// @}

  /// \name Self-driving advisor (src/advisor/, DESIGN.md "Self-driving
  /// mediator")
  ///
  /// A deterministic background policy engine, ticked from the query
  /// path on the simulated clock, that closes the observe→act loop:
  /// auto-materialization of hot templates, replica placement toward
  /// cheap healthy sites, and guard-railed admission/memory tuning.
  /// Off by default (PlannerOptions::advisor_enabled / GISQL_ADVISOR);
  /// GISQL_ADVISOR_KILL=1 force-disables it regardless. Decisions are
  /// queryable as gis.advisor.
  /// @{
  Advisor& advisor() { return *advisor_; }
  const Advisor& advisor() const { return *advisor_; }

  /// \brief AdvisorHost: copies `global_table` to `target_source` as a
  /// single kBulkLoad transfer, imports it as
  /// "<table>__<target>", renames the original to "<table>__base", and
  /// promotes the original global name to a replicated view over both
  /// — existing queries transparently start reading the cheapest
  /// replica. Returns the replica's global name.
  Result<std::string> MaterializeReplica(
      const std::string& global_table,
      const std::string& target_source) override;

  /// \brief AdvisorHost: reverses MaterializeReplica — drops the view,
  /// drops the replica (catalog mapping + best-effort source-side DROP
  /// TABLE), and restores the base table under its original name.
  Status DemoteReplicatedView(const std::string& view_name) override;
  /// @}

  /// \name Fault tolerance
  ///
  /// One retry policy governs every mediator→source interaction
  /// (fragment execution including replica failover, schema/stats
  /// import, 2PC rounds). The default NoRetry preserves the classic
  /// single-attempt behavior; chaos experiments raise max_attempts and
  /// pair it with SimNetwork::InstallFaults. ExecuteAt (the admin
  /// channel) stays single-attempt: its DDL/DML is not idempotent, so
  /// blind redelivery could double-apply — operators re-run it
  /// explicitly.
  /// @{
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }
  /// @}

  /// \name Result caching (off by default — see core/query_cache.h for
  /// the autonomy staleness caveat)
  /// @{
  void EnableResultCache(size_t max_entries = 128);
  void DisableResultCache();
  /// \brief The cache, or nullptr when disabled (for stats/invalidation).
  QueryCache* result_cache() { return cache_.get(); }
  /// @}

  /// \brief Mediator host name on the simulated network.
  static constexpr const char* kMediatorHost = "mediator";

  /// \brief The executor worker pool, for tests/monitoring (its
  /// peak_worker_tasks() proves the concurrency bound). Null until the
  /// first parallel query.
  const ThreadPool* worker_pool() const { return pool_.get(); }

 private:
  /// \brief The executor worker pool, created lazily on first parallel
  /// query (sized by options_.worker_threads; 0 = auto) and reused by
  /// every query after that.
  ThreadPool* WorkerPool();

  /// \brief Execution environment reflecting the current options,
  /// network, retry policy, and the query's memory grant (tracing
  /// fields left unset).
  ExecContext MakeExecContext(MemoryGrant* grant);

  /// \brief The post-admission body of Submit: parse through execute,
  /// charging `grant` and logging with the decided admission wait.
  /// `qctx` carries the attribution (tenant/priority/arrival/start).
  /// Non-zero snapshot_ts/txn_id pin execution to a transaction's
  /// snapshot (and bypass the result cache — snapshots are per-txn).
  Result<QueryResult> RunStatement(const std::string& sql,
                                   MemoryGrant* grant,
                                   const QueryContext& qctx,
                                   double admission_wait_ms,
                                   uint64_t snapshot_ts = 0,
                                   uint64_t txn_id = 0);

  /// \brief The single funnel pairing every query-log append with its
  /// attribution charge, SLO event, and flight-recorder frame, so the
  /// four views can never drift apart. The caller fills the entry
  /// (including finish_ms and shed_reason); tenant/priority are
  /// stamped here from `qctx`. `mem_bytes` is the query grant's
  /// booked total; the page-IO deltas come from bracketing the
  /// source buffer pools around execution.
  void RecordQueryOutcome(QueryLogEntry entry, const QueryContext& qctx,
                          int64_t mem_bytes, int64_t page_hits,
                          int64_t page_misses, double disk_ms);

  /// \brief Builds the deterministic `"system"` JSON object embedded
  /// in incident snapshots (sources, admission, memory, buffer pools,
  /// transactions, SLO state — simulation-derived fields only).
  std::string SystemStateJson(double now_ms) const;

  /// \brief Delivers kTxnAbort to every participant of `t` (best
  /// effort) and marks it aborted. Shared by AbortTransaction and the
  /// deadlock victim path.
  void AbortAtParticipants(TxnInfo& t, const std::string& reason);

  /// \brief The admission gate shared by Submit and OpenCursor. On a
  /// shed, logs the refusal and returns Overloaded — before anything
  /// (cursor, grant) is allocated.
  Result<AdmissionDecision> AdmitOrShed(const std::string& sql,
                                        const SubmitOptions& submit);

  /// \brief Closes expired-lease cursors (called lazily at the top of
  /// every cursor operation; no background thread).
  void SweepExpiredCursors(double now_ms);

  /// \brief (Re)builds the advisor config from options_, honoring the
  /// GISQL_ADVISOR_KILL environment kill switch (which force-disables
  /// the advisor even when options enabled it programmatically). The
  /// Advisor object itself is created once and reconfigured in place —
  /// the system catalog holds a pointer into it.
  void ConfigureAdvisor();

  /// \brief Ends a cursor's life: closes its stream (best-effort
  /// remote close), writes its query-log entry, releases its grant.
  void FinalizeCursor(CursorManager::Entry& entry,
                      CursorManager::State state,
                      const char* shed_reason = "");

  PlannerOptions options_;
  RetryPolicy retry_policy_ = RetryPolicy::NoRetry();
  // governor_ precedes health_ (the tracker forwards outcomes into the
  // governor's breaker registry), and health_ precedes network_ (which
  // holds a raw observer pointer into it), so destruction unwinds
  // consumer-first.
  ResourceGovernor governor_{PlannerOptions()};
  SourceHealthTracker health_;
  SimNetwork network_;
  Catalog catalog_;
  std::vector<ComponentSourcePtr> sources_;
  QueryLog query_log_{QueryLog::CapacityFromEnv()};
  // cursors_ precedes system_catalog_ (which snapshots it).
  CursorManager cursors_;
  // txns_ precedes system_catalog_ (which snapshots it too).
  TransactionManager txns_;
  // The workload-intelligence trio precedes system_catalog_ (which
  // snapshots all three as gis.tenants / gis.slo / gis.incidents).
  TenantAccountant tenants_;
  SloEngine slo_;
  FlightRecorder flight_;
  // Breaker-transition count last seen by RecordQueryOutcome, for the
  // breaker-open incident trigger (polled per statement, which is
  // deterministic; RPC-time callbacks would race under the pool).
  int64_t seen_breaker_transitions_ = 0;
  // advisor_ precedes system_catalog_ (which snapshots its decision
  // log as gis.advisor); everything the advisor reads or acts through
  // (catalog_, query_log_, health_, slo_, governor_) precedes it.
  std::unique_ptr<Advisor> advisor_;
  std::unique_ptr<SystemCatalog> system_catalog_;
  std::unique_ptr<QueryCache> cache_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<TraceCollector> trace_;
  MetricsRegistry metrics_;
};

}  // namespace gisql
