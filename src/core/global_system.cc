#include "core/global_system.h"

#include <set>

#include "common/bytes.h"
#include "net/retry.h"
#include "planner/cost_model.h"
#include "planner/decomposer.h"
#include "planner/logical_planner.h"
#include "planner/optimizer.h"
#include "sql/parser.h"
#include "wire/protocol.h"
#include "wire/serde.h"

namespace gisql {

namespace {

/// Mediator→source control-plane call under the system retry policy.
Result<std::vector<uint8_t>> RetriedCall(SimNetwork& net,
                                         const RetryPolicy& policy,
                                         const std::string& to,
                                         wire::Opcode op,
                                         const std::vector<uint8_t>& req) {
  RetryResult r = CallWithRetry(net, policy, GlobalSystem::kMediatorHost, to,
                                static_cast<uint8_t>(op), req);
  if (!r.ok()) return r.status;
  return std::move(r.payload);
}

}  // namespace

GlobalSystem::GlobalSystem(PlannerOptions options)
    : options_(options) {
  governor_.Configure(options_);
  network_.set_rpc_observer(&health_);
  // Every RPC outcome the health tracker ingests also feeds the
  // governor's per-source circuit breakers.
  health_.set_outcome_listener(&governor_.breakers());
  system_catalog_ = std::make_unique<SystemCatalog>(
      &health_, &metrics_, &network_.metrics(), &query_log_, &catalog_,
      &governor_);
  catalog_.RegisterSystemTableProvider(system_catalog_.get());
}

ThreadPool* GlobalSystem::WorkerPool() {
  if (!options_.parallel_execution) return nullptr;
  if (pool_ == nullptr) {
    const size_t n = options_.worker_threads > 0
                         ? static_cast<size_t>(options_.worker_threads)
                         : ThreadPool::DefaultThreads();
    pool_ = std::make_unique<ThreadPool>(n);
  }
  return pool_.get();
}

Result<ComponentSource*> GlobalSystem::CreateSource(const std::string& name,
                                                    SourceDialect dialect) {
  auto source = std::make_shared<ComponentSource>(name, dialect);
  source->set_vectorized_execution(options_.vectorized_execution);
  GISQL_RETURN_NOT_OK(network_.RegisterHost(name, source.get()));
  SourceInfo info;
  info.name = name;
  info.dialect = dialect;
  info.capabilities = source->capabilities();
  Status st = catalog_.RegisterSource(std::move(info));
  if (!st.ok()) {
    (void)network_.UnregisterHost(name);
    return st;
  }
  sources_.push_back(source);
  return source.get();
}

Result<ComponentSource*> GlobalSystem::GetSource(
    const std::string& name) const {
  for (const auto& s : sources_) {
    if (s->name() == name) return s.get();
  }
  return Status::NotFound("source '", name, "' does not exist");
}

Status GlobalSystem::ImportTable(const std::string& source_name,
                                 const std::string& exported_name,
                                 const std::string& global_name) {
  // Schema over the wire.
  ByteWriter req;
  req.PutString(exported_name);
  GISQL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> schema_payload,
      RetriedCall(network_, retry_policy_, source_name,
                  wire::Opcode::kGetSchema, req.data()));
  ByteReader schema_reader(schema_payload);
  GISQL_ASSIGN_OR_RETURN(Schema schema, wire::ReadSchema(&schema_reader));

  // Statistics over the wire.
  GISQL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> stats_payload,
      RetriedCall(network_, retry_policy_, source_name,
                  wire::Opcode::kGetStats, req.data()));
  ByteReader stats_reader(stats_payload);
  GISQL_ASSIGN_OR_RETURN(TableStats stats,
                         wire::ReadTableStats(&stats_reader));

  TableMapping mapping;
  mapping.global_name = global_name;
  mapping.source_name = source_name;
  mapping.exported_name = exported_name;
  mapping.schema =
      std::make_shared<Schema>(schema.WithQualifier(global_name));
  mapping.stats = std::move(stats);
  return catalog_.RegisterTable(std::move(mapping));
}

Status GlobalSystem::ImportSource(const std::string& source_name) {
  GISQL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> payload,
      RetriedCall(network_, retry_policy_, source_name,
                  wire::Opcode::kListTables, {}));
  ByteReader reader(payload);
  GISQL_ASSIGN_OR_RETURN(uint64_t n, reader.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    GISQL_ASSIGN_OR_RETURN(std::string table, reader.GetString());
    std::string global_name = table;
    if (catalog_.HasTable(global_name) || catalog_.HasView(global_name)) {
      global_name = source_name + "_" + table;
    }
    GISQL_RETURN_NOT_OK(ImportTable(source_name, table, global_name));
  }
  return Status::OK();
}

Status GlobalSystem::RefreshStats(const std::string& global_name) {
  GISQL_ASSIGN_OR_RETURN(const TableMapping* mapping,
                         catalog_.GetTable(global_name));
  ByteWriter req;
  req.PutString(mapping->exported_name);
  GISQL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> payload,
      RetriedCall(network_, retry_policy_, mapping->source_name,
                  wire::Opcode::kGetStats, req.data()));
  ByteReader reader(payload);
  GISQL_ASSIGN_OR_RETURN(TableStats stats, wire::ReadTableStats(&reader));
  // Fresh statistics signal the source's data may have changed.
  if (cache_) cache_->InvalidateSource(mapping->source_name);
  return catalog_.UpdateStats(global_name, std::move(stats));
}

Status GlobalSystem::CreateUnionView(const std::string& name,
                                     const std::vector<std::string>& members) {
  return catalog_.CreateUnionView(name, members);
}

Status GlobalSystem::CreateReplicatedView(
    const std::string& name, const std::vector<std::string>& members) {
  return catalog_.CreateReplicatedView(name, members);
}

Status GlobalSystem::ExecuteAt(const std::string& source_name,
                               const std::string& sql) {
  ByteWriter req;
  req.PutString(sql);
  // Deliberately single-attempt: admin DDL/DML is not idempotent, so a
  // retry after a lost ack could apply it twice. Operators re-run.
  GISQL_ASSIGN_OR_RETURN(
      RpcResult rpc,
      network_.Call(kMediatorHost, source_name,
                    static_cast<uint8_t>(wire::Opcode::kAdminSql),
                    req.data()));
  (void)rpc;
  // The mediator just changed this source: drop dependent cache entries.
  if (cache_) cache_->InvalidateSource(source_name);
  return Status::OK();
}

Status GlobalSystem::ExecuteAtomically(
    const std::vector<GlobalWrite>& writes) {
  if (writes.empty()) return Status::OK();
  static int64_t txn_counter = 0;
  const std::string txn_id = "gtxn-" + std::to_string(++txn_counter);

  // Every 2PC round retries under the system policy; the participant
  // side dedups (prepare by statement seq, commit by txn id), so
  // at-least-once delivery is safe.
  auto call = [&](const std::string& source, wire::Opcode op,
                  const std::string& sql, uint64_t stmt_seq) -> Status {
    ByteWriter req;
    req.PutString(txn_id);
    if (op == wire::Opcode::kTxnPrepare) {
      req.PutVarint(stmt_seq);
      req.PutString(sql);
    }
    return CallWithRetry(network_, retry_policy_, kMediatorHost, source,
                         static_cast<uint8_t>(op), req.data(), stmt_seq)
        .status;
  };

  // Phase 1: prepare everywhere; on any failure, abort everyone we
  // reached (abort is idempotent, so aborting non-prepared hosts is
  // harmless).
  std::set<std::string> participants;
  for (const auto& w : writes) participants.insert(w.source);
  for (size_t i = 0; i < writes.size(); ++i) {
    const auto& w = writes[i];
    Status st = call(w.source, wire::Opcode::kTxnPrepare, w.sql, i);
    if (!st.ok()) {
      for (const auto& p : participants) {
        (void)call(p, wire::Opcode::kTxnAbort, "", 0);
      }
      return Status(st.code(),
                    "global transaction aborted: prepare failed at '" +
                        w.source + "': " + st.message());
    }
  }

  // Phase 2: commit. Failures here leave the classic in-doubt state.
  std::string in_doubt;
  for (const auto& p : participants) {
    Status st = call(p, wire::Opcode::kTxnCommit, "", 0);
    if (!st.ok()) {
      if (!in_doubt.empty()) in_doubt += ", ";
      in_doubt += "'" + p + "' (" + st.message() + ")";
    }
    if (cache_) cache_->InvalidateSource(p);
  }
  if (!in_doubt.empty()) {
    return Status::Internal(
        "global transaction ", txn_id,
        " is in doubt: commit could not be delivered to ", in_doubt,
        "; staged rows remain there until the source is reachable and "
        "the commit is re-sent or aborted");
  }
  return Status::OK();
}

std::string GlobalSystem::ExportPrometheus() const {
  // Two registries under distinct prefixes (their metric names overlap
  // only accidentally, but Prometheus forbids re-declaring a name), then
  // labeled per-source health series.
  std::string out = metrics_.ExportPrometheus("gisql");
  out += network_.metrics().ExportPrometheus("gisql_net");

  const auto sources = health_.Snapshot();
  auto series = [&out, &sources](const std::string& name, const char* type,
                                 auto value_of) {
    if (sources.empty()) return;
    out += "# TYPE " + name + " " + type + "\n";
    for (const auto& s : sources) {
      out += name + "{source=\"" + s.source + "\"} " + value_of(s) + "\n";
    }
  };
  series("gisql_source_state", "gauge", [](const SourceHealthSnapshot& s) {
    return std::to_string(static_cast<int>(s.state));
  });
  series("gisql_source_requests_total", "counter",
         [](const SourceHealthSnapshot& s) {
           return std::to_string(s.requests);
         });
  series("gisql_source_errors_total", "counter",
         [](const SourceHealthSnapshot& s) {
           return std::to_string(s.errors);
         });
  series("gisql_source_retries_total", "counter",
         [](const SourceHealthSnapshot& s) {
           return std::to_string(s.retries);
         });
  series("gisql_source_ewma_latency_ms", "gauge",
         [](const SourceHealthSnapshot& s) {
           return std::to_string(s.ewma_ms);
         });
  series("gisql_source_p95_latency_ms", "gauge",
         [](const SourceHealthSnapshot& s) {
           return std::to_string(s.p95_ms);
         });

  // Resource-governor series (admission.* counters/histogram already
  // export via the mediator registry above).
  const GovernorSnapshot g = governor_.Snapshot();
  auto single = [&out](const std::string& name, const char* type,
                       const std::string& value) {
    out += "# TYPE " + name + " " + type + "\n";
    out += name + " " + value + "\n";
  };
  single("gisql_admission_in_flight", "gauge",
         std::to_string(g.admission.in_flight));
  single("gisql_admission_shed_queue_full_total", "counter",
         std::to_string(g.admission.shed_queue_full));
  single("gisql_admission_shed_deadline_total", "counter",
         std::to_string(g.admission.shed_deadline));
  single("gisql_admission_shed_memory_budget_total", "counter",
         std::to_string(g.shed_memory_budget));
  single("gisql_memory_peak_bytes", "gauge",
         std::to_string(g.mem_peak_bytes));
  single("gisql_breakers_open", "gauge", std::to_string(g.breakers_open));
  single("gisql_breaker_transitions_total", "counter",
         std::to_string(g.breaker_transitions));

  const auto breakers = governor_.breakers().Snapshot();
  auto breaker_series = [&out, &breakers](const std::string& name,
                                          const char* type, auto value_of) {
    if (breakers.empty()) return;
    out += "# TYPE " + name + " " + type + "\n";
    for (const auto& b : breakers) {
      out += name + "{source=\"" + b.source + "\"} " + value_of(b) + "\n";
    }
  };
  breaker_series("gisql_source_breaker_state", "gauge",
                 [](const BreakerSnapshot& b) {
                   return std::to_string(static_cast<int>(b.state));
                 });
  breaker_series("gisql_source_breaker_skips_total", "counter",
                 [](const BreakerSnapshot& b) {
                   return std::to_string(b.skips);
                 });
  breaker_series("gisql_source_breaker_probes_total", "counter",
                 [](const BreakerSnapshot& b) {
                   return std::to_string(b.probes);
                 });
  return out;
}

void GlobalSystem::EnableResultCache(size_t max_entries) {
  cache_ = std::make_unique<QueryCache>(max_entries);
  cache_->set_metrics(&metrics_);
}

void GlobalSystem::DisableResultCache() { cache_.reset(); }

void GlobalSystem::EnableTracing() {
  if (trace_ == nullptr) trace_ = std::make_unique<TraceCollector>();
}

void GlobalSystem::DisableTracing() { trace_.reset(); }

ExecContext GlobalSystem::MakeExecContext(MemoryGrant* grant) {
  ExecContext ctx;
  ctx.net = &network_;
  ctx.mediator_host = kMediatorHost;
  ctx.system_tables = system_catalog_.get();
  ctx.mediator_cpu_us_per_row = options_.mediator_cpu_us_per_row;
  ctx.semijoin_max_keys = options_.semijoin_max_keys;
  ctx.parallel_execution = options_.parallel_execution;
  ctx.pool = WorkerPool();
  ctx.columnar_wire = options_.columnar_wire;
  ctx.vectorized_execution = options_.vectorized_execution;
  ctx.retry_policy = retry_policy_;
  ctx.memory = grant;
  ctx.health = &health_;
  ctx.breakers = &governor_.breakers();
  ctx.health_aware_routing = options_.health_aware_routing;
  return ctx;
}

Result<PlanNodePtr> GlobalSystem::PlanQuery(const sql::SelectStmt& stmt,
                                            TraceCollector* trace,
                                            uint64_t parent) const {
  // Planning is mediator CPU only — free on the simulated clock — so
  // its stages record as zero-width markers at t=0.
  auto mark = [&](const char* stage) {
    if (trace != nullptr) trace->Begin(stage, "lifecycle", parent, 0.0);
  };

  mark("bind+plan");
  LogicalPlanner planner(catalog_);
  GISQL_ASSIGN_OR_RETURN(PlanNodePtr plan, planner.Plan(stmt));

  CostParams params;
  params.link = network_.default_link();
  params.mediator_cpu_us_per_row = options_.mediator_cpu_us_per_row;
  CostModel cost(catalog_, params);

  mark("optimize");
  Optimizer optimizer(catalog_, options_, &cost);
  GISQL_ASSIGN_OR_RETURN(plan, optimizer.Optimize(std::move(plan)));

  mark("decompose");
  Decomposer decomposer(catalog_, options_, &cost);
  return decomposer.Decompose(std::move(plan));
}

Result<std::string> GlobalSystem::Explain(const std::string& sql) {
  GISQL_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (stmt.select == nullptr) {
    return Status::InvalidArgument("EXPLAIN requires a SELECT statement");
  }
  GISQL_ASSIGN_OR_RETURN(PlanNodePtr plan, PlanQuery(*stmt.select));
  return plan->Explain();
}

namespace {

/// Snapshot of the network counters a query can move; two snapshots
/// bracket an execution and their difference is the query's traffic.
struct NetCounters {
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t messages = 0;
  int64_t retries = 0;

  static NetCounters Read(const SimNetwork& net) {
    NetCounters c;
    c.bytes_sent = net.metrics().Get("net.bytes_sent");
    c.bytes_received = net.metrics().Get("net.bytes_received");
    c.messages = net.metrics().Get("net.messages");
    c.retries = net.metrics().Get("net.retries");
    return c;
  }
};

void FillNetDeltas(QueryMetrics& m, const NetCounters& before,
                   const NetCounters& after) {
  m.bytes_sent = after.bytes_sent - before.bytes_sent;
  m.bytes_received = after.bytes_received - before.bytes_received;
  m.messages = after.messages - before.messages;
  m.retries = after.retries - before.retries;
}

}  // namespace

Result<QueryResult> GlobalSystem::Query(const std::string& sql) {
  return Submit(sql, SubmitOptions());
}

Result<QueryResult> GlobalSystem::Submit(const std::string& sql,
                                         const SubmitOptions& submit) {
  AdmissionDecision decision;
  const bool governed = options_.admission_control;
  if (governed) {
    AdmissionRequest req;
    // Closed-loop callers (plain Query) arrive at the completion time
    // of the previous query, so a slot is always free and the governor
    // is invisible; open-loop callers pass explicit arrivals.
    req.arrival_ms =
        submit.arrival_ms >= 0 ? submit.arrival_ms : governor_.now_ms();
    req.priority = submit.priority;
    req.max_wait_ms = submit.max_wait_ms;
    decision = governor_.admission().Admit(req);
    if (!decision.admitted) {
      metrics_.Add("admission.shed", 1);
      // Shed queries still land in gis.queries (with their reason and
      // zero traffic) so operators can see *what* was refused.
      QueryLogEntry entry;
      entry.sql = sql;
      entry.shed_reason = ShedReasonName(decision.reason);
      query_log_.Append(std::move(entry));
      if (decision.reason == ShedReason::kDeadline) {
        return Status::Overloaded(
            "query shed: the admission queue would hold it for ",
            decision.wait_ms, " ms, past its ", "deadline (",
            decision.queued_ahead, " queries ahead)");
      }
      return Status::Overloaded(
          "query shed: the admission wait queue is full (",
          decision.queued_ahead, " queued, limit ",
          governor_.admission().config().queue_limit, ")");
    }
    metrics_.Add("admission.admitted", 1);
    metrics_.Observe("admission.wait_ms", decision.wait_ms);
  }

  MemoryGrant grant = governor_.memory().NewGrant();
  Result<QueryResult> result = RunStatement(sql, &grant, decision.wait_ms);

  if (governed) {
    const double elapsed = result.ok() ? result->metrics.elapsed_ms : 0.0;
    governor_.admission().Release(decision.ticket,
                                  decision.start_ms + elapsed);
    governor_.AdvanceTo(decision.start_ms + elapsed);
  }
  if (result.ok()) {
    result->metrics.admission_wait_ms = decision.wait_ms;
  } else if (result.status().IsOverloaded()) {
    // A memory-budget abort is a shed too: one count per query (charge
    // denials within a query are schedule-dependent; the query-level
    // outcome is not).
    governor_.RecordMemoryShed();
    metrics_.Add("admission.shed", 1);
    QueryLogEntry entry;
    entry.sql = sql;
    entry.admission_wait_ms = decision.wait_ms;
    entry.shed_reason = ShedReasonName(ShedReason::kMemoryBudget);
    query_log_.Append(std::move(entry));
  }
  return result;
}

Result<QueryResult> GlobalSystem::RunStatement(const std::string& sql,
                                               MemoryGrant* grant,
                                               double admission_wait_ms) {
  // Each query owns the collector for its duration; the spans stay
  // readable until the next query (or DisableTracing) replaces them.
  TraceCollector* tr = trace_.get();
  if (tr != nullptr) tr->Clear();
  const uint64_t root =
      tr != nullptr ? tr->Begin("query", "lifecycle", 0, 0.0) : 0;
  if (tr != nullptr) {
    tr->SetNote(root, sql);
    tr->Begin("parse", "lifecycle", root, 0.0);
  }

  GISQL_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  switch (stmt.kind) {
    case sql::Statement::Kind::kExplain: {
      GISQL_ASSIGN_OR_RETURN(PlanNodePtr plan,
                             PlanQuery(*stmt.select, tr, root));
      auto schema = std::make_shared<Schema>(
          std::vector<Field>{{"plan", TypeId::kString}});
      QueryResult result;
      result.batch = RowBatch(schema);
      result.batch.Append({Value::String(plan->Explain())});
      result.metrics.plan_text = plan->Explain();
      return result;
    }
    case sql::Statement::Kind::kExplainAnalyze: {
      GISQL_ASSIGN_OR_RETURN(PlanNodePtr plan,
                             PlanQuery(*stmt.select, tr, root));
      // Bracket execution with the same counter snapshot the SELECT
      // path uses, so ANALYZE reports real traffic alongside time.
      const NetCounters before = NetCounters::Read(network_);
      ExecContext ctx = MakeExecContext(grant);
      ctx.record_actuals = true;
      uint64_t exec_span = 0;
      if (tr != nullptr) {
        exec_span = tr->Begin("execute", "lifecycle", root, 0.0);
        ctx.trace = tr;
        ctx.trace_parent = exec_span;
      }
      Executor executor(ctx);
      GISQL_ASSIGN_OR_RETURN(ExecOutput out, executor.Execute(plan));
      auto schema = std::make_shared<Schema>(
          std::vector<Field>{{"plan", TypeId::kString}});
      QueryResult result;
      result.batch = RowBatch(schema);
      result.metrics.elapsed_ms = out.elapsed_ms;
      FillNetDeltas(result.metrics, before, NetCounters::Read(network_));
      std::string text = plan->Explain();
      text += "Total: " + std::to_string(out.batch.num_rows()) +
              " row(s) in " + std::to_string(out.elapsed_ms) +
              " simulated ms\n";
      text += "Network: " + std::to_string(result.metrics.bytes_sent) +
              " bytes sent, " + std::to_string(result.metrics.bytes_received) +
              " bytes received, " + std::to_string(result.metrics.messages) +
              " message(s), " + std::to_string(result.metrics.retries) +
              " retrie(s)\n";
      result.batch.Append({Value::String(text)});
      result.metrics.plan_text = text;
      metrics_.Add("query.count", 1);
      metrics_.Observe("query.ms", out.elapsed_ms);
      metrics_.Observe("query.bytes",
                       static_cast<double>(result.metrics.bytes_received));
      if (tr != nullptr) {
        tr->SetRows(root, static_cast<int64_t>(out.batch.num_rows()));
        tr->End(exec_span, out.elapsed_ms);
        tr->End(root, out.elapsed_ms);
      }
      QueryLogEntry entry;
      entry.sql = sql;
      entry.elapsed_ms = out.elapsed_ms;
      entry.bytes_sent = result.metrics.bytes_sent;
      entry.bytes_received = result.metrics.bytes_received;
      entry.messages = result.metrics.messages;
      entry.retries = result.metrics.retries;
      entry.rows = static_cast<int64_t>(out.batch.num_rows());
      entry.trace_root = static_cast<int64_t>(root);
      entry.admission_wait_ms = admission_wait_ms;
      query_log_.Append(std::move(entry));
      return result;
    }
    case sql::Statement::Kind::kSelect:
      break;
    default:
      return Status::InvalidArgument(
          "the mediator accepts SELECT/EXPLAIN; DDL and DML run at the "
          "component sources");
  }

  GISQL_ASSIGN_OR_RETURN(PlanNodePtr plan, PlanQuery(*stmt.select, tr, root));

  // gis.* snapshots change between executions by design, so any plan
  // touching one must bypass the result cache entirely.
  bool has_system_scan = false;
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kVirtualScan) has_system_scan = true;
  });
  const bool use_cache = cache_ != nullptr && !has_system_scan;

  // Result cache: the decomposed plan's canonical text identifies the
  // computation (fragments, strategies, planner options all shape it).
  const std::string cache_key = use_cache ? plan->Explain() : std::string();
  if (use_cache) {
    const uint64_t lookup =
        tr != nullptr ? tr->Begin("cache.lookup", "lifecycle", root, 0.0) : 0;
    auto cached = cache_->Lookup(cache_key);
    if (tr != nullptr) tr->SetNote(lookup, cached ? "hit" : "miss");
    if (cached) {
      QueryResult result;
      result.batch = std::move(cached->batch);
      // Served from mediator memory: zero simulated latency and —
      // explicitly, not by default-initialization — zero traffic.
      result.metrics.elapsed_ms = 0.0;
      result.metrics.bytes_sent = 0;
      result.metrics.bytes_received = 0;
      result.metrics.messages = 0;
      result.metrics.retries = 0;
      result.metrics.cache_hit = true;
      result.metrics.plan_text = cache_key + "(cache hit)\n";
      metrics_.Add("query.count", 1);
      metrics_.Observe("query.ms", 0.0);
      metrics_.Observe("query.bytes", 0.0);
      if (tr != nullptr) {
        tr->SetRows(root, static_cast<int64_t>(result.batch.num_rows()));
        tr->End(root, 0.0);
      }
      QueryLogEntry entry;
      entry.sql = sql;
      entry.cache_hit = true;
      entry.rows = static_cast<int64_t>(result.batch.num_rows());
      entry.trace_root = static_cast<int64_t>(root);
      entry.admission_wait_ms = admission_wait_ms;
      query_log_.Append(std::move(entry));
      return result;
    }
  }

  const NetCounters before = NetCounters::Read(network_);

  ExecContext ctx = MakeExecContext(grant);
  uint64_t exec_span = 0;
  if (tr != nullptr) {
    exec_span = tr->Begin("execute", "lifecycle", root, 0.0);
    ctx.trace = tr;
    ctx.trace_parent = exec_span;
  }
  Executor executor(ctx);
  GISQL_ASSIGN_OR_RETURN(ExecOutput out, executor.Execute(plan));

  QueryResult result;
  result.batch = std::move(out.batch);
  result.metrics.elapsed_ms = out.elapsed_ms;
  FillNetDeltas(result.metrics, before, NetCounters::Read(network_));
  result.metrics.plan_text = plan->Explain();
  metrics_.Add("query.count", 1);
  metrics_.Observe("query.ms", out.elapsed_ms);
  metrics_.Observe("query.bytes",
                   static_cast<double>(result.metrics.bytes_received));

  if (tr != nullptr) {
    tr->SetRows(root, static_cast<int64_t>(result.batch.num_rows()));
    tr->End(exec_span, out.elapsed_ms);
  }

  if (use_cache) {
    if (tr != nullptr) {
      tr->Begin("cache.insert", "lifecycle", root, out.elapsed_ms);
    }
    std::set<std::string> sources;
    VisitPlan(plan, [&](const PlanNodePtr& node) {
      if (node->kind == PlanKind::kRemoteFragment) {
        sources.insert(node->fragment_source);
        for (const auto& alt : node->scan_alternates) {
          sources.insert(alt.source);
        }
      }
    });
    cache_->Insert(cache_key, result.batch, result.metrics.elapsed_ms,
                   std::move(sources));
  }
  if (tr != nullptr) tr->End(root, out.elapsed_ms);

  // The entry is appended only after execution, so a gis.queries scan
  // never observes the query currently running it (deterministic
  // snapshots regardless of when mid-plan operators fire).
  QueryLogEntry entry;
  entry.sql = sql;
  entry.elapsed_ms = result.metrics.elapsed_ms;
  entry.bytes_sent = result.metrics.bytes_sent;
  entry.bytes_received = result.metrics.bytes_received;
  entry.messages = result.metrics.messages;
  entry.retries = result.metrics.retries;
  entry.rows = static_cast<int64_t>(result.batch.num_rows());
  entry.trace_root = static_cast<int64_t>(root);
  entry.admission_wait_ms = admission_wait_ms;
  query_log_.Append(std::move(entry));
  return result;
}

}  // namespace gisql
