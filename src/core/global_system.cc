#include "core/global_system.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/bytes.h"
#include "exec/streaming.h"
#include "net/retry.h"
#include "obs/json.h"
#include "planner/cost_model.h"
#include "planner/decomposer.h"
#include "planner/logical_planner.h"
#include "planner/optimizer.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"
#include "wire/protocol.h"
#include "wire/serde.h"

namespace gisql {

namespace {

/// Mediator→source control-plane call under the system retry policy.
Result<std::vector<uint8_t>> RetriedCall(SimNetwork& net,
                                         const RetryPolicy& policy,
                                         const std::string& to,
                                         wire::Opcode op,
                                         const std::vector<uint8_t>& req) {
  RetryResult r = CallWithRetry(net, policy, GlobalSystem::kMediatorHost, to,
                                static_cast<uint8_t>(op), req);
  if (!r.ok()) return r.status;
  return std::move(r.payload);
}

}  // namespace

GlobalSystem::GlobalSystem(PlannerOptions options)
    : options_(options) {
  governor_.Configure(options_);
  network_.set_rpc_observer(&health_);
  // Every RPC outcome the health tracker ingests also feeds the
  // governor's per-source circuit breakers.
  health_.set_outcome_listener(&governor_.breakers());
  tenants_.set_max_tracked(options_.tenant_max_tracked);
  slo_.Configure(options_.slo_fast_window_ms, options_.slo_slow_window_ms,
                 options_.slo_burn_alert);
  flight_.Configure(
      options_.flight_ring > 0 ? static_cast<size_t>(options_.flight_ring) : 0,
      options_.flight_max_incidents > 0
          ? static_cast<size_t>(options_.flight_max_incidents)
          : 0,
      options_.flight_cooldown_ms, options_.flight_shed_spike,
      options_.flight_shed_window_ms);
  flight_.set_enabled(options_.flight_recorder);
  flight_.SetSystemSnapshotFn(
      [this](double now_ms) { return SystemStateJson(now_ms); });
  ConfigureAdvisor();
  system_catalog_ = std::make_unique<SystemCatalog>(
      &health_, &metrics_, &network_.metrics(), &query_log_, &catalog_,
      &governor_, &cursors_, &sources_, &txns_, &tenants_, &slo_, &flight_,
      advisor_.get());
  catalog_.RegisterSystemTableProvider(system_catalog_.get());
}

ThreadPool* GlobalSystem::WorkerPool() {
  if (!options_.parallel_execution) return nullptr;
  if (pool_ == nullptr) {
    const size_t n = options_.worker_threads > 0
                         ? static_cast<size_t>(options_.worker_threads)
                         : ThreadPool::DefaultThreads();
    pool_ = std::make_unique<ThreadPool>(n);
  }
  return pool_.get();
}

Result<ComponentSource*> GlobalSystem::CreateSource(const std::string& name,
                                                    SourceDialect dialect) {
  // Every source's buffer pool is charged against the mediator's global
  // memory budget, so pool growth and query grants share one regime.
  auto source = std::make_shared<ComponentSource>(
      name, dialect, /*cpu_us_per_row=*/0.05, StorageConfig::FromEnv(),
      &governor_.memory());
  source->set_vectorized_execution(options_.vectorized_execution);
  GISQL_RETURN_NOT_OK(network_.RegisterHost(name, source.get()));
  SourceInfo info;
  info.name = name;
  info.dialect = dialect;
  info.capabilities = source->capabilities();
  Status st = catalog_.RegisterSource(std::move(info));
  if (!st.ok()) {
    (void)network_.UnregisterHost(name);
    return st;
  }
  sources_.push_back(source);
  return source.get();
}

Result<ComponentSource*> GlobalSystem::GetSource(
    const std::string& name) const {
  for (const auto& s : sources_) {
    if (s->name() == name) return s.get();
  }
  return Status::NotFound("source '", name, "' does not exist");
}

Status GlobalSystem::ImportTable(const std::string& source_name,
                                 const std::string& exported_name,
                                 const std::string& global_name) {
  // Schema over the wire.
  ByteWriter req;
  req.PutString(exported_name);
  GISQL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> schema_payload,
      RetriedCall(network_, retry_policy_, source_name,
                  wire::Opcode::kGetSchema, req.data()));
  ByteReader schema_reader(schema_payload);
  GISQL_ASSIGN_OR_RETURN(Schema schema, wire::ReadSchema(&schema_reader));

  // Statistics over the wire.
  GISQL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> stats_payload,
      RetriedCall(network_, retry_policy_, source_name,
                  wire::Opcode::kGetStats, req.data()));
  ByteReader stats_reader(stats_payload);
  GISQL_ASSIGN_OR_RETURN(TableStats stats,
                         wire::ReadTableStats(&stats_reader));

  TableMapping mapping;
  mapping.global_name = global_name;
  mapping.source_name = source_name;
  mapping.exported_name = exported_name;
  mapping.schema =
      std::make_shared<Schema>(schema.WithQualifier(global_name));
  mapping.stats = std::move(stats);
  return catalog_.RegisterTable(std::move(mapping));
}

Status GlobalSystem::ImportSource(const std::string& source_name) {
  GISQL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> payload,
      RetriedCall(network_, retry_policy_, source_name,
                  wire::Opcode::kListTables, {}));
  ByteReader reader(payload);
  GISQL_ASSIGN_OR_RETURN(uint64_t n, reader.GetVarint());
  for (uint64_t i = 0; i < n; ++i) {
    GISQL_ASSIGN_OR_RETURN(std::string table, reader.GetString());
    std::string global_name = table;
    if (catalog_.HasTable(global_name) || catalog_.HasView(global_name)) {
      global_name = source_name + "_" + table;
    }
    GISQL_RETURN_NOT_OK(ImportTable(source_name, table, global_name));
  }
  return Status::OK();
}

Status GlobalSystem::RefreshStats(const std::string& global_name) {
  GISQL_ASSIGN_OR_RETURN(const TableMapping* mapping,
                         catalog_.GetTable(global_name));
  ByteWriter req;
  req.PutString(mapping->exported_name);
  GISQL_ASSIGN_OR_RETURN(
      std::vector<uint8_t> payload,
      RetriedCall(network_, retry_policy_, mapping->source_name,
                  wire::Opcode::kGetStats, req.data()));
  ByteReader reader(payload);
  GISQL_ASSIGN_OR_RETURN(TableStats stats, wire::ReadTableStats(&reader));
  // Fresh statistics signal the source's data may have changed.
  if (cache_) cache_->InvalidateSource(mapping->source_name);
  return catalog_.UpdateStats(global_name, std::move(stats));
}

Status GlobalSystem::CreateUnionView(const std::string& name,
                                     const std::vector<std::string>& members) {
  return catalog_.CreateUnionView(name, members);
}

Status GlobalSystem::CreateReplicatedView(
    const std::string& name, const std::vector<std::string>& members) {
  return catalog_.CreateReplicatedView(name, members);
}

Status GlobalSystem::ExecuteAt(const std::string& source_name,
                               const std::string& sql) {
  ByteWriter req;
  req.PutString(sql);
  // Deliberately single-attempt: admin DDL/DML is not idempotent, so a
  // retry after a lost ack could apply it twice. Operators re-run.
  GISQL_ASSIGN_OR_RETURN(
      RpcResult rpc,
      network_.Call(kMediatorHost, source_name,
                    static_cast<uint8_t>(wire::Opcode::kAdminSql),
                    req.data()));
  (void)rpc;
  // The mediator just changed this source: drop dependent cache entries.
  if (cache_) cache_->InvalidateSource(source_name);
  return Status::OK();
}

Status GlobalSystem::ExecuteAtomically(
    const std::vector<GlobalWrite>& writes) {
  if (writes.empty()) return Status::OK();
  // One-shot 2PC rides the same transaction machinery as the
  // interactive API: a TransactionManager id (locks at the sources,
  // a gis.transactions row) and a commit timestamp stamping the rows.
  TxnInfo& t = txns_.Begin(governor_.now_ms());
  const uint64_t numeric_id = t.id;
  const uint64_t snapshot_ts = t.snapshot_ts;
  const std::string txn_id = "gtxn-" + std::to_string(numeric_id);

  // Every 2PC round retries under the system policy; the participant
  // side dedups (prepare by statement seq, commit by txn id), so
  // at-least-once delivery is safe.
  auto call = [&](const std::string& source, wire::Opcode op,
                  const std::string& sql, uint64_t stmt_seq,
                  uint64_t commit_ts, uint64_t watermark,
                  std::vector<uint8_t>* payload) -> Status {
    ByteWriter req;
    req.PutString(txn_id);
    if (op == wire::Opcode::kTxnPrepare) {
      req.PutVarint(stmt_seq);
      req.PutString(sql);
      req.PutVarint(numeric_id);
      req.PutVarint(snapshot_ts);
    } else if (op == wire::Opcode::kTxnCommit) {
      req.PutVarint(commit_ts);
      req.PutVarint(watermark);
    }
    RetryResult r =
        CallWithRetry(network_, retry_policy_, kMediatorHost, source,
                      static_cast<uint8_t>(op), req.data(), stmt_seq);
    if (payload != nullptr && r.ok()) *payload = std::move(r.payload);
    return r.status;
  };

  // Phase 1: prepare everywhere; on any failure, abort everyone we
  // reached (abort is idempotent, so aborting non-prepared hosts is
  // harmless).
  std::set<std::string> participants;
  for (const auto& w : writes) participants.insert(w.source);
  for (size_t i = 0; i < writes.size(); ++i) {
    const auto& w = writes[i];
    std::vector<uint8_t> payload;
    Status st = call(w.source, wire::Opcode::kTxnPrepare, w.sql, i, 0, 0,
                     &payload);
    if (st.ok() && !payload.empty()) {
      // Lock verdict in the response trailer: a one-shot transaction
      // has nothing to wait for, so a conflict aborts it outright.
      ByteReader verdict(payload);
      auto flag = verdict.GetU8();
      if (flag.ok() && *flag != 0) {
        st = Status::Overloaded("row or table locks are held by a "
                                "concurrent transaction");
      }
    }
    if (!st.ok()) {
      for (const auto& p : participants) {
        (void)call(p, wire::Opcode::kTxnAbort, "", 0, 0, 0, nullptr);
      }
      txns_.MarkAborted(numeric_id,
                        "prepare failed at '" + w.source + "'",
                        governor_.now_ms());
      return Status(st.code(),
                    "global transaction aborted: prepare failed at '" +
                        w.source + "': " + st.message());
    }
    t.statements += 1;
    t.participants.insert(w.source);
  }

  // Phase 2: commit. Failures here leave the classic in-doubt state.
  // The commit timestamp is allocated (and the transaction retired)
  // before delivery so the watermark reflects the remaining readers.
  const uint64_t commit_ts = txns_.AllocateCommitTs();
  txns_.MarkCommitted(numeric_id, commit_ts, governor_.now_ms());
  const uint64_t watermark = options_.txn_gc ? txns_.Watermark() : 0;
  std::string in_doubt;
  for (const auto& p : participants) {
    Status st = call(p, wire::Opcode::kTxnCommit, "", 0, commit_ts,
                     watermark, nullptr);
    if (!st.ok()) {
      if (!in_doubt.empty()) in_doubt += ", ";
      in_doubt += "'" + p + "' (" + st.message() + ")";
    }
    if (cache_) cache_->InvalidateSource(p);
  }
  if (!in_doubt.empty()) {
    return Status::Internal(
        "global transaction ", txn_id,
        " is in doubt: commit could not be delivered to ", in_doubt,
        "; staged rows remain there until the source is reachable and "
        "the commit is re-sent or aborted");
  }
  return Status::OK();
}

Result<uint64_t> GlobalSystem::BeginTransaction() {
  if (txns_.active_count() >=
      static_cast<size_t>(options_.txn_max_active)) {
    return Status::Overloaded("transaction shed: ", txns_.active_count(),
                              " transactions already active (limit ",
                              options_.txn_max_active, ")");
  }
  return txns_.Begin(governor_.now_ms()).id;
}

Result<QueryResult> GlobalSystem::QueryInTxn(uint64_t txn_id,
                                             const std::string& sql) {
  GISQL_ASSIGN_OR_RETURN(TxnInfo * t, txns_.GetActive(txn_id));
  const uint64_t snapshot_ts = t->snapshot_ts;
  MemoryGrant grant = governor_.memory().NewGrant();
  // Transactional statements are interactive-session work: default
  // tenant, closed-loop arrival at the current virtual clock.
  QueryContext qctx;
  qctx.arrival_ms = governor_.now_ms();
  qctx.start_ms = qctx.arrival_ms;
  Result<QueryResult> result =
      RunStatement(sql, &grant, qctx, 0.0, snapshot_ts, txn_id);
  if (result.ok()) {
    governor_.AdvanceTo(governor_.now_ms() + result->metrics.elapsed_ms);
    t->statements += 1;
  }
  return result;
}

Status GlobalSystem::TxnWrite(uint64_t txn_id, const std::string& source,
                              const std::string& sql) {
  GISQL_ASSIGN_OR_RETURN(TxnInfo * t, txns_.GetActive(txn_id));
  const std::string wire_id = "gtxn-" + std::to_string(t->id);

  for (int attempt = 0;; ++attempt) {
    ByteWriter req;
    req.PutString(wire_id);
    req.PutVarint(static_cast<uint64_t>(t->statements));
    req.PutString(sql);
    req.PutVarint(t->id);
    req.PutVarint(t->snapshot_ts);
    RetryResult r = CallWithRetry(
        network_, retry_policy_, kMediatorHost, source,
        static_cast<uint8_t>(wire::Opcode::kTxnPrepare), req.data(),
        static_cast<uint64_t>(t->statements));
    if (!r.ok()) {
      // A transport failure leaves the transaction active (the caller
      // may retry the statement); an application error — bad SQL, a
      // write-write conflict under first-committer-wins — aborts it,
      // releasing locks everywhere.
      if (!IsRetryableTransport(r.status)) {
        AbortAtParticipants(*t, r.status.message());
      }
      return r.status;
    }

    ByteReader verdict(r.payload);
    GISQL_ASSIGN_OR_RETURN(uint8_t conflicted, verdict.GetU8());
    if (conflicted == 0) {
      txns_.ClearWaits(t->id);
      t->statements += 1;
      t->participants.insert(source);
      return Status::OK();
    }

    // Lock conflict: the source reported the holders instead of
    // blocking. Record the waits-for edges and look for a cycle.
    GISQL_ASSIGN_OR_RETURN(uint64_t n, verdict.GetVarint());
    std::vector<uint64_t> holders;
    holders.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      GISQL_ASSIGN_OR_RETURN(uint64_t h, verdict.GetVarint());
      holders.push_back(h);
    }
    t->lock_waits += 1;
    txns_.CountLockWait();
    txns_.OnConflict(t->id, holders);
    if (trace_ != nullptr) {
      // Zero-width marker on the simulated clock: who waited on whom.
      const uint64_t span =
          trace_->Begin("lock.wait", "txn", 0, governor_.now_ms());
      std::string note = "txn " + std::to_string(t->id) + " blocked at '" +
                         source + "' by";
      for (uint64_t h : holders) note += " " + std::to_string(h);
      trace_->SetNote(span, note);
      trace_->End(span, governor_.now_ms());
    }

    const uint64_t victim = txns_.DetectCycleVictim(t->id);
    if (victim == 0) {
      // No deadlock — the statement would simply block. The simulation
      // is single-threaded, so waiting can never be satisfied inline;
      // the caller retries after the holder commits or aborts. The
      // waits-for edges stay recorded: this transaction still holds
      // its locks and still wants these, so a future conflict report
      // from the other side must be able to close the cycle.
      std::string who;
      for (uint64_t h : holders) {
        if (!who.empty()) who += ", ";
        who += std::to_string(h);
      }
      return Status::Overloaded("transaction ", t->id,
                                " would block at '", source,
                                "' on locks held by transaction(s) ", who);
    }
    if (victim == t->id) {
      AbortAtParticipants(*t, "deadlock victim");
      return Status::ExecutionError(
          "deadlock: transaction ", txn_id,
          " chosen as victim (youngest on the cycle) and aborted");
    }
    // Another transaction on the cycle is younger: abort it there and
    // retry this statement against the freed locks.
    auto victim_or = txns_.GetActive(victim);
    if (victim_or.ok()) {
      AbortAtParticipants(**victim_or, "deadlock victim");
    }
    txns_.ClearWaits(t->id);
    if (attempt + 1 >= options_.txn_max_prepare_retries) {
      return Status::Overloaded("transaction ", t->id, " still blocked at '",
                                source, "' after ", attempt + 1,
                                " prepare attempts");
    }
  }
}

Status GlobalSystem::CommitTransaction(uint64_t txn_id) {
  GISQL_ASSIGN_OR_RETURN(TxnInfo * t, txns_.GetActive(txn_id));
  const std::string wire_id = "gtxn-" + std::to_string(t->id);
  const std::set<std::string> participants = t->participants;
  // Retire the transaction before computing the watermark so its own
  // snapshot no longer holds GC back; delivery failures below cannot
  // un-commit it (presumed commit — the classic in-doubt state).
  const uint64_t commit_ts = txns_.AllocateCommitTs();
  txns_.MarkCommitted(txn_id, commit_ts, governor_.now_ms());
  const uint64_t watermark = options_.txn_gc ? txns_.Watermark() : 0;

  std::string in_doubt;
  for (const auto& p : participants) {
    ByteWriter req;
    req.PutString(wire_id);
    req.PutVarint(commit_ts);
    req.PutVarint(watermark);
    Status st =
        CallWithRetry(network_, retry_policy_, kMediatorHost, p,
                      static_cast<uint8_t>(wire::Opcode::kTxnCommit),
                      req.data())
            .status;
    if (!st.ok()) {
      if (!in_doubt.empty()) in_doubt += ", ";
      in_doubt += "'" + p + "' (" + st.message() + ")";
    }
    if (cache_) cache_->InvalidateSource(p);
  }
  if (!in_doubt.empty()) {
    return Status::Internal(
        "global transaction ", wire_id,
        " is in doubt: commit could not be delivered to ", in_doubt,
        "; staged rows remain there until the source is reachable and "
        "the commit is re-sent or aborted");
  }
  return Status::OK();
}

Status GlobalSystem::AbortTransaction(uint64_t txn_id,
                                      const std::string& reason) {
  GISQL_ASSIGN_OR_RETURN(TxnInfo * t, txns_.GetActive(txn_id));
  AbortAtParticipants(*t, reason.empty() ? "aborted by client" : reason);
  return Status::OK();
}

void GlobalSystem::AbortAtParticipants(TxnInfo& t,
                                       const std::string& reason) {
  const std::string wire_id = "gtxn-" + std::to_string(t.id);
  for (const auto& p : t.participants) {
    ByteWriter req;
    req.PutString(wire_id);
    // Best effort: abort is idempotent and a source that missed it
    // still drops the staged writes when an operator resolves it.
    (void)CallWithRetry(network_, retry_policy_, kMediatorHost, p,
                        static_cast<uint8_t>(wire::Opcode::kTxnAbort),
                        req.data());
  }
  txns_.MarkAborted(t.id, reason, governor_.now_ms());
}

std::string GlobalSystem::ExportPrometheus() const {
  // Two registries under distinct prefixes (their metric names overlap
  // only accidentally, but Prometheus forbids re-declaring a name), then
  // labeled per-source health series.
  std::string out = metrics_.ExportPrometheus("gisql");
  out += network_.metrics().ExportPrometheus("gisql_net");

  const auto sources = health_.Snapshot();
  auto series = [&out, &sources](const std::string& name, const char* type,
                                 auto value_of) {
    if (sources.empty()) return;
    out += "# TYPE " + name + " " + type + "\n";
    for (const auto& s : sources) {
      out += name + "{source=\"" + s.source + "\"} " + value_of(s) + "\n";
    }
  };
  series("gisql_source_state", "gauge", [](const SourceHealthSnapshot& s) {
    return std::to_string(static_cast<int>(s.state));
  });
  series("gisql_source_requests_total", "counter",
         [](const SourceHealthSnapshot& s) {
           return std::to_string(s.requests);
         });
  series("gisql_source_errors_total", "counter",
         [](const SourceHealthSnapshot& s) {
           return std::to_string(s.errors);
         });
  series("gisql_source_retries_total", "counter",
         [](const SourceHealthSnapshot& s) {
           return std::to_string(s.retries);
         });
  series("gisql_source_ewma_latency_ms", "gauge",
         [](const SourceHealthSnapshot& s) {
           return std::to_string(s.ewma_ms);
         });
  series("gisql_source_p95_latency_ms", "gauge",
         [](const SourceHealthSnapshot& s) {
           return std::to_string(s.p95_ms);
         });

  // Resource-governor series (admission.* counters/histogram already
  // export via the mediator registry above).
  const GovernorSnapshot g = governor_.Snapshot();
  auto single = [&out](const std::string& name, const char* type,
                       const std::string& value) {
    out += "# TYPE " + name + " " + type + "\n";
    out += name + " " + value + "\n";
  };
  single("gisql_admission_in_flight", "gauge",
         std::to_string(g.admission.in_flight));
  single("gisql_admission_shed_queue_full_total", "counter",
         std::to_string(g.admission.shed_queue_full));
  single("gisql_admission_shed_deadline_total", "counter",
         std::to_string(g.admission.shed_deadline));
  single("gisql_admission_shed_memory_budget_total", "counter",
         std::to_string(g.shed_memory_budget));
  single("gisql_memory_peak_bytes", "gauge",
         std::to_string(g.mem_peak_bytes));
  single("gisql_breakers_open", "gauge", std::to_string(g.breakers_open));
  single("gisql_breaker_transitions_total", "counter",
         std::to_string(g.breaker_transitions));

  // Self-driving advisor series.
  const AdvisorCounters ac = advisor_->counters();
  single("gisql_advisor_ticks_total", "counter", std::to_string(ac.ticks));
  single("gisql_advisor_decisions_total", "counter",
         std::to_string(ac.decisions));
  single("gisql_advisor_materializations_total", "counter",
         std::to_string(ac.materializations));
  single("gisql_advisor_evictions_total", "counter",
         std::to_string(ac.evictions));
  single("gisql_advisor_placements_total", "counter",
         std::to_string(ac.placements));
  single("gisql_advisor_tunings_total", "counter",
         std::to_string(ac.tunings));
  single("gisql_advisor_failures_total", "counter",
         std::to_string(ac.failures));

  // Transaction-manager series: active gauge, lifecycle counters, and
  // the MVCC GC watermark position.
  const TxnCounters& tc = txns_.counters();
  single("gisql_txn_active", "gauge", std::to_string(txns_.active_count()));
  single("gisql_txn_started_total", "counter", std::to_string(tc.started));
  single("gisql_txn_committed_total", "counter",
         std::to_string(tc.committed));
  single("gisql_txn_aborted_total", "counter", std::to_string(tc.aborted));
  single("gisql_txn_deadlocks_total", "counter",
         std::to_string(tc.deadlocks));
  single("gisql_txn_lock_waits_total", "counter",
         std::to_string(tc.lock_waits));
  single("gisql_txn_watermark", "gauge", std::to_string(txns_.Watermark()));
  single("gisql_txn_pinned_snapshots", "gauge",
         std::to_string(txns_.pinned_snapshots()));

  const auto breakers = governor_.breakers().Snapshot();
  auto breaker_series = [&out, &breakers](const std::string& name,
                                          const char* type, auto value_of) {
    if (breakers.empty()) return;
    out += "# TYPE " + name + " " + type + "\n";
    for (const auto& b : breakers) {
      out += name + "{source=\"" + b.source + "\"} " + value_of(b) + "\n";
    }
  };
  breaker_series("gisql_source_breaker_state", "gauge",
                 [](const BreakerSnapshot& b) {
                   return std::to_string(static_cast<int>(b.state));
                 });
  breaker_series("gisql_source_breaker_skips_total", "counter",
                 [](const BreakerSnapshot& b) {
                   return std::to_string(b.skips);
                 });
  breaker_series("gisql_source_breaker_probes_total", "counter",
                 [](const BreakerSnapshot& b) {
                   return std::to_string(b.probes);
                 });

  // Per-source buffer-pool series. Sources are snapshotted in name
  // order so the exposition is deterministic.
  std::vector<std::pair<std::string, BufferPoolStats>> pools;
  pools.reserve(sources_.size());
  for (const auto& s : sources_) {
    pools.emplace_back(s->name(), s->engine().pool().Snapshot());
  }
  std::sort(pools.begin(), pools.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  auto pool_series = [&out, &pools](const std::string& name, const char* type,
                                    auto value_of) {
    if (pools.empty()) return;
    out += "# TYPE " + name + " " + type + "\n";
    for (const auto& [source, p] : pools) {
      out += name + "{source=\"" + source + "\"} " + value_of(p) + "\n";
    }
  };
  pool_series("gisql_bufferpool_frames", "gauge",
              [](const BufferPoolStats& p) {
                return std::to_string(p.pool_frames);
              });
  pool_series("gisql_bufferpool_frames_used", "gauge",
              [](const BufferPoolStats& p) {
                return std::to_string(p.frames_used);
              });
  pool_series("gisql_bufferpool_hits_total", "counter",
              [](const BufferPoolStats& p) { return std::to_string(p.hits); });
  pool_series("gisql_bufferpool_misses_total", "counter",
              [](const BufferPoolStats& p) {
                return std::to_string(p.misses);
              });
  pool_series("gisql_bufferpool_evictions_total", "counter",
              [](const BufferPoolStats& p) {
                return std::to_string(p.evictions);
              });
  pool_series("gisql_bufferpool_disk_reads_total", "counter",
              [](const BufferPoolStats& p) {
                return std::to_string(p.disk_reads);
              });
  pool_series("gisql_bufferpool_disk_writes_total", "counter",
              [](const BufferPoolStats& p) {
                return std::to_string(p.disk_writes);
              });
  pool_series("gisql_bufferpool_disk_ms_total", "counter",
              [](const BufferPoolStats& p) {
                return std::to_string(p.disk_us / 1e3);
              });

  // Per-tenant attribution series. Tenant names are user-controlled
  // strings, so label values go through the escaper.
  const auto tenant_rows = tenants_.SnapshotTenants();
  auto tenant_series = [&out, &tenant_rows](const std::string& name,
                                            const char* type, auto value_of) {
    if (tenant_rows.empty()) return;
    out += "# TYPE " + name + " " + type + "\n";
    for (const auto& t : tenant_rows) {
      out += name + "{tenant=\"" + EscapeLabelValue(t.tenant) + "\"} " +
             value_of(t) + "\n";
    }
  };
  tenant_series("gisql_tenant_queries_total", "counter",
                [](const TenantUsage& t) { return std::to_string(t.queries); });
  tenant_series("gisql_tenant_sheds_total", "counter",
                [](const TenantUsage& t) { return std::to_string(t.sheds); });
  tenant_series("gisql_tenant_cache_hits_total", "counter",
                [](const TenantUsage& t) {
                  return std::to_string(t.cache_hits);
                });
  tenant_series("gisql_tenant_rows_total", "counter",
                [](const TenantUsage& t) { return std::to_string(t.rows); });
  tenant_series("gisql_tenant_elapsed_ms_total", "counter",
                [](const TenantUsage& t) {
                  return std::to_string(t.elapsed_ms);
                });
  tenant_series("gisql_tenant_bytes_sent_total", "counter",
                [](const TenantUsage& t) {
                  return std::to_string(t.bytes_sent);
                });
  tenant_series("gisql_tenant_bytes_received_total", "counter",
                [](const TenantUsage& t) {
                  return std::to_string(t.bytes_received);
                });
  tenant_series("gisql_tenant_mem_peak_bytes", "gauge",
                [](const TenantUsage& t) {
                  return std::to_string(t.mem_peak_bytes);
                });
  tenant_series("gisql_tenant_page_misses_total", "counter",
                [](const TenantUsage& t) {
                  return std::to_string(t.page_misses);
                });

  // SLO series, labeled by objective.
  const auto slo_rows = slo_.Snapshot();
  auto slo_series = [&out, &slo_rows](const std::string& name,
                                      const char* type, auto value_of) {
    if (slo_rows.empty()) return;
    out += "# TYPE " + name + " " + type + "\n";
    for (const auto& s : slo_rows) {
      out += name + "{objective=\"" + EscapeLabelValue(s.name) + "\"} " +
             value_of(s) + "\n";
    }
  };
  slo_series("gisql_slo_fast_burn", "gauge", [](const SloStatus& s) {
    return std::to_string(s.fast_burn);
  });
  slo_series("gisql_slo_slow_burn", "gauge", [](const SloStatus& s) {
    return std::to_string(s.slow_burn);
  });
  slo_series("gisql_slo_slow_attainment", "gauge", [](const SloStatus& s) {
    return std::to_string(s.slow_attainment);
  });
  slo_series("gisql_slo_alerting", "gauge", [](const SloStatus& s) {
    return std::string(s.alerting ? "1" : "0");
  });
  slo_series("gisql_slo_alerts_total", "counter", [](const SloStatus& s) {
    return std::to_string(s.alerts);
  });

  single("gisql_incidents_total", "counter",
         std::to_string(flight_.incidents_captured()));
  return out;
}

int64_t GlobalSystem::BufferPoolResidentBytes() const {
  int64_t bytes = 0;
  for (const auto& source : sources_) {
    bytes += source->engine().pool().resident_bytes();
  }
  return bytes;
}

void GlobalSystem::EnableResultCache(size_t max_entries) {
  cache_ = std::make_unique<QueryCache>(max_entries);
  cache_->set_metrics(&metrics_);
}

void GlobalSystem::DisableResultCache() { cache_.reset(); }

void GlobalSystem::EnableTracing() {
  if (trace_ == nullptr) trace_ = std::make_unique<TraceCollector>();
}

void GlobalSystem::DisableTracing() { trace_.reset(); }

ExecContext GlobalSystem::MakeExecContext(MemoryGrant* grant) {
  ExecContext ctx;
  ctx.net = &network_;
  ctx.mediator_host = kMediatorHost;
  ctx.system_tables = system_catalog_.get();
  ctx.mediator_cpu_us_per_row = options_.mediator_cpu_us_per_row;
  ctx.semijoin_max_keys = options_.semijoin_max_keys;
  ctx.parallel_execution = options_.parallel_execution;
  ctx.pool = WorkerPool();
  ctx.columnar_wire = options_.columnar_wire;
  ctx.vectorized_execution = options_.vectorized_execution;
  ctx.retry_policy = retry_policy_;
  ctx.memory = grant;
  ctx.health = &health_;
  ctx.breakers = &governor_.breakers();
  ctx.health_aware_routing = options_.health_aware_routing;
  return ctx;
}

Result<PlanNodePtr> GlobalSystem::PlanQuery(const sql::SelectStmt& stmt,
                                            TraceCollector* trace,
                                            uint64_t parent) const {
  // Planning is mediator CPU only — free on the simulated clock — so
  // its stages record as zero-width markers at t=0.
  auto mark = [&](const char* stage) {
    if (trace != nullptr) trace->Begin(stage, "lifecycle", parent, 0.0);
  };

  mark("bind+plan");
  LogicalPlanner planner(catalog_);
  GISQL_ASSIGN_OR_RETURN(PlanNodePtr plan, planner.Plan(stmt));

  CostParams params;
  params.link = network_.default_link();
  params.mediator_cpu_us_per_row = options_.mediator_cpu_us_per_row;
  CostModel cost(catalog_, params);

  mark("optimize");
  Optimizer optimizer(catalog_, options_, &cost);
  GISQL_ASSIGN_OR_RETURN(plan, optimizer.Optimize(std::move(plan)));

  mark("decompose");
  Decomposer decomposer(catalog_, options_, &cost);
  return decomposer.Decompose(std::move(plan));
}

Result<std::string> GlobalSystem::Explain(const std::string& sql) {
  GISQL_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (stmt.select == nullptr) {
    return Status::InvalidArgument("EXPLAIN requires a SELECT statement");
  }
  GISQL_ASSIGN_OR_RETURN(PlanNodePtr plan, PlanQuery(*stmt.select));
  return plan->Explain();
}

namespace {

/// Snapshot of the network counters a query can move; two snapshots
/// bracket an execution and their difference is the query's traffic.
struct NetCounters {
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t messages = 0;
  int64_t retries = 0;

  static NetCounters Read(const SimNetwork& net) {
    NetCounters c;
    c.bytes_sent = net.metrics().Get("net.bytes_sent");
    c.bytes_received = net.metrics().Get("net.bytes_received");
    c.messages = net.metrics().Get("net.messages");
    c.retries = net.metrics().Get("net.retries");
    return c;
  }
};

void FillNetDeltas(QueryMetrics& m, const NetCounters& before,
                   const NetCounters& after) {
  m.bytes_sent = after.bytes_sent - before.bytes_sent;
  m.bytes_received = after.bytes_received - before.bytes_received;
  m.messages = after.messages - before.messages;
  m.retries = after.retries - before.retries;
}

/// Aggregate buffer-pool counters over every source; two snapshots
/// bracket an execution and their difference is the work done at the
/// sources on that statement's behalf. Safe as per-query attribution
/// because the mediator executes one statement at a time (the worker
/// pool parallelizes *within* a statement, and SourceSequencer makes
/// pooled page counters replay serial-identically).
struct PoolCounters {
  int64_t hits = 0;
  int64_t misses = 0;
  double disk_us = 0.0;

  static PoolCounters Read(const std::vector<ComponentSourcePtr>& sources) {
    PoolCounters c;
    for (const auto& s : sources) {
      const BufferPoolStats p = s->engine().pool().Snapshot();
      c.hits += p.hits;
      c.misses += p.misses;
      c.disk_us += p.disk_us;
    }
    return c;
  }
};

}  // namespace

Result<QueryResult> GlobalSystem::Query(const std::string& sql) {
  return Submit(sql, SubmitOptions());
}

void GlobalSystem::RecordQueryOutcome(QueryLogEntry entry,
                                      const QueryContext& qctx,
                                      int64_t mem_bytes, int64_t page_hits,
                                      int64_t page_misses, double disk_ms) {
  entry.tenant = qctx.tenant;
  entry.priority = qctx.priority;
  // Template fingerprint: literals/whitespace normalized away, so the
  // advisor (and gis.queries readers) can group recurring shapes.
  entry.fingerprint = sql::FingerprintHex(entry.sql);
  const bool shed = !entry.shed_reason.empty();

  TenantCharge charge;
  charge.shed = shed;
  charge.cache_hit = entry.cache_hit;
  charge.rows = entry.rows;
  charge.elapsed_ms = entry.elapsed_ms;
  charge.admission_wait_ms = entry.admission_wait_ms;
  charge.bytes_sent = entry.bytes_sent;
  charge.bytes_received = entry.bytes_received;
  charge.messages = entry.messages;
  charge.retries = entry.retries;
  charge.mem_bytes = mem_bytes;
  charge.page_hits = page_hits;
  charge.page_misses = page_misses;
  charge.disk_ms = disk_ms;
  tenants_.Record(qctx.tenant, charge);

  QueryFrame frame;
  frame.tenant = qctx.tenant;
  frame.priority = qctx.priority;
  frame.finish_ms = entry.finish_ms;
  frame.sojourn_ms = entry.admission_wait_ms + entry.elapsed_ms;
  frame.rows = entry.rows;
  frame.bytes = entry.bytes_sent + entry.bytes_received;
  frame.cache_hit = entry.cache_hit;
  frame.shed_reason = entry.shed_reason;
  frame.sql = entry.sql;
  const double finish_ms = entry.finish_ms;
  const double sojourn_ms = frame.sojourn_ms;

  // Append before feeding the triggers so an incident fired by this
  // very statement already sees it in gis.queries and the frame ring.
  query_log_.Append(std::move(entry));
  frame.query_id = query_log_.total_appended();
  flight_.RecordFrame(frame);

  if (options_.slo_enabled) {
    for (const SloAlert& alert :
         slo_.Record(qctx.priority, finish_ms, sojourn_ms, shed)) {
      flight_.OnSloAlert(alert.objective, alert.at_ms, alert.fast_burn,
                         alert.slow_burn);
    }
  }

  // Breaker-open trigger: polled per statement (deterministic — RPC
  // completion order within a statement is sequenced) rather than via
  // callbacks from network threads.
  const GovernorSnapshot g = governor_.Snapshot();
  if (g.breaker_transitions > seen_breaker_transitions_) {
    seen_breaker_transitions_ = g.breaker_transitions;
    std::vector<std::string> open;
    for (const auto& b : governor_.breakers().Snapshot()) {
      if (b.state == BreakerState::kOpen) open.push_back(b.source);
    }
    if (!open.empty()) {
      std::sort(open.begin(), open.end());
      std::string detail;
      for (const auto& s : open) {
        if (!detail.empty()) detail += ",";
        detail += s;
      }
      flight_.OnBreakerOpen(detail, finish_ms);
    }
  }
}

std::string GlobalSystem::SystemStateJson(double now_ms) const {
  // Deterministic, simulation-derived fields only: every value below
  // replays byte-identically under the same seed, serial or pooled.
  std::string out;
  out.reserve(2048);
  out += "{\"now_ms\":" + JsonNum(now_ms);

  out += ",\"sources\":[";
  {
    auto sources = health_.Snapshot();
    std::sort(sources.begin(), sources.end(),
              [](const SourceHealthSnapshot& a, const SourceHealthSnapshot& b) {
                return a.source < b.source;
              });
    bool first = true;
    for (const auto& s : sources) {
      if (!first) out += ",";
      first = false;
      const BreakerSnapshot b = governor_.breakers().SnapshotOf(s.source);
      out += "{\"source\":" + JsonStr(s.source);
      out += ",\"state\":" + JsonStr(SourceHealthStateName(s.state));
      out += ",\"requests\":" + JsonNum(s.requests);
      out += ",\"errors\":" + JsonNum(s.errors);
      out += ",\"retries\":" + JsonNum(s.retries);
      out += ",\"breaker\":" + JsonStr(BreakerStateName(b.state));
      out += "}";
    }
  }
  out += "]";

  const GovernorSnapshot g = governor_.Snapshot();
  out += ",\"admission\":{";
  out += "\"in_flight\":" + JsonNum(static_cast<int64_t>(g.admission.in_flight));
  out += ",\"admitted\":" + JsonNum(g.admission.admitted);
  out += ",\"queued\":" + JsonNum(g.admission.queued);
  out += ",\"shed_queue_full\":" + JsonNum(g.admission.shed_queue_full);
  out += ",\"shed_deadline\":" + JsonNum(g.admission.shed_deadline);
  out += ",\"shed_memory_budget\":" + JsonNum(g.shed_memory_budget);
  out += ",\"mem_peak_bytes\":" + JsonNum(g.mem_peak_bytes);
  out += ",\"breakers_open\":" + JsonNum(static_cast<int64_t>(g.breakers_open));
  out += "}";

  out += ",\"buffer_pools\":[";
  {
    std::vector<std::pair<std::string, BufferPoolStats>> pools;
    pools.reserve(sources_.size());
    for (const auto& s : sources_) {
      pools.emplace_back(s->name(), s->engine().pool().Snapshot());
    }
    std::sort(pools.begin(), pools.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    bool first = true;
    for (const auto& [name, p] : pools) {
      if (!first) out += ",";
      first = false;
      out += "{\"source\":" + JsonStr(name);
      out += ",\"frames_used\":" + JsonNum(static_cast<int64_t>(p.frames_used));
      out += ",\"hits\":" + JsonNum(p.hits);
      out += ",\"misses\":" + JsonNum(p.misses);
      out += ",\"evictions\":" + JsonNum(p.evictions);
      out += "}";
    }
  }
  out += "]";

  out += ",\"transactions\":{";
  const TxnCounters& tc = txns_.counters();
  out += "\"active\":" + JsonNum(static_cast<int64_t>(txns_.active_count()));
  out += ",\"started\":" + JsonNum(tc.started);
  out += ",\"committed\":" + JsonNum(tc.committed);
  out += ",\"aborted\":" + JsonNum(tc.aborted);
  out += ",\"deadlocks\":" + JsonNum(tc.deadlocks);
  out += "}";

  out += ",\"slo\":[";
  {
    bool first = true;
    for (const auto& s : slo_.Snapshot()) {
      if (!first) out += ",";
      first = false;
      out += "{\"objective\":" + JsonStr(s.name);
      out += ",\"slow_total\":" + JsonNum(s.slow_total);
      out += ",\"slow_good\":" + JsonNum(s.slow_good);
      out += ",\"fast_burn\":" + JsonNum(s.fast_burn);
      out += ",\"slow_burn\":" + JsonNum(s.slow_burn);
      out += ",\"alerting\":";
      out += s.alerting ? "true" : "false";
      out += "}";
    }
  }
  out += "]}";
  return out;
}

Result<AdmissionDecision> GlobalSystem::AdmitOrShed(
    const std::string& sql, const SubmitOptions& submit) {
  AdmissionRequest req;
  // Closed-loop callers (plain Query) arrive at the completion time
  // of the previous query, so a slot is always free and the governor
  // is invisible; open-loop callers pass explicit arrivals.
  req.arrival_ms =
      submit.arrival_ms >= 0 ? submit.arrival_ms : governor_.now_ms();
  req.priority = submit.priority;
  req.max_wait_ms = submit.max_wait_ms;
  AdmissionDecision decision = governor_.admission().Admit(req);
  if (!decision.admitted) {
    metrics_.Add("admission.shed", 1);
    // Shed queries still land in gis.queries (with their reason and
    // zero traffic) so operators can see *what* was refused — and in
    // the tenant ledger, so noisy neighbors show up in their sheds.
    QueryContext qctx;
    qctx.tenant = QueryContext::NormalizeTenant(submit.tenant);
    qctx.priority = submit.priority;
    qctx.arrival_ms = req.arrival_ms;
    qctx.start_ms = req.arrival_ms;
    QueryLogEntry entry;
    entry.sql = sql;
    entry.shed_reason = ShedReasonName(decision.reason);
    entry.finish_ms = req.arrival_ms;  // refused at arrival
    RecordQueryOutcome(std::move(entry), qctx, 0, 0, 0, 0.0);
    if (decision.reason == ShedReason::kDeadline) {
      return Status::Overloaded(
          "query shed: the admission queue would hold it for ",
          decision.wait_ms, " ms, past its ", "deadline (",
          decision.queued_ahead, " queries ahead)");
    }
    return Status::Overloaded(
        "query shed: the admission wait queue is full (",
        decision.queued_ahead, " queued, limit ",
        governor_.admission().config().queue_limit, ")");
  }
  metrics_.Add("admission.admitted", 1);
  metrics_.Observe("admission.wait_ms", decision.wait_ms);
  return decision;
}

Result<QueryResult> GlobalSystem::Submit(const std::string& sql,
                                         const SubmitOptions& submit) {
  AdmissionDecision decision;
  const bool governed = options_.admission_control;
  if (governed) {
    GISQL_ASSIGN_OR_RETURN(decision, AdmitOrShed(sql, submit));
  }

  QueryContext qctx;
  qctx.tenant = QueryContext::NormalizeTenant(submit.tenant);
  qctx.priority = submit.priority;
  qctx.arrival_ms =
      submit.arrival_ms >= 0 ? submit.arrival_ms : governor_.now_ms();
  qctx.start_ms = governed ? decision.start_ms : qctx.arrival_ms;

  MemoryGrant grant = governor_.memory().NewGrant();
  Result<QueryResult> result =
      RunStatement(sql, &grant, qctx, decision.wait_ms);

  if (governed) {
    const double elapsed = result.ok() ? result->metrics.elapsed_ms : 0.0;
    governor_.admission().Release(decision.ticket,
                                  decision.start_ms + elapsed);
    governor_.AdvanceTo(decision.start_ms + elapsed);
  }
  if (result.ok()) {
    result->metrics.admission_wait_ms = decision.wait_ms;
  } else if (result.status().IsOverloaded()) {
    // A memory-budget abort is a shed too: one count per query (charge
    // denials within a query are schedule-dependent; the query-level
    // outcome is not).
    governor_.RecordMemoryShed();
    metrics_.Add("admission.shed", 1);
    QueryLogEntry entry;
    entry.sql = sql;
    entry.admission_wait_ms = decision.wait_ms;
    entry.shed_reason = ShedReasonName(ShedReason::kMemoryBudget);
    entry.finish_ms = qctx.start_ms;  // aborted mid-execution, zero-width
    RecordQueryOutcome(std::move(entry), qctx, 0, 0, 0, 0.0);
  }
  // The advisor rides the statement clock: by this point the governor
  // has advanced past this statement's completion, so tick times — and
  // therefore decisions — replay identically for the same seed.
  advisor_->Tick(governor_.now_ms());
  return result;
}

Result<QueryResult> GlobalSystem::RunStatement(const std::string& sql,
                                               MemoryGrant* grant,
                                               const QueryContext& qctx,
                                               double admission_wait_ms,
                                               uint64_t snapshot_ts,
                                               uint64_t txn_id) {
  // Each query owns the collector for its duration; the spans stay
  // readable until the next query (or DisableTracing) replaces them.
  TraceCollector* tr = trace_.get();
  if (tr != nullptr) tr->Clear();
  const uint64_t root =
      tr != nullptr ? tr->Begin("query", "lifecycle", 0, 0.0) : 0;
  if (tr != nullptr) {
    tr->SetNote(root, sql);
    tr->Begin("parse", "lifecycle", root, 0.0);
  }

  GISQL_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  switch (stmt.kind) {
    case sql::Statement::Kind::kExplain: {
      GISQL_ASSIGN_OR_RETURN(PlanNodePtr plan,
                             PlanQuery(*stmt.select, tr, root));
      auto schema = std::make_shared<Schema>(
          std::vector<Field>{{"plan", TypeId::kString}});
      QueryResult result;
      result.batch = RowBatch(schema);
      result.batch.Append({Value::String(plan->Explain())});
      result.metrics.plan_text = plan->Explain();
      return result;
    }
    case sql::Statement::Kind::kExplainAnalyze: {
      GISQL_ASSIGN_OR_RETURN(PlanNodePtr plan,
                             PlanQuery(*stmt.select, tr, root));
      // Bracket execution with the same counter snapshot the SELECT
      // path uses, so ANALYZE reports real traffic alongside time.
      const NetCounters before = NetCounters::Read(network_);
      const PoolCounters pools_before = PoolCounters::Read(sources_);
      ExecContext ctx = MakeExecContext(grant);
      ctx.snapshot_ts = snapshot_ts;
      ctx.txn_id = txn_id;
      ctx.record_actuals = true;
      uint64_t exec_span = 0;
      if (tr != nullptr) {
        exec_span = tr->Begin("execute", "lifecycle", root, 0.0);
        ctx.trace = tr;
        ctx.trace_parent = exec_span;
      }
      Executor executor(ctx);
      GISQL_ASSIGN_OR_RETURN(ExecOutput out, executor.Execute(plan));
      auto schema = std::make_shared<Schema>(
          std::vector<Field>{{"plan", TypeId::kString}});
      QueryResult result;
      result.batch = RowBatch(schema);
      result.metrics.elapsed_ms = out.elapsed_ms;
      FillNetDeltas(result.metrics, before, NetCounters::Read(network_));
      std::string text = plan->Explain();
      text += "Total: " + std::to_string(out.batch.num_rows()) +
              " row(s) in " + std::to_string(out.elapsed_ms) +
              " simulated ms\n";
      text += "Network: " + std::to_string(result.metrics.bytes_sent) +
              " bytes sent, " + std::to_string(result.metrics.bytes_received) +
              " bytes received, " + std::to_string(result.metrics.messages) +
              " message(s), " + std::to_string(result.metrics.retries) +
              " retrie(s)\n";
      result.batch.Append({Value::String(text)});
      result.metrics.plan_text = text;
      metrics_.Add("query.count", 1);
      metrics_.Observe("query.ms", out.elapsed_ms);
      metrics_.Observe("query.bytes",
                       static_cast<double>(result.metrics.bytes_received));
      if (tr != nullptr) {
        tr->SetRows(root, static_cast<int64_t>(out.batch.num_rows()));
        tr->End(exec_span, out.elapsed_ms);
        tr->End(root, out.elapsed_ms);
      }
      QueryLogEntry entry;
      entry.sql = sql;
      entry.elapsed_ms = out.elapsed_ms;
      entry.bytes_sent = result.metrics.bytes_sent;
      entry.bytes_received = result.metrics.bytes_received;
      entry.messages = result.metrics.messages;
      entry.retries = result.metrics.retries;
      entry.rows = static_cast<int64_t>(out.batch.num_rows());
      entry.trace_root = static_cast<int64_t>(root);
      entry.admission_wait_ms = admission_wait_ms;
      entry.finish_ms = qctx.start_ms + out.elapsed_ms;
      const PoolCounters pools_after = PoolCounters::Read(sources_);
      RecordQueryOutcome(std::move(entry), qctx,
                         grant != nullptr ? grant->used() : 0,
                         pools_after.hits - pools_before.hits,
                         pools_after.misses - pools_before.misses,
                         (pools_after.disk_us - pools_before.disk_us) / 1e3);
      return result;
    }
    case sql::Statement::Kind::kSelect:
      break;
    default:
      return Status::InvalidArgument(
          "the mediator accepts SELECT/EXPLAIN; DDL and DML run at the "
          "component sources");
  }

  GISQL_ASSIGN_OR_RETURN(PlanNodePtr plan, PlanQuery(*stmt.select, tr, root));

  // gis.* snapshots change between executions by design, so any plan
  // touching one must bypass the result cache entirely.
  bool has_system_scan = false;
  VisitPlan(plan, [&](const PlanNodePtr& node) {
    if (node->kind == PlanKind::kVirtualScan) has_system_scan = true;
  });
  // A transactional read is pinned to its snapshot: neither served
  // from nor inserted into the (latest-committed) result cache.
  const bool use_cache =
      cache_ != nullptr && !has_system_scan && snapshot_ts == 0 && txn_id == 0;

  // Result cache: the decomposed plan's canonical text identifies the
  // computation (fragments, strategies, planner options all shape it).
  const std::string cache_key = use_cache ? plan->Explain() : std::string();
  if (use_cache) {
    const uint64_t lookup =
        tr != nullptr ? tr->Begin("cache.lookup", "lifecycle", root, 0.0) : 0;
    auto cached = cache_->Lookup(cache_key);
    if (tr != nullptr) tr->SetNote(lookup, cached ? "hit" : "miss");
    if (cached) {
      QueryResult result;
      result.batch = std::move(cached->batch);
      // Served from mediator memory: zero simulated latency and —
      // explicitly, not by default-initialization — zero traffic.
      result.metrics.elapsed_ms = 0.0;
      result.metrics.bytes_sent = 0;
      result.metrics.bytes_received = 0;
      result.metrics.messages = 0;
      result.metrics.retries = 0;
      result.metrics.cache_hit = true;
      result.metrics.plan_text = cache_key + "(cache hit)\n";
      metrics_.Add("query.count", 1);
      metrics_.Observe("query.ms", 0.0);
      metrics_.Observe("query.bytes", 0.0);
      if (tr != nullptr) {
        tr->SetRows(root, static_cast<int64_t>(result.batch.num_rows()));
        tr->End(root, 0.0);
      }
      QueryLogEntry entry;
      entry.sql = sql;
      entry.cache_hit = true;
      entry.rows = static_cast<int64_t>(result.batch.num_rows());
      entry.trace_root = static_cast<int64_t>(root);
      entry.admission_wait_ms = admission_wait_ms;
      entry.finish_ms = qctx.start_ms;  // served from memory: zero width
      RecordQueryOutcome(std::move(entry), qctx, 0, 0, 0, 0.0);
      return result;
    }
  }

  const NetCounters before = NetCounters::Read(network_);
  const PoolCounters pools_before = PoolCounters::Read(sources_);

  ExecContext ctx = MakeExecContext(grant);
  ctx.snapshot_ts = snapshot_ts;
  ctx.txn_id = txn_id;
  uint64_t exec_span = 0;
  if (tr != nullptr) {
    exec_span = tr->Begin("execute", "lifecycle", root, 0.0);
    ctx.trace = tr;
    ctx.trace_parent = exec_span;
  }
  Executor executor(ctx);
  GISQL_ASSIGN_OR_RETURN(ExecOutput out, executor.Execute(plan));

  QueryResult result;
  result.batch = std::move(out.batch);
  result.metrics.elapsed_ms = out.elapsed_ms;
  FillNetDeltas(result.metrics, before, NetCounters::Read(network_));
  result.metrics.plan_text = plan->Explain();
  metrics_.Add("query.count", 1);
  metrics_.Observe("query.ms", out.elapsed_ms);
  metrics_.Observe("query.bytes",
                   static_cast<double>(result.metrics.bytes_received));

  if (tr != nullptr) {
    tr->SetRows(root, static_cast<int64_t>(result.batch.num_rows()));
    tr->End(exec_span, out.elapsed_ms);
  }

  if (use_cache) {
    if (tr != nullptr) {
      tr->Begin("cache.insert", "lifecycle", root, out.elapsed_ms);
    }
    std::set<std::string> sources;
    std::set<std::string> tables;
    VisitPlan(plan, [&](const PlanNodePtr& node) {
      if (node->kind == PlanKind::kRemoteFragment) {
        sources.insert(node->fragment_source);
        if (!node->scan_global_name.empty()) {
          tables.insert(node->scan_global_name);
        }
        for (const auto& alt : node->scan_alternates) {
          sources.insert(alt.source);
          if (!alt.global_name.empty()) tables.insert(alt.global_name);
        }
      }
    });
    cache_->Insert(cache_key, result.batch, result.metrics.elapsed_ms,
                   std::move(sources), std::move(tables));
  }
  if (tr != nullptr) tr->End(root, out.elapsed_ms);

  // The entry is appended only after execution, so a gis.queries scan
  // never observes the query currently running it (deterministic
  // snapshots regardless of when mid-plan operators fire).
  QueryLogEntry entry;
  entry.sql = sql;
  entry.elapsed_ms = result.metrics.elapsed_ms;
  entry.bytes_sent = result.metrics.bytes_sent;
  entry.bytes_received = result.metrics.bytes_received;
  entry.messages = result.metrics.messages;
  entry.retries = result.metrics.retries;
  entry.rows = static_cast<int64_t>(result.batch.num_rows());
  entry.trace_root = static_cast<int64_t>(root);
  entry.admission_wait_ms = admission_wait_ms;
  entry.finish_ms = qctx.start_ms + result.metrics.elapsed_ms;
  const PoolCounters pools_after = PoolCounters::Read(sources_);
  RecordQueryOutcome(std::move(entry), qctx,
                     grant != nullptr ? grant->used() : 0,
                     pools_after.hits - pools_before.hits,
                     pools_after.misses - pools_before.misses,
                     (pools_after.disk_us - pools_before.disk_us) / 1e3);
  return result;
}

Result<uint64_t> GlobalSystem::OpenCursor(const std::string& sql,
                                          const CursorOptions& opts) {
  SweepExpiredCursors(governor_.now_ms());

  const int64_t chunk_rows =
      opts.chunk_rows > 0 ? opts.chunk_rows : options_.cursor_chunk_rows;
  if (chunk_rows <= 0) {
    return Status::InvalidArgument("cursor chunk_rows must be positive, got ",
                                   chunk_rows);
  }
  const double lease_ms =
      opts.lease_ms >= 0.0 ? opts.lease_ms : options_.cursor_lease_ms;

  QueryContext qctx;
  qctx.tenant = QueryContext::NormalizeTenant(opts.submit.tenant);
  qctx.priority = opts.submit.priority;
  qctx.arrival_ms = opts.submit.arrival_ms >= 0 ? opts.submit.arrival_ms
                                                : governor_.now_ms();
  qctx.start_ms = qctx.arrival_ms;

  // The open-cursor cap is checked before admission so a refused open
  // allocates nothing — no cursor, no grant, no admission ticket.
  if (cursors_.OpenCount() >=
      static_cast<size_t>(options_.cursor_max_open)) {
    metrics_.Add("cursor.shed", 1);
    QueryLogEntry entry;
    entry.sql = sql;
    entry.shed_reason = "cursor_limit";
    entry.finish_ms = qctx.arrival_ms;
    RecordQueryOutcome(std::move(entry), qctx, 0, 0, 0, 0.0);
    return Status::Overloaded("cursor shed: ", cursors_.OpenCount(),
                              " cursors already open (limit ",
                              options_.cursor_max_open, ")");
  }

  AdmissionDecision decision;
  const bool governed = options_.admission_control;
  if (governed) {
    GISQL_ASSIGN_OR_RETURN(decision, AdmitOrShed(sql, opts.submit));
    qctx.start_ms = decision.start_ms;
  }

  // The admission slot covers only the open (which runs the whole plan
  // when it must spool); fetches happen outside it, so cursor_max_open
  // — not max_concurrent_queries — bounds concurrently open cursors.
  auto finish = [&](double elapsed) {
    if (governed) {
      governor_.admission().Release(decision.ticket,
                                    decision.start_ms + elapsed);
      governor_.AdvanceTo(decision.start_ms + elapsed);
    }
  };
  auto fail = [&](const Status& st) -> Status {
    finish(0.0);
    if (st.IsOverloaded()) {
      // Spooling overflowed the query budget — the same query-level
      // shed Submit records.
      governor_.RecordMemoryShed();
      metrics_.Add("admission.shed", 1);
      QueryLogEntry entry;
      entry.sql = sql;
      entry.admission_wait_ms = decision.wait_ms;
      entry.shed_reason = ShedReasonName(ShedReason::kMemoryBudget);
      entry.finish_ms = qctx.start_ms;
      RecordQueryOutcome(std::move(entry), qctx, 0, 0, 0, 0.0);
    }
    return st;
  };

  auto stmt_or = sql::ParseStatement(sql);
  if (!stmt_or.ok()) return fail(stmt_or.status());
  if (stmt_or->kind != sql::Statement::Kind::kSelect) {
    return fail(Status::InvalidArgument(
        "cursors serve SELECT statements; EXPLAIN and DDL/DML go "
        "through Query()/ExecuteAt()"));
  }
  auto plan_or = PlanQuery(*stmt_or->select);
  if (!plan_or.ok()) return fail(plan_or.status());
  PlanNodePtr plan = std::move(plan_or).ValueUnsafe();
  const bool streaming = IsStreamablePlan(plan);

  // Cursors bypass the result cache entirely: a chunked delivery has
  // nothing to insert (the whole point is never holding the full
  // result), and serving chunks from a cached batch would dodge the
  // memory accounting this path exists to enforce.
  const NetCounters before = NetCounters::Read(network_);
  const PoolCounters pools_before = PoolCounters::Read(sources_);
  MemoryGrant grant = governor_.memory().NewGrant();
  std::unique_ptr<RowStream> stream;
  double open_elapsed = 0.0;
  if (streaming) {
    auto stream_or = OpenPlanStream(MakeExecContext(nullptr), plan,
                                    chunk_rows, cursors_.token_counter());
    if (!stream_or.ok()) return fail(stream_or.status());
    stream = std::move(stream_or).ValueUnsafe();
  } else {
    // Blocking plan: run it to completion now, charged to the query
    // grant like Submit would, and serve the spool chunk by chunk. The
    // grant keeps the full charge until the cursor dies — the spool
    // really is resident.
    ExecContext ctx = MakeExecContext(&grant);
    Executor executor(ctx);
    auto out_or = executor.Execute(plan);
    if (!out_or.ok()) return fail(out_or.status());
    open_elapsed = out_or->elapsed_ms;
    stream = MakeSpoolStream(std::move(out_or->batch), chunk_rows);
  }
  finish(open_elapsed);
  const NetCounters after = NetCounters::Read(network_);
  const PoolCounters pools_after = PoolCounters::Read(sources_);

  const double opened_at =
      governed ? decision.start_ms + open_elapsed : governor_.now_ms();
  CursorManager::Entry& e =
      cursors_.Create(sql, streaming, chunk_rows, opened_at, lease_ms);
  e.stream = std::move(stream);
  e.plan = std::move(plan);
  e.grant = std::move(grant);
  // Pin the current snapshot for the cursor's lifetime: the GC
  // watermark cannot pass it, so version chains its scan could still
  // reference survive until the cursor finalizes (drain, close, or
  // lease expiry alike).
  e.snapshot_pin = txns_.PinSnapshot();
  e.elapsed_ms = open_elapsed;
  e.bytes_sent = after.bytes_sent - before.bytes_sent;
  e.bytes_received = after.bytes_received - before.bytes_received;
  e.messages = after.messages - before.messages;
  e.retries = after.retries - before.retries;
  // Attribution context, carried until FinalizeCursor writes the one
  // gis.queries entry covering the cursor's whole life.
  e.tenant = qctx.tenant;
  e.priority = qctx.priority;
  e.arrival_ms = qctx.arrival_ms;
  e.admission_wait_ms = decision.wait_ms;
  e.page_hits = pools_after.hits - pools_before.hits;
  e.page_misses = pools_after.misses - pools_before.misses;
  e.disk_ms = (pools_after.disk_us - pools_before.disk_us) / 1e3;
  e.mem_peak_bytes = e.grant.used();
  metrics_.Add("cursor.opened", 1);
  advisor_->Tick(governor_.now_ms());
  return e.id;
}

Result<GlobalSystem::CursorChunkResult> GlobalSystem::FetchChunk(
    uint64_t cursor_id) {
  const double now = governor_.now_ms();
  SweepExpiredCursors(now);
  CursorManager::Entry* e = cursors_.Find(cursor_id);
  if (e == nullptr) {
    return Status::NotFound("cursor ", cursor_id, " does not exist");
  }
  if (e->state != CursorManager::State::kOpen) {
    return Status::NotFound("cursor ", cursor_id, " is ",
                            CursorManager::StateName(e->state));
  }

  const NetCounters before = NetCounters::Read(network_);
  const PoolCounters pools_before = PoolCounters::Read(sources_);
  Result<StreamChunk> chunk_or = e->stream->Next();
  if (!chunk_or.ok()) {
    // A transport error leaves the cursor open: the stream did not
    // advance, so a retried FetchChunk re-requests the same chunk and
    // the source's one-chunk re-serve window absorbs the duplicate.
    // Anything else is fatal to the cursor.
    if (!IsRetryableTransport(chunk_or.status())) {
      FinalizeCursor(*e, CursorManager::State::kClosed);
    }
    return chunk_or.status();
  }
  StreamChunk chunk = std::move(chunk_or).ValueUnsafe();

  if (e->streaming) {
    // Re-grant per chunk: a fresh grant charged for just this chunk
    // replaces the previous chunk's (move-assign releases the old
    // charge first), keeping the cursor's booked footprint O(chunk).
    // The swap happens even when the charge is denied — a failed
    // Charge still books the bytes, and only release-through-the-grant
    // keeps the global budget consistent.
    const int64_t width =
        chunk.rows.schema() != nullptr
            ? static_cast<int64_t>(chunk.rows.schema()->fields().size())
            : 0;
    MemoryGrant next = governor_.memory().NewGrant();
    const Status charged = next.Charge(
        EstimateRowBytes(static_cast<int64_t>(chunk.rows.num_rows()), width),
        "a cursor chunk");
    e->grant = std::move(next);
    e->mem_peak_bytes = std::max(e->mem_peak_bytes, e->grant.used());
    if (!charged.ok()) {
      governor_.RecordMemoryShed();
      metrics_.Add("admission.shed", 1);
      FinalizeCursor(*e, CursorManager::State::kClosed,
                     ShedReasonName(ShedReason::kMemoryBudget));
      return charged;
    }
  }

  e->chunks += 1;
  e->rows += static_cast<int64_t>(chunk.rows.num_rows());
  e->elapsed_ms += chunk.elapsed_ms;
  const NetCounters after = NetCounters::Read(network_);
  const PoolCounters pools_after = PoolCounters::Read(sources_);
  e->bytes_sent += after.bytes_sent - before.bytes_sent;
  e->bytes_received += after.bytes_received - before.bytes_received;
  e->messages += after.messages - before.messages;
  e->retries += after.retries - before.retries;
  e->page_hits += pools_after.hits - pools_before.hits;
  e->page_misses += pools_after.misses - pools_before.misses;
  e->disk_ms += (pools_after.disk_us - pools_before.disk_us) / 1e3;

  governor_.AdvanceTo(now + chunk.elapsed_ms);
  // Each successful fetch renews the lease from the advanced clock.
  e->lease_deadline_ms = governor_.now_ms() + e->lease_ms;
  metrics_.Add("cursor.chunks", 1);

  CursorChunkResult res;
  res.batch = std::move(chunk.rows);
  res.done = chunk.done;
  res.seq = static_cast<uint64_t>(e->chunks - 1);
  res.metrics.elapsed_ms = chunk.elapsed_ms;
  FillNetDeltas(res.metrics, before, after);
  if (chunk.done) FinalizeCursor(*e, CursorManager::State::kDrained);
  return res;
}

Status GlobalSystem::CloseCursor(uint64_t cursor_id) {
  SweepExpiredCursors(governor_.now_ms());
  CursorManager::Entry* e = cursors_.Find(cursor_id);
  // Idempotent end-to-end: unknown (pruned) and already-finished
  // cursors close successfully, mirroring the source-side contract.
  if (e == nullptr || e->state != CursorManager::State::kOpen) {
    return Status::OK();
  }
  FinalizeCursor(*e, CursorManager::State::kClosed);
  return Status::OK();
}

void GlobalSystem::SweepExpiredCursors(double now_ms) {
  for (uint64_t id : cursors_.ExpiredBefore(now_ms)) {
    CursorManager::Entry* e = cursors_.Find(id);
    if (e != nullptr) FinalizeCursor(*e, CursorManager::State::kExpired);
  }
}

void GlobalSystem::FinalizeCursor(CursorManager::Entry& entry,
                                  CursorManager::State state,
                                  const char* shed_reason) {
  if (entry.state != CursorManager::State::kOpen) return;
  if (entry.stream != nullptr) {
    // Best-effort remote close; its traffic and time belong to the
    // cursor like any fetch's.
    const NetCounters before = NetCounters::Read(network_);
    const double close_ms = entry.stream->Close();
    const NetCounters after = NetCounters::Read(network_);
    entry.bytes_sent += after.bytes_sent - before.bytes_sent;
    entry.bytes_received += after.bytes_received - before.bytes_received;
    entry.messages += after.messages - before.messages;
    entry.retries += after.retries - before.retries;
    entry.elapsed_ms += close_ms;
    governor_.AdvanceTo(governor_.now_ms() + close_ms);
  }
  // One gis.queries entry per cursor, written at end of life so it
  // carries the cursor's whole story (rows served, total traffic).
  QueryLogEntry log;
  log.sql = entry.sql;
  log.elapsed_ms = entry.elapsed_ms;
  log.bytes_sent = entry.bytes_sent;
  log.bytes_received = entry.bytes_received;
  log.messages = entry.messages;
  log.retries = entry.retries;
  log.rows = entry.rows;
  log.shed_reason = shed_reason;
  log.admission_wait_ms = entry.admission_wait_ms;
  // End of life on the advanced clock (the close above already moved
  // it); drained/closed/expired all finish "now".
  log.finish_ms = governor_.now_ms();
  QueryContext qctx;
  qctx.tenant = entry.tenant;
  qctx.priority = entry.priority;
  qctx.arrival_ms = entry.arrival_ms;
  qctx.start_ms = entry.arrival_ms + entry.admission_wait_ms;
  RecordQueryOutcome(std::move(log), qctx, entry.mem_peak_bytes,
                     entry.page_hits, entry.page_misses, entry.disk_ms);
  switch (state) {
    case CursorManager::State::kDrained:
      metrics_.Add("cursor.drained", 1);
      break;
    case CursorManager::State::kExpired:
      metrics_.Add("cursor.expired", 1);
      break;
    default:
      metrics_.Add("cursor.closed", 1);
      break;
  }
  metrics_.Add("query.count", 1);
  metrics_.Observe("query.ms", entry.elapsed_ms);
  metrics_.Observe("query.bytes",
                   static_cast<double>(entry.bytes_received));
  // The snapshot pin releases together with the grant below — an
  // expired lease frees its spool memory and its version-chain hold
  // on the GC watermark in the same step.
  if (entry.snapshot_pin != 0) {
    txns_.UnpinSnapshot(entry.snapshot_pin);
    entry.snapshot_pin = 0;
  }
  // Releases the grant and may prune entries: the reference (and any
  // other finished entry's) is dead after this line.
  cursors_.Finalize(entry.id, state);
}

}  // namespace gisql
