/// \file query_log.h
/// \brief Bounded ring buffer of recently executed queries, backing the
/// `gis.queries` system table.
///
/// GlobalSystem::Query appends one entry per *executed* statement
/// (SELECT and EXPLAIN ANALYZE, including cache hits; plain EXPLAIN
/// never executes and is not logged). The buffer keeps the most recent
/// `capacity` entries; ids are monotonically increasing across the
/// system's lifetime, so `SELECT MAX(id) FROM gis.queries` counts total
/// executed queries even after eviction.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gisql {

/// \brief One logged query: the statement plus its accounting (all from
/// the simulation, fully deterministic).
struct QueryLogEntry {
  int64_t id = 0;               ///< 1-based, monotonically increasing
  std::string sql;              ///< statement text as submitted
  double elapsed_ms = 0.0;      ///< simulated end-to-end latency
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t messages = 0;
  int64_t retries = 0;
  bool cache_hit = false;
  int64_t rows = 0;             ///< result rows returned
  int64_t trace_root = 0;       ///< root span id (0 when tracing is off)
  double admission_wait_ms = 0.0;  ///< simulated time spent queued
  /// Why the governor refused this query ("" = it ran). Shed entries
  /// carry zero traffic — nothing was executed.
  std::string shed_reason;
  /// Accountable principal the statement is charged to (never empty;
  /// unnamed callers land on the "default" tenant).
  std::string tenant = "default";
  int priority = 1;        ///< 0 background, 1 normal, 2 interactive
  /// Simulated completion instant (arrival + wait + elapsed). Shed
  /// entries finish at their refusal time.
  double finish_ms = 0.0;
  /// Literal-stripped template hash (sql/fingerprint.h), stamped once
  /// at the RecordQueryOutcome funnel. Two entries share a fingerprint
  /// iff they are the same statement template with different literals
  /// — the key for hot-template detection in the advisor and in user
  /// queries over gis.queries.
  std::string fingerprint;
};

/// \brief Thread-safe fixed-capacity ring of QueryLogEntry.
class QueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 256;
  static constexpr size_t kMaxCapacity = 1u << 20;

  explicit QueryLog(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// \brief Ring capacity from GISQL_QUERY_LOG_CAPACITY (clamped to
  /// [1, kMaxCapacity]; unset or unparsable falls back to the
  /// default). Long scenario runs need a window wider than 256 to
  /// retain a full SLO slow window of queries.
  static size_t CapacityFromEnv();

  /// \brief Appends one entry, assigning its id; evicts the oldest
  /// entry once the ring is full.
  void Append(QueryLogEntry entry);

  /// \brief Retained entries, oldest first.
  std::vector<QueryLogEntry> Snapshot() const;

  size_t capacity() const { return capacity_; }

  /// \brief Entries ever appended (ids run 1..total_appended()).
  int64_t total_appended() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  int64_t next_id_ = 1;
  std::vector<QueryLogEntry> ring_;  ///< grows to capacity_, then wraps
  size_t head_ = 0;                  ///< index of the oldest entry
};

}  // namespace gisql
