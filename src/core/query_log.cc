#include "core/query_log.h"

#include <cstdlib>

namespace gisql {

size_t QueryLog::CapacityFromEnv() {
  const char* raw = std::getenv("GISQL_QUERY_LOG_CAPACITY");
  if (raw == nullptr || *raw == '\0') return kDefaultCapacity;
  char* end = nullptr;
  long parsed = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed < 1) return kDefaultCapacity;
  if (parsed > static_cast<long>(kMaxCapacity)) return kMaxCapacity;
  return static_cast<size_t>(parsed);
}

void QueryLog::Append(QueryLogEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.id = next_id_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
    return;
  }
  ring_[head_] = std::move(entry);
  head_ = (head_ + 1) % capacity_;
}

std::vector<QueryLogEntry> QueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryLogEntry> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

int64_t QueryLog::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_ - 1;
}

}  // namespace gisql
