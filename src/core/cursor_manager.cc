#include "core/cursor_manager.h"

#include "catalog/system_tables.h"

namespace gisql {

const char* CursorManager::StateName(State s) {
  switch (s) {
    case State::kOpen:
      return "open";
    case State::kDrained:
      return "drained";
    case State::kClosed:
      return "closed";
    case State::kExpired:
      return "expired";
  }
  return "unknown";
}

CursorManager::Entry& CursorManager::Create(std::string sql, bool streaming,
                                            int64_t chunk_rows,
                                            double opened_ms,
                                            double lease_ms) {
  const uint64_t id = next_id_++;
  Entry& e = entries_[id];
  e.id = id;
  e.sql = std::move(sql);
  e.streaming = streaming;
  e.chunk_rows = chunk_rows;
  e.opened_ms = opened_ms;
  e.lease_ms = lease_ms;
  e.lease_deadline_ms = opened_ms + lease_ms;
  return e;
}

CursorManager::Entry* CursorManager::Find(uint64_t id) {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

const CursorManager::Entry* CursorManager::Find(uint64_t id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

size_t CursorManager::OpenCount() const {
  size_t n = 0;
  for (const auto& [id, e] : entries_) {
    if (e.state == State::kOpen) ++n;
  }
  return n;
}

std::vector<uint64_t> CursorManager::ExpiredBefore(double now_ms) const {
  std::vector<uint64_t> ids;
  for (const auto& [id, e] : entries_) {
    if (e.state == State::kOpen && e.lease_deadline_ms < now_ms) {
      ids.push_back(id);
    }
  }
  return ids;
}

void CursorManager::Finalize(uint64_t id, State state) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  e.state = state;
  e.stream.reset();
  e.plan.reset();
  e.grant = MemoryGrant();  // releases the charge
  // Retain a bounded tail of finished entries for gis.cursors; the map
  // is id-ordered, so pruning walks oldest-first deterministically.
  size_t finished = 0;
  for (const auto& [eid, entry] : entries_) {
    if (entry.state != State::kOpen) ++finished;
  }
  for (auto prune = entries_.begin();
       finished > kMaxFinishedRetained && prune != entries_.end();) {
    if (prune->second.state != State::kOpen) {
      prune = entries_.erase(prune);
      --finished;
    } else {
      ++prune;
    }
  }
}

RowBatch CursorManager::Snapshot() const {
  RowBatch batch(SystemTableSchema("gis.cursors").ValueUnsafe());
  for (const auto& [id, e] : entries_) {
    batch.Append({
        Value::Int(static_cast<int64_t>(e.id)),
        Value::String(e.sql),
        Value::String(StateName(e.state)),
        Value::Bool(e.streaming),
        Value::Int(e.chunk_rows),
        Value::Int(e.chunks),
        Value::Int(e.rows),
        Value::Double(e.opened_ms),
        Value::Double(e.lease_deadline_ms),
        Value::Double(e.elapsed_ms),
        Value::Int(e.grant.used()),
    });
  }
  return batch;
}

}  // namespace gisql
