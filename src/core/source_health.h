/// \file source_health.h
/// \brief Per-source health accounting for the mediator.
///
/// Component information systems are autonomous: they fail, restart,
/// and degrade independently of the mediator, and the 1989 setting
/// gives the mediator no channel into their internals. What it *can*
/// observe is its own traffic — every RPC attempt, with its simulated
/// latency, byte counts, and injected fault, flows through
/// SimNetwork::CallAttempt. The SourceHealthTracker hangs off that
/// choke point (as an RpcObserver) and maintains, per source:
///
///  * request / error / retry counters and bytes in/out;
///  * an EWMA of attempt latency plus a log-scale latency histogram
///    (the same sqrt(2) buckets as the registry histograms) for p95;
///  * the current consecutive-failure streak and a sliding window of
///    recent outcomes;
///  * a derived state — healthy / degraded / suspect — from documented
///    streak and error-ratio thresholds (DESIGN.md "Source health").
///
/// Everything is driven by the simulated clock and the deterministic
/// fault schedule, so chaos runs produce identical health transitions
/// for identical seeds. Ingestion is serialized under one mutex; with
/// worker-pool execution, attempts against *different* sources may be
/// recorded in a different global order, but per-source sequences (the
/// only order EWMA and streaks depend on) are determined by the
/// per-link message sequence, which is interleaving-independent.
///
/// The tracker feeds the `gis.sources` system table and the health
/// series of GlobalSystem::ExportPrometheus(); the derived state is
/// the hook health-aware fragment placement will consume.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "net/sim_network.h"

namespace gisql {

/// \brief Derived health of one component source.
enum class SourceHealthState : uint8_t {
  kHealthy = 0,   ///< no streak, error ratio under threshold
  kDegraded = 1,  ///< short failure streak or elevated recent error ratio
  kSuspect = 2,   ///< sustained failure streak; likely down
};

const char* SourceHealthStateName(SourceHealthState state);

/// \brief Downstream consumer of the tracker's per-attempt outcome
/// stream (success/failure per source). The circuit-breaker registry
/// implements this so breaker state is *fed by* the health tracker —
/// one observation pipeline, two derived views. Callbacks run under
/// the tracker's ingestion lock, preserving its global outcome order;
/// implementations must not call back into the tracker.
class SourceOutcomeListener {
 public:
  virtual ~SourceOutcomeListener() = default;
  virtual void OnSourceOutcome(const std::string& source, bool ok) = 0;
};

/// \brief Point-in-time view of one source's health (one `gis.sources`
/// row).
struct SourceHealthSnapshot {
  std::string source;
  SourceHealthState state = SourceHealthState::kHealthy;
  int64_t requests = 0;       ///< RPC attempts observed (retries included)
  int64_t errors = 0;         ///< attempts that failed (any status)
  int64_t retries = 0;        ///< backoff retries spent against this source
  int64_t consecutive_failures = 0;
  int64_t bytes_sent = 0;     ///< mediator → source
  int64_t bytes_received = 0; ///< source → mediator
  double ewma_ms = 0.0;       ///< EWMA of attempt latency (simulated ms)
  double p95_ms = 0.0;        ///< p95 attempt latency (simulated ms)
  std::string last_error;     ///< most recent failure message ("" if none)
};

/// \brief Thread-safe per-source health accounting, fed by the
/// simulated network's attempt stream.
class SourceHealthTracker : public RpcObserver {
 public:
  /// \name Health model parameters (documented in DESIGN.md)
  /// @{

  /// EWMA smoothing: ewma' = alpha * sample + (1 - alpha) * ewma.
  static constexpr double kEwmaAlpha = 0.2;
  /// Streak entering `degraded`: two back-to-back failures are already
  /// past the single-blip noise floor under a deterministic transport.
  static constexpr int64_t kDegradedStreak = 2;
  /// Streak entering `suspect`: five back-to-back failures outlast any
  /// default outage window in the chaos profile.
  static constexpr int64_t kSuspectStreak = 5;
  /// Recent-outcome window (attempts) for the error-ratio rule; a
  /// bounded window lets a source *recover* to healthy once the faulty
  /// period ages out, which cumulative counters never would.
  static constexpr size_t kRecentWindow = 32;
  /// Minimum samples in the window before the ratio rule can fire.
  static constexpr size_t kRatioMinSamples = 8;
  /// Window error ratio at or above which the source is `degraded`.
  static constexpr double kDegradedErrorRatio = 0.25;
  /// @}

  void OnRpcAttempt(const std::string& from, const std::string& to,
                    uint8_t opcode, const RpcAttempt& attempt) override;
  void OnRetry(const std::string& to) override;

  /// \brief Health rows for every observed source, sorted by name.
  /// Sources the mediator never called are absent (the `gis.sources`
  /// provider merges in catalog-registered sources with zero traffic).
  std::vector<SourceHealthSnapshot> Snapshot() const;

  /// \brief One source's snapshot (zeros/healthy when never observed).
  SourceHealthSnapshot SnapshotOf(const std::string& source) const;

  /// \brief Current derived state of `source` (healthy when unknown).
  SourceHealthState StateOf(const std::string& source) const;

  /// \brief Drops all accumulated state (bench sweeps reset between
  /// rungs the way they reset metrics registries).
  void Reset();

  /// \brief Forwards every attempt outcome to `listener` (may be null
  /// to detach). The listener must outlive the tracker or be detached
  /// first.
  void set_outcome_listener(SourceOutcomeListener* listener) {
    std::lock_guard<std::mutex> lock(mu_);
    listener_ = listener;
  }

 private:
  struct PerSource {
    int64_t requests = 0;
    int64_t errors = 0;
    int64_t retries = 0;
    int64_t consecutive_failures = 0;
    int64_t bytes_sent = 0;
    int64_t bytes_received = 0;
    double ewma_ms = 0.0;
    Histogram latency;
    std::deque<bool> recent_errors;  ///< sliding outcome window
    std::string last_error;
  };

  static SourceHealthState DeriveState(const PerSource& s);
  static SourceHealthSnapshot MakeSnapshot(const std::string& name,
                                           const PerSource& s);

  mutable std::mutex mu_;
  std::map<std::string, PerSource> sources_;
  SourceOutcomeListener* listener_ = nullptr;
};

}  // namespace gisql
