/// \file btree.h
/// \brief In-memory B+tree over Value keys mapping to row ids — the
/// ordered-index structure of the component-system storage engine.
///
/// Duplicate keys are allowed (secondary-index semantics). Leaves are
/// linked for range scans. The tree is insert-only: tables rebuild
/// their indexes after deletions, matching the engine's
/// rebuild-on-write index policy.

#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace gisql {

class BPlusTree {
 public:
  /// \param fanout maximum keys per node (≥ 4).
  explicit BPlusTree(int fanout = 64);
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// \brief Inserts one (key, row id) pair. NULL keys are rejected
  /// (callers index only non-NULL values, per SQL index semantics).
  Status Insert(const Value& key, size_t row_id);

  /// \brief Row ids whose key compares equal to `key`, in insertion
  /// order among duplicates.
  std::vector<size_t> Lookup(const Value& key) const;

  /// \brief Row ids with lo ≤/< key ≤/< hi, in key order. A NULL bound
  /// means unbounded on that side.
  std::vector<size_t> Range(const Value& lo, bool lo_inclusive,
                            const Value& hi, bool hi_inclusive) const;

  /// \brief Number of stored entries.
  size_t size() const { return size_; }

  /// \brief Levels from root to leaves (0 for an empty tree).
  int height() const { return height_; }

  /// \brief Checks structural invariants: key ordering within and
  /// across nodes, separator correctness, fill factors, leaf links.
  /// Used by tests; returns Internal on any violation.
  Status Validate() const;

  void Clear();

 private:
  struct Node;
  struct LeafNode;
  struct InternalNode;

  LeafNode* FindLeaf(const Value& key) const;
  /// Splits `leaf` and returns the (separator, new node) to insert into
  /// the parent.
  void InsertIntoParent(Node* node, Value separator, Node* sibling);

  Status ValidateNode(const Node* node, const Value* lo,
                      const Value* hi, int depth) const;
  void FreeTree(Node* node);

  int fanout_;
  Node* root_ = nullptr;
  size_t size_ = 0;
  int height_ = 0;
};

}  // namespace gisql
