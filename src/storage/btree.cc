#include "storage/btree.h"

#include <algorithm>

namespace gisql {

namespace {
bool ValueLess(const Value& a, const Value& b) { return a.Compare(b) < 0; }
}  // namespace

struct BPlusTree::Node {
  bool is_leaf;
  InternalNode* parent = nullptr;
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
};

struct BPlusTree::LeafNode : Node {
  std::vector<Value> keys;
  std::vector<size_t> rids;
  LeafNode* next = nullptr;
  LeafNode() : Node(true) {}
};

struct BPlusTree::InternalNode : Node {
  std::vector<Value> keys;        ///< separators
  std::vector<Node*> children;    ///< keys.size() + 1 entries
  InternalNode() : Node(false) {}
};

BPlusTree::BPlusTree(int fanout) : fanout_(fanout < 4 ? 4 : fanout) {}

BPlusTree::~BPlusTree() { Clear(); }

void BPlusTree::FreeTree(Node* node) {
  if (node == nullptr) return;
  if (!node->is_leaf) {
    auto* internal = static_cast<InternalNode*>(node);
    for (Node* c : internal->children) FreeTree(c);
  }
  delete node;
}

void BPlusTree::Clear() {
  FreeTree(root_);
  root_ = nullptr;
  size_ = 0;
  height_ = 0;
}

BPlusTree::LeafNode* BPlusTree::FindLeaf(const Value& key) const {
  Node* node = root_;
  while (node != nullptr && !node->is_leaf) {
    auto* internal = static_cast<InternalNode*>(node);
    // Keys equal to a separator route right (insertion goes after any
    // existing duplicates).
    const size_t idx =
        std::upper_bound(internal->keys.begin(), internal->keys.end(), key,
                         ValueLess) -
        internal->keys.begin();
    node = internal->children[idx];
  }
  return static_cast<LeafNode*>(node);
}

void BPlusTree::InsertIntoParent(Node* node, Value separator,
                                 Node* sibling) {
  InternalNode* parent = node->parent;
  if (parent == nullptr) {
    auto* new_root = new InternalNode();
    new_root->keys.push_back(std::move(separator));
    new_root->children = {node, sibling};
    node->parent = new_root;
    sibling->parent = new_root;
    root_ = new_root;
    ++height_;
    return;
  }
  const size_t pos =
      std::upper_bound(parent->keys.begin(), parent->keys.end(), separator,
                       ValueLess) -
      parent->keys.begin();
  parent->keys.insert(parent->keys.begin() + pos, std::move(separator));
  parent->children.insert(parent->children.begin() + pos + 1, sibling);
  sibling->parent = parent;

  if (static_cast<int>(parent->keys.size()) <= fanout_) return;

  // Split the internal node: the middle separator moves up.
  auto* right = new InternalNode();
  const size_t mid = parent->keys.size() / 2;
  Value up = parent->keys[mid];
  right->keys.assign(parent->keys.begin() + mid + 1, parent->keys.end());
  right->children.assign(parent->children.begin() + mid + 1,
                         parent->children.end());
  parent->keys.resize(mid);
  parent->children.resize(mid + 1);
  for (Node* c : right->children) c->parent = right;
  InsertIntoParent(parent, std::move(up), right);
}

Status BPlusTree::Insert(const Value& key, size_t row_id) {
  if (key.is_null()) {
    return Status::InvalidArgument("NULL keys are not indexable");
  }
  if (root_ == nullptr) {
    auto* leaf = new LeafNode();
    leaf->keys.push_back(key);
    leaf->rids.push_back(row_id);
    root_ = leaf;
    size_ = 1;
    height_ = 1;
    return Status::OK();
  }
  LeafNode* leaf = FindLeaf(key);
  const size_t pos =
      std::upper_bound(leaf->keys.begin(), leaf->keys.end(), key,
                       ValueLess) -
      leaf->keys.begin();
  leaf->keys.insert(leaf->keys.begin() + pos, key);
  leaf->rids.insert(leaf->rids.begin() + pos, row_id);
  ++size_;

  if (static_cast<int>(leaf->keys.size()) <= fanout_) return Status::OK();

  // Split the leaf; the right sibling's first key becomes the separator.
  auto* right = new LeafNode();
  const size_t mid = leaf->keys.size() / 2;
  right->keys.assign(leaf->keys.begin() + mid, leaf->keys.end());
  right->rids.assign(leaf->rids.begin() + mid, leaf->rids.end());
  leaf->keys.resize(mid);
  leaf->rids.resize(mid);
  right->next = leaf->next;
  leaf->next = right;
  InsertIntoParent(leaf, right->keys.front(), right);
  return Status::OK();
}

std::vector<size_t> BPlusTree::Lookup(const Value& key) const {
  return Range(key, true, key, true);
}

std::vector<size_t> BPlusTree::Range(const Value& lo, bool lo_inclusive,
                                     const Value& hi,
                                     bool hi_inclusive) const {
  std::vector<size_t> out;
  if (root_ == nullptr) return out;

  // Descend to the leftmost leaf that can contain a key ≥ lo. With
  // duplicate runs possibly spanning a separator, lower_bound routing
  // lands left of any equal separator, guaranteeing no equal key to the
  // left is missed.
  Node* node = root_;
  while (!node->is_leaf) {
    auto* internal = static_cast<InternalNode*>(node);
    size_t idx = 0;
    if (!lo.is_null()) {
      idx = std::lower_bound(internal->keys.begin(), internal->keys.end(),
                             lo, ValueLess) -
            internal->keys.begin();
    }
    node = internal->children[idx];
  }
  for (auto* leaf = static_cast<LeafNode*>(node); leaf != nullptr;
       leaf = leaf->next) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      const Value& k = leaf->keys[i];
      if (!lo.is_null()) {
        const int c = k.Compare(lo);
        if (c < 0 || (c == 0 && !lo_inclusive)) continue;
      }
      if (!hi.is_null()) {
        const int c = k.Compare(hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return out;
      }
      out.push_back(leaf->rids[i]);
    }
  }
  return out;
}

Status BPlusTree::ValidateNode(const Node* node, const Value* lo,
                               const Value* hi, int depth) const {
  const auto in_bounds = [&](const Value& k) {
    if (lo != nullptr && k.Compare(*lo) < 0) return false;
    if (hi != nullptr && k.Compare(*hi) > 0) return false;
    return true;
  };
  if (node->is_leaf) {
    if (depth != height_) {
      return Status::Internal("leaf at depth ", depth, ", expected ",
                              height_);
    }
    const auto* leaf = static_cast<const LeafNode*>(node);
    if (leaf->keys.size() != leaf->rids.size()) {
      return Status::Internal("leaf key/rid arity mismatch");
    }
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (!in_bounds(leaf->keys[i])) {
        return Status::Internal("leaf key out of separator bounds");
      }
      if (i > 0 && leaf->keys[i].Compare(leaf->keys[i - 1]) < 0) {
        return Status::Internal("leaf keys out of order");
      }
    }
    if (node != root_ &&
        static_cast<int>(leaf->keys.size()) < fanout_ / 3) {
      return Status::Internal("underfull leaf: ", leaf->keys.size(),
                              " keys with fanout ", fanout_);
    }
    return Status::OK();
  }
  const auto* internal = static_cast<const InternalNode*>(node);
  if (internal->children.size() != internal->keys.size() + 1) {
    return Status::Internal("internal child count mismatch");
  }
  if (node != root_ &&
      static_cast<int>(internal->keys.size()) < fanout_ / 3) {
    return Status::Internal("underfull internal node");
  }
  for (size_t i = 0; i < internal->keys.size(); ++i) {
    if (!in_bounds(internal->keys[i])) {
      return Status::Internal("separator out of bounds");
    }
    if (i > 0 && internal->keys[i].Compare(internal->keys[i - 1]) < 0) {
      return Status::Internal("separators out of order");
    }
  }
  for (size_t i = 0; i < internal->children.size(); ++i) {
    if (internal->children[i]->parent != internal) {
      return Status::Internal("broken parent pointer");
    }
    const Value* child_lo = i == 0 ? lo : &internal->keys[i - 1];
    const Value* child_hi =
        i == internal->keys.size() ? hi : &internal->keys[i];
    GISQL_RETURN_NOT_OK(
        ValidateNode(internal->children[i], child_lo, child_hi, depth + 1));
  }
  return Status::OK();
}

Status BPlusTree::Validate() const {
  if (root_ == nullptr) {
    if (size_ != 0 || height_ != 0) {
      return Status::Internal("empty tree with nonzero bookkeeping");
    }
    return Status::OK();
  }
  GISQL_RETURN_NOT_OK(ValidateNode(root_, nullptr, nullptr, 1));
  // Leaf chain: globally sorted, and covers exactly `size_` entries.
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const InternalNode*>(node)->children[0];
  }
  size_t count = 0;
  const Value* prev = nullptr;
  for (const auto* leaf = static_cast<const LeafNode*>(node);
       leaf != nullptr; leaf = leaf->next) {
    for (const auto& k : leaf->keys) {
      if (prev != nullptr && k.Compare(*prev) < 0) {
        return Status::Internal("leaf chain out of order");
      }
      prev = &k;
      ++count;
    }
  }
  if (count != size_) {
    return Status::Internal("leaf chain holds ", count, " entries, size_=",
                            size_);
  }
  return Status::OK();
}

}  // namespace gisql
