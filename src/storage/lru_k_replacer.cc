#include "storage/lru_k_replacer.h"

#include <limits>

namespace gisql {

LruKReplacer::LruKReplacer(size_t num_frames, size_t k)
    : num_frames_(num_frames), k_(k == 0 ? 1 : k) {}

void LruKReplacer::RecordAccess(size_t frame_id) {
  if (frame_id >= num_frames_) return;
  FrameInfo& info = frames_[frame_id];
  info.history.push_back(++current_tick_);
  if (info.history.size() > k_) info.history.pop_front();
}

void LruKReplacer::SetEvictable(size_t frame_id, bool evictable) {
  auto it = frames_.find(frame_id);
  if (it == frames_.end()) return;
  it->second.evictable = evictable;
}

bool LruKReplacer::Evict(size_t* frame_id) {
  constexpr uint64_t kInf = std::numeric_limits<uint64_t>::max();
  bool found = false;
  size_t victim = 0;
  // Among frames with < k accesses, backward k-distance is infinite and
  // the earliest *overall* (= earliest recorded) access loses; among
  // fully-historied frames, the smallest k-th-recent tick (= largest
  // backward k-distance) loses. Lower (distance-class, tiebreak-tick)
  // never beats higher, so one linear pass with a two-part key works.
  uint64_t best_kth = 0;    // k-th most recent tick of current victim
  bool best_inf = false;    // current victim in the +inf class?
  uint64_t best_oldest = kInf;  // oldest tick (ties within +inf class)
  for (const auto& [id, info] : frames_) {
    if (!info.evictable || info.history.empty()) continue;
    const bool inf = info.history.size() < k_;
    if (inf) {
      const uint64_t oldest = info.history.front();
      if (!found || !best_inf || oldest < best_oldest) {
        found = true;
        victim = id;
        best_inf = true;
        best_oldest = oldest;
      }
    } else if (!found || (!best_inf && info.history.front() < best_kth)) {
      // history.front() is the k-th most recent access (deque holds the
      // last k ticks, oldest first). +inf frames always win over these.
      found = true;
      victim = id;
      best_inf = false;
      best_kth = info.history.front();
    }
  }
  if (!found) return false;
  frames_.erase(victim);
  if (frame_id != nullptr) *frame_id = victim;
  return true;
}

void LruKReplacer::Remove(size_t frame_id) { frames_.erase(frame_id); }

size_t LruKReplacer::Size() const {
  size_t n = 0;
  for (const auto& [id, info] : frames_) {
    if (info.evictable) ++n;
  }
  return n;
}

}  // namespace gisql
