#include "storage/table.h"

#include <algorithm>

#include "common/string_util.h"
#include "expr/eval.h"

namespace gisql {

void HashIndex::Build(const std::vector<Row>& rows) {
  map_.clear();
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value& v = rows[i][column_];
    if (v.is_null()) continue;
    map_[v].push_back(i);
  }
  built_row_count_ = rows.size();
}

const std::vector<size_t>& HashIndex::Lookup(const Value& key) const {
  static const std::vector<size_t> kEmpty;
  if (key.is_null()) return kEmpty;
  auto it = map_.find(key);
  return it == map_.end() ? kEmpty : it->second;
}

void OrderedIndex::Build(const std::vector<Row>& rows) {
  tree_.Clear();
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value& v = rows[i][column_];
    if (v.is_null()) continue;
    // Insert cannot fail for non-NULL keys.
    (void)tree_.Insert(v, i);
  }
  built_row_count_ = rows.size();
}

std::vector<size_t> OrderedIndex::Range(const Value& lo, bool lo_inclusive,
                                        const Value& hi,
                                        bool hi_inclusive) const {
  return tree_.Range(lo, lo_inclusive, hi, hi_inclusive);
}

Result<Row> Table::ValidateRow(Row row) const {
  if (row.size() != schema_->num_fields()) {
    return Status::InvalidArgument("row arity ", row.size(),
                                   " does not match table '", name_,
                                   "' schema arity ", schema_->num_fields());
  }
  for (size_t c = 0; c < row.size(); ++c) {
    const Field& f = schema_->field(c);
    if (row[c].is_null()) {
      if (!f.nullable) {
        return Status::InvalidArgument("NULL in non-nullable column '",
                                       f.name, "' of table '", name_, "'");
      }
      row[c] = Value::Null(f.type);
      continue;
    }
    if (row[c].type() != f.type) {
      if (!IsImplicitlyCastable(row[c].type(), f.type)) {
        return Status::InvalidArgument(
            "type mismatch in column '", f.name, "': expected ",
            TypeName(f.type), ", got ", TypeName(row[c].type()));
      }
      GISQL_ASSIGN_OR_RETURN(row[c], row[c].CastTo(f.type));
    }
  }
  return row;
}

Status Table::Insert(Row row) {
  GISQL_ASSIGN_OR_RETURN(Row validated, ValidateRow(std::move(row)));
  rows_.push_back(std::move(validated));
  stats_valid_ = false;
  return Status::OK();
}

void Table::InsertUnchecked(std::vector<Row> rows) {
  if (rows_.empty()) {
    rows_ = std::move(rows);
  } else {
    rows_.reserve(rows_.size() + rows.size());
    for (auto& r : rows) rows_.push_back(std::move(r));
  }
  stats_valid_ = false;
}

Result<int64_t> Table::Delete(const Expr& predicate) {
  int64_t removed = 0;
  std::vector<Row> kept;
  kept.reserve(rows_.size());
  for (auto& row : rows_) {
    GISQL_ASSIGN_OR_RETURN(bool match, EvalPredicate(predicate, row));
    if (match) {
      ++removed;
    } else {
      kept.push_back(std::move(row));
    }
  }
  rows_ = std::move(kept);
  stats_valid_ = false;
  return removed;
}

Status Table::CreateHashIndex(size_t column) {
  if (column >= schema_->num_fields()) {
    return Status::InvalidArgument("index column ", column,
                                   " out of range for table '", name_, "'");
  }
  for (const auto& idx : hash_indexes_) {
    if (idx->column() == column) {
      return Status::AlreadyExists("hash index on column ", column,
                                   " already exists");
    }
  }
  hash_indexes_.push_back(std::make_unique<HashIndex>(column));
  return Status::OK();
}

Status Table::CreateOrderedIndex(size_t column) {
  if (column >= schema_->num_fields()) {
    return Status::InvalidArgument("index column ", column,
                                   " out of range for table '", name_, "'");
  }
  for (const auto& idx : ordered_indexes_) {
    if (idx->column() == column) {
      return Status::AlreadyExists("ordered index on column ", column,
                                   " already exists");
    }
  }
  ordered_indexes_.push_back(std::make_unique<OrderedIndex>(column));
  return Status::OK();
}

HashIndex* Table::GetHashIndex(size_t column) {
  for (auto& idx : hash_indexes_) {
    if (idx->column() == column) {
      if (idx->built_row_count() != rows_.size()) idx->Build(rows_);
      return idx.get();
    }
  }
  return nullptr;
}

OrderedIndex* Table::GetOrderedIndex(size_t column) {
  for (auto& idx : ordered_indexes_) {
    if (idx->column() == column) {
      if (idx->built_row_count() != rows_.size()) idx->Build(rows_);
      return idx.get();
    }
  }
  return nullptr;
}

const TableStats& Table::Stats() {
  if (!stats_valid_) {
    stats_ = CollectStats(*schema_, rows_);
    stats_valid_ = true;
  }
  return stats_;
}

Result<TablePtr> StorageEngine::CreateTable(const std::string& name,
                                            SchemaPtr schema) {
  const std::string key = ToLower(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table '", name, "' already exists");
  }
  auto table = std::make_shared<Table>(name, std::move(schema));
  tables_[key] = table;
  return table;
}

Result<TablePtr> StorageEngine::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '", name, "' does not exist");
  }
  return it->second;
}

Status StorageEngine::DropTable(const std::string& name) {
  if (tables_.erase(ToLower(name)) == 0) {
    return Status::NotFound("table '", name, "' does not exist");
  }
  return Status::OK();
}

std::vector<std::string> StorageEngine::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace gisql
