#include "storage/table.h"

#include <algorithm>

#include "common/string_util.h"
#include "expr/eval.h"

namespace gisql {

void HashIndex::Build(const std::vector<Row>& rows) {
  map_.clear();
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value& v = rows[i][column_];
    if (v.is_null()) continue;
    map_[v].push_back(i);
  }
  built_row_count_ = rows.size();
}

const std::vector<size_t>& HashIndex::Lookup(const Value& key) const {
  static const std::vector<size_t> kEmpty;
  if (key.is_null()) return kEmpty;
  auto it = map_.find(key);
  return it == map_.end() ? kEmpty : it->second;
}

void OrderedIndex::Build(const std::vector<Row>& rows) {
  tree_.Clear();
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value& v = rows[i][column_];
    if (v.is_null()) continue;
    // Insert cannot fail for non-NULL keys.
    (void)tree_.Insert(v, i);
  }
  built_row_count_ = rows.size();
}

std::vector<size_t> OrderedIndex::Range(const Value& lo, bool lo_inclusive,
                                        const Value& hi,
                                        bool hi_inclusive) const {
  return tree_.Range(lo, lo_inclusive, hi, hi_inclusive);
}

Table::Table(std::string name, SchemaPtr schema, BufferPoolPtr pool)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      pool_(pool != nullptr
                ? std::move(pool)
                : std::make_shared<BufferPoolManager>(StorageConfig::FromEnv())),
      heap_(pool_, schema_) {}

std::vector<Row> Table::rows() {
  std::vector<Row> out;
  out.reserve(static_cast<size_t>(heap_.num_rows()));
  (void)heap_.Scan([&](size_t, const Row& row) {
    out.push_back(row);
    return Status::OK();
  });
  return out;
}

Result<Row> Table::ValidateRow(Row row) const {
  if (row.size() != schema_->num_fields()) {
    return Status::InvalidArgument("row arity ", row.size(),
                                   " does not match table '", name_,
                                   "' schema arity ", schema_->num_fields());
  }
  for (size_t c = 0; c < row.size(); ++c) {
    const Field& f = schema_->field(c);
    if (row[c].is_null()) {
      if (!f.nullable) {
        return Status::InvalidArgument("NULL in non-nullable column '",
                                       f.name, "' of table '", name_, "'");
      }
      row[c] = Value::Null(f.type);
      continue;
    }
    if (row[c].type() != f.type) {
      if (!IsImplicitlyCastable(row[c].type(), f.type)) {
        return Status::InvalidArgument(
            "type mismatch in column '", f.name, "': expected ",
            TypeName(f.type), ", got ", TypeName(row[c].type()));
      }
      GISQL_ASSIGN_OR_RETURN(row[c], row[c].CastTo(f.type));
    }
  }
  return row;
}

void Table::SyncVersions(uint64_t begin_ts) {
  versions_.resize(static_cast<size_t>(heap_.num_rows()),
                   RowVersion{begin_ts, kMaxTimestamp});
}

Status Table::Insert(Row row) {
  GISQL_ASSIGN_OR_RETURN(Row validated, ValidateRow(std::move(row)));
  GISQL_RETURN_NOT_OK(heap_.Append(validated).status());
  SyncVersions(0);
  ++epoch_;
  stats_valid_ = false;
  return Status::OK();
}

Status Table::InsertUnchecked(std::vector<Row> rows) {
  GISQL_RETURN_NOT_OK(heap_.AppendBatch(rows));
  SyncVersions(0);
  ++epoch_;
  stats_valid_ = false;
  return Status::OK();
}

Status Table::InsertVersioned(std::vector<Row> rows, uint64_t begin_ts) {
  GISQL_RETURN_NOT_OK(heap_.AppendBatch(rows));
  SyncVersions(begin_ts);
  ++epoch_;
  stats_valid_ = false;
  return Status::OK();
}

void Table::MarkDeleted(size_t rid, uint64_t end_ts) {
  if (rid >= versions_.size()) SyncVersions(0);
  if (rid >= versions_.size()) return;
  if (versions_[rid].end_ts != kMaxTimestamp) return;  // already dead
  versions_[rid].end_ts = end_ts;
  // The heap and the indexes are untouched (the row is still
  // physically present); only statistics go stale.
  stats_valid_ = false;
}

bool Table::VisibleAt(size_t rid, uint64_t snapshot_ts) const {
  if (rid >= versions_.size()) {
    // Rows appended before any version bookkeeping existed: live,
    // born at 0.
    return true;
  }
  const RowVersion& v = versions_[rid];
  if (snapshot_ts == 0) return v.end_ts == kMaxTimestamp;
  return v.begin_ts <= snapshot_ts && snapshot_ts < v.end_ts;
}

RowVersion Table::VersionOf(size_t rid) const {
  return rid < versions_.size() ? versions_[rid] : RowVersion{};
}

Result<int64_t> Table::GcToWatermark(uint64_t watermark) {
  SyncVersions(0);
  // Fast path on the in-memory metadata: no reclaimable version, no
  // page access.
  bool any_dead = false;
  for (const RowVersion& v : versions_) {
    if (v.end_ts != kMaxTimestamp && v.end_ts <= watermark) {
      any_dead = true;
      break;
    }
  }
  if (!any_dead) return 0;
  int64_t removed = 0;
  std::vector<Row> kept;
  std::vector<RowVersion> kept_versions;
  kept.reserve(versions_.size());
  kept_versions.reserve(versions_.size());
  GISQL_RETURN_NOT_OK(heap_.Scan([&](size_t rid, const Row& row) {
    const RowVersion& v = versions_[rid];
    if (v.end_ts != kMaxTimestamp && v.end_ts <= watermark) {
      ++removed;
    } else {
      kept.push_back(row);
      kept_versions.push_back(v);
    }
    return Status::OK();
  }));
  GISQL_RETURN_NOT_OK(heap_.Replace(kept));
  versions_ = std::move(kept_versions);
  ++epoch_;
  stats_valid_ = false;
  return removed;
}

Result<int64_t> Table::Delete(const Expr& predicate) {
  SyncVersions(0);
  int64_t removed = 0;
  std::vector<Row> kept;
  std::vector<RowVersion> kept_versions;
  kept.reserve(static_cast<size_t>(heap_.num_rows()));
  GISQL_RETURN_NOT_OK(heap_.Scan([&](size_t rid, const Row& row) {
    GISQL_ASSIGN_OR_RETURN(bool match, EvalPredicate(predicate, row));
    if (match) {
      ++removed;
    } else {
      kept.push_back(row);
      kept_versions.push_back(versions_[rid]);
    }
    return Status::OK();
  }));
  GISQL_RETURN_NOT_OK(heap_.Replace(kept));
  versions_ = std::move(kept_versions);
  ++epoch_;
  stats_valid_ = false;
  return removed;
}

Status Table::CreateHashIndex(size_t column) {
  if (column >= schema_->num_fields()) {
    return Status::InvalidArgument("index column ", column,
                                   " out of range for table '", name_, "'");
  }
  for (const auto& idx : hash_indexes_) {
    if (idx->column() == column) {
      return Status::AlreadyExists("hash index on column ", column,
                                   " already exists");
    }
  }
  hash_indexes_.push_back(std::make_unique<HashIndex>(column));
  hash_epochs_.push_back(epoch_ - 1);  // force first build
  return Status::OK();
}

Status Table::CreateOrderedIndex(size_t column) {
  if (column >= schema_->num_fields()) {
    return Status::InvalidArgument("index column ", column,
                                   " out of range for table '", name_, "'");
  }
  for (const auto& idx : ordered_indexes_) {
    if (idx->column() == column) {
      return Status::AlreadyExists("ordered index on column ", column,
                                   " already exists");
    }
  }
  ordered_indexes_.push_back(std::make_unique<OrderedIndex>(column));
  ordered_epochs_.push_back(epoch_ - 1);  // force first build
  return Status::OK();
}

HashIndex* Table::GetHashIndex(size_t column) {
  for (size_t i = 0; i < hash_indexes_.size(); ++i) {
    if (hash_indexes_[i]->column() == column) {
      if (hash_epochs_[i] != epoch_) {
        hash_indexes_[i]->Build(rows());  // full scan through the pool
        hash_epochs_[i] = epoch_;
      }
      return hash_indexes_[i].get();
    }
  }
  return nullptr;
}

OrderedIndex* Table::GetOrderedIndex(size_t column) {
  for (size_t i = 0; i < ordered_indexes_.size(); ++i) {
    if (ordered_indexes_[i]->column() == column) {
      if (ordered_epochs_[i] != epoch_) {
        ordered_indexes_[i]->Build(rows());  // full scan through the pool
        ordered_epochs_[i] = epoch_;
      }
      return ordered_indexes_[i].get();
    }
  }
  return nullptr;
}

std::vector<int64_t> Table::HashIndexedColumns() const {
  std::vector<int64_t> cols;
  cols.reserve(hash_indexes_.size());
  for (const auto& idx : hash_indexes_) {
    cols.push_back(static_cast<int64_t>(idx->column()));
  }
  std::sort(cols.begin(), cols.end());
  return cols;
}

std::vector<int64_t> Table::OrderedIndexedColumns() const {
  std::vector<int64_t> cols;
  cols.reserve(ordered_indexes_.size());
  for (const auto& idx : ordered_indexes_) {
    cols.push_back(static_cast<int64_t>(idx->column()));
  }
  std::sort(cols.begin(), cols.end());
  return cols;
}

const TableStats& Table::Stats() {
  if (!stats_valid_) {
    stats_ = CollectStats(*schema_, rows());
    stats_.hash_indexed_columns = HashIndexedColumns();
    stats_.ordered_indexed_columns = OrderedIndexedColumns();
    stats_valid_ = true;
  }
  return stats_;
}

Result<TablePtr> StorageEngine::CreateTable(const std::string& name,
                                            SchemaPtr schema) {
  const std::string key = ToLower(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table '", name, "' already exists");
  }
  auto table = std::make_shared<Table>(name, std::move(schema), pool_);
  tables_[key] = table;
  return table;
}

Result<TablePtr> StorageEngine::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '", name, "' does not exist");
  }
  return it->second;
}

Status StorageEngine::DropTable(const std::string& name) {
  if (tables_.erase(ToLower(name)) == 0) {
    return Status::NotFound("table '", name, "' does not exist");
  }
  return Status::OK();
}

std::vector<std::string> StorageEngine::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace gisql
