/// \file storage_config.h
/// \brief Tuning knobs for the paged storage engine each component
/// source runs: page geometry, buffer-pool size, LRU-K depth, and the
/// simulated disk's per-I/O latency.
///
/// Latencies are *simulated* microseconds charged on the virtual clock
/// (like every other cost in gisql) so out-of-core runs replay
/// byte-identically: a miss costs the same virtual time on every rerun
/// regardless of the host machine.

#pragma once

#include <cstddef>

namespace gisql {

/// \brief Configuration for one source's pages, pool, and disk.
struct StorageConfig {
  /// Bytes per page (GISQL_PAGE_SIZE). Rows are slotted into pages;
  /// a row larger than a page gets a private oversized page.
  size_t page_size = 8192;

  /// Buffer-pool capacity in frames (GISQL_BUFFER_POOL_FRAMES).
  /// Frames are allocated lazily and charged against the global
  /// MemoryBudget as the working set grows.
  size_t pool_frames = 64;

  /// LRU-K history depth (GISQL_LRUK_K). K=1 degenerates to LRU;
  /// K=2 (the default) resists sequential-scan pollution.
  size_t lruk_k = 2;

  /// Simulated microseconds charged per page read (GISQL_DISK_READ_US).
  double disk_read_us = 100.0;

  /// Simulated microseconds charged per page write (GISQL_DISK_WRITE_US).
  double disk_write_us = 100.0;

  /// \brief Defaults overridden from GISQL_* environment variables
  /// (unset or unparsable values keep the field, mirroring
  /// PlannerOptions::ApplyEnv).
  static StorageConfig FromEnv();
};

}  // namespace gisql
