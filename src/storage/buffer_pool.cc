#include "storage/buffer_pool.h"

#include <limits>
#include <utility>

namespace gisql {

BufferPoolManager::BufferPoolManager(const StorageConfig& config,
                                     MemoryBudget* budget)
    : config_(config),
      disk_(config.disk_read_us, config.disk_write_us),
      replacer_(config.pool_frames, config.lruk_k) {
  if (budget != nullptr) {
    // The pool is mediator-lifetime state, not one query's
    // materialization, so it carries its own uncapped-per-"query"
    // grant: only the global cap gates growth.
    grant_ = MemoryGrant(budget, std::numeric_limits<int64_t>::max());
  }
  frames_.reserve(config_.pool_frames);
}

Result<size_t> BufferPoolManager::AcquireFrame() {
  if (!free_frames_.empty()) {
    const size_t frame_id = free_frames_.back();
    free_frames_.pop_back();
    return frame_id;
  }
  if (frames_.size() < config_.pool_frames) {
    if (grant_.active()) {
      const Status charged = grant_.Charge(
          static_cast<int64_t>(config_.page_size), "buffer pool frame");
      if (!charged.ok()) {
        return Status::Overloaded(
            "buffer pool cannot grow to frame ", frames_.size() + 1, " of ",
            config_.pool_frames, " (", config_.page_size,
            " B/frame): global memory budget exhausted — raise "
            "GISQL_MEDIATOR_MEM_BYTES or lower GISQL_BUFFER_POOL_FRAMES/"
            "GISQL_PAGE_SIZE [", charged.message(), "]");
      }
    }
    frames_.emplace_back();
    return frames_.size() - 1;
  }
  size_t victim = 0;
  if (!replacer_.Evict(&victim)) {
    return Status::Overloaded(
        "buffer pool exhausted: all ", config_.pool_frames,
        " frames are pinned — raise GISQL_BUFFER_POOL_FRAMES");
  }
  Frame& frame = frames_[victim];
  if (frame.dirty) {
    disk_.WritePage(frame.page_id, std::move(frame.data));
  }
  page_table_.erase(frame.page_id);
  frame = Frame{};
  ++evictions_;
  return victim;
}

Result<std::vector<uint8_t>*> BufferPoolManager::FetchPage(uint64_t page_id) {
  if (auto it = page_table_.find(page_id); it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    ++hits_;
    ++frame.pin_count;
    replacer_.RecordAccess(it->second);
    replacer_.SetEvictable(it->second, false);
    return &frame.data;
  }
  ++misses_;
  GISQL_ASSIGN_OR_RETURN(size_t frame_id, AcquireFrame());
  GISQL_ASSIGN_OR_RETURN(std::vector<uint8_t> data, disk_.ReadPage(page_id));
  Frame& frame = frames_[frame_id];
  frame.page_id = page_id;
  frame.data = std::move(data);
  frame.pin_count = 1;
  frame.dirty = false;
  frame.in_use = true;
  page_table_[page_id] = frame_id;
  replacer_.RecordAccess(frame_id);
  replacer_.SetEvictable(frame_id, false);
  return &frame.data;
}

Result<uint64_t> BufferPoolManager::NewPage(std::vector<uint8_t>** data) {
  GISQL_ASSIGN_OR_RETURN(size_t frame_id, AcquireFrame());
  const uint64_t page_id = disk_.AllocatePage();
  ++pages_live_;
  Frame& frame = frames_[frame_id];
  frame.page_id = page_id;
  frame.data.clear();
  frame.pin_count = 1;
  frame.dirty = true;  // never hit disk yet: eviction must write it
  frame.in_use = true;
  page_table_[page_id] = frame_id;
  replacer_.RecordAccess(frame_id);
  replacer_.SetEvictable(frame_id, false);
  if (data != nullptr) *data = &frame.data;
  return page_id;
}

void BufferPoolManager::UnpinPage(uint64_t page_id, bool dirty) {
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return;
  Frame& frame = frames_[it->second];
  if (dirty) frame.dirty = true;
  if (frame.pin_count > 0 && --frame.pin_count == 0) {
    replacer_.SetEvictable(it->second, true);
  }
}

void BufferPoolManager::FlushAll() {
  // Flush in frame order so disk write counts replay identically.
  for (Frame& frame : frames_) {
    if (frame.in_use && frame.dirty) {
      disk_.WritePage(frame.page_id, frame.data);
      frame.dirty = false;
    }
  }
}

void BufferPoolManager::DeletePage(uint64_t page_id) {
  if (auto it = page_table_.find(page_id); it != page_table_.end()) {
    const size_t frame_id = it->second;
    Frame& frame = frames_[frame_id];
    if (frame.pin_count > 0) return;  // caller bug; keep the page
    replacer_.Remove(frame_id);
    page_table_.erase(it);
    frame = Frame{};
    free_frames_.push_back(frame_id);
  }
  disk_.DeletePage(page_id);
  --pages_live_;
}

BufferPoolStats BufferPoolManager::Snapshot() const {
  BufferPoolStats s;
  s.page_size = static_cast<int64_t>(config_.page_size);
  s.pool_frames = static_cast<int64_t>(config_.pool_frames);
  s.frames_used = static_cast<int64_t>(page_table_.size());
  for (const Frame& f : frames_) {
    if (f.in_use && f.pin_count > 0) ++s.pinned_frames;
  }
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.disk_reads = disk_.reads();
  s.disk_writes = disk_.writes();
  s.pages_on_disk = disk_.num_pages();
  s.pages_live = pages_live_;
  s.disk_us = disk_.io_us();
  return s;
}

}  // namespace gisql
