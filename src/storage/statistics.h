/// \file statistics.h
/// \brief Table/column statistics collected by component sources and
/// exported to the mediator's catalog for cost-based planning.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "types/row.h"
#include "types/schema.h"
#include "types/value.h"

namespace gisql {

/// \brief Statistics for one column.
struct ColumnStats {
  Value min;            ///< NULL when the column is all-NULL or empty
  Value max;
  int64_t null_count = 0;
  int64_t distinct_count = 0;  ///< exact for these table sizes
  double avg_width = 8.0;      ///< average wire width in bytes

  /// Equi-depth histogram bucket edges (ascending, k buckets → k+1
  /// edges, first = min, last = max). Empty when the column has too few
  /// values or is non-orderable.
  std::vector<Value> histogram_bounds;

  /// \brief Estimated fraction of non-null values strictly below `v`,
  /// from the histogram with linear interpolation inside the bucket.
  /// Returns -1 when no histogram is available.
  double FractionBelow(const Value& v) const;

  std::string ToString() const;
};

/// \brief Statistics for one table.
struct TableStats {
  int64_t row_count = 0;
  std::vector<ColumnStats> columns;

  /// Columns carrying a hash / ordered secondary index at the source
  /// (sorted). Exported so the mediator's planner can target index
  /// range scans and index-nested-loop joins at real access paths.
  std::vector<int64_t> hash_indexed_columns;
  std::vector<int64_t> ordered_indexed_columns;

  /// \brief Estimated selectivity of `col = literal` from distinct count.
  double EqSelectivity(size_t col) const;

  /// \brief Estimated selectivity of `col < literal` (or >) by linear
  /// interpolation over [min, max] for numeric columns; 1/3 otherwise.
  double RangeSelectivity(size_t col, const Value& bound, bool less_than,
                          bool inclusive) const;

  std::string ToString() const;
};

/// Number of equi-depth histogram buckets collected per column.
inline constexpr int kHistogramBuckets = 32;

/// \brief Exact single-pass statistics collection over a row set
/// (plus a sort per column for the equi-depth histograms).
TableStats CollectStats(const Schema& schema, const std::vector<Row>& rows);

}  // namespace gisql
