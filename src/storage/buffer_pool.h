/// \file buffer_pool.h
/// \brief Fixed-capacity buffer pool with LRU-K replacement over the
/// simulated disk.
///
/// Each component source's storage engine owns one pool shared by its
/// tables. Frames are allocated lazily as the working set grows, each
/// allocation charged against the mediator's global MemoryBudget so
/// pool growth and query grants share one accounting regime. Misses
/// and dirty-page writebacks charge the SimDisk's virtual latency, so
/// out-of-core access patterns cost deterministic simulated time and
/// replay byte-identically.

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "sched/memory_budget.h"
#include "storage/lru_k_replacer.h"
#include "storage/sim_disk.h"
#include "storage/storage_config.h"

namespace gisql {

/// \brief One monotonic counter snapshot of a pool (plus geometry).
struct BufferPoolStats {
  int64_t page_size = 0;
  int64_t pool_frames = 0;
  int64_t frames_used = 0;
  int64_t pinned_frames = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t disk_reads = 0;
  int64_t disk_writes = 0;
  int64_t pages_on_disk = 0;  ///< pages holding a flushed disk image
  int64_t pages_live = 0;     ///< pages allocated and not yet deleted —
                              ///< the store's logical size in pages
  double disk_us = 0.0;  ///< virtual I/O time charged so far
};

class BufferPoolManager {
 public:
  /// \param budget global memory budget frames are charged against
  ///        (nullptr = uncharged, for standalone tables in tests/bench)
  explicit BufferPoolManager(const StorageConfig& config,
                             MemoryBudget* budget = nullptr);

  size_t page_size() const { return config_.page_size; }
  const StorageConfig& config() const { return config_; }
  SimDisk& disk() { return disk_; }

  /// \brief Pins `page_id` into a frame, reading it from disk on a miss
  /// (evicting a victim when the pool is full, writing it back if
  /// dirty). The returned byte image stays valid while pinned.
  Result<std::vector<uint8_t>*> FetchPage(uint64_t page_id);

  /// \brief Allocates a fresh empty page, pinned and dirty.
  Result<uint64_t> NewPage(std::vector<uint8_t>** data);

  /// \brief Drops a pin; `dirty` marks the page modified since fetch.
  void UnpinPage(uint64_t page_id, bool dirty);

  /// \brief Writes every dirty resident page to disk (pages stay
  /// resident and clean).
  void FlushAll();

  /// \brief Removes an unpinned page from the pool and the disk.
  void DeletePage(uint64_t page_id);

  BufferPoolStats Snapshot() const;

  /// \brief Frame bytes charged against the memory budget so far.
  /// Frames are never returned, so this only grows.
  int64_t resident_bytes() const { return grant_.used(); }

 private:
  struct Frame {
    uint64_t page_id = 0;
    std::vector<uint8_t> data;
    int pin_count = 0;
    bool dirty = false;
    bool in_use = false;  ///< holds a page (frames are never returned)
  };

  /// Picks a frame for a new resident page: an unused frame if the pool
  /// may still grow (charging the budget), else an LRU-K victim
  /// (writing it back if dirty).
  Result<size_t> AcquireFrame();

  StorageConfig config_;
  SimDisk disk_;
  LruKReplacer replacer_;
  MemoryGrant grant_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;  ///< frames emptied by DeletePage
  std::unordered_map<uint64_t, size_t> page_table_;  ///< page id → frame
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t pages_live_ = 0;
};

using BufferPoolPtr = std::shared_ptr<BufferPoolManager>;

}  // namespace gisql
