#include "storage/statistics.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace gisql {

double ColumnStats::FractionBelow(const Value& v) const {
  if (histogram_bounds.size() < 2 || v.is_null()) return -1.0;
  const size_t buckets = histogram_bounds.size() - 1;
  if (v.Compare(histogram_bounds.front()) <= 0) return 0.0;
  if (v.Compare(histogram_bounds.back()) > 0) return 1.0;
  for (size_t b = 0; b < buckets; ++b) {
    const Value& lo = histogram_bounds[b];
    const Value& hi = histogram_bounds[b + 1];
    if (v.Compare(hi) > 0) continue;
    double within = 0.5;  // midpoint when we cannot interpolate
    if (IsNumeric(v.type()) && IsNumeric(lo.type()) &&
        hi.NumericValue() > lo.NumericValue()) {
      within = (v.NumericValue() - lo.NumericValue()) /
               (hi.NumericValue() - lo.NumericValue());
      within = std::clamp(within, 0.0, 1.0);
    }
    return (static_cast<double>(b) + within) /
           static_cast<double>(buckets);
  }
  return 1.0;
}

std::string ColumnStats::ToString() const {
  std::ostringstream oss;
  oss << "{min=" << min.ToString() << ", max=" << max.ToString()
      << ", nulls=" << null_count << ", ndv=" << distinct_count
      << (histogram_bounds.empty() ? "" : ", hist") << "}";
  return oss.str();
}

double TableStats::EqSelectivity(size_t col) const {
  if (row_count == 0) return 0.0;
  if (col >= columns.size() || columns[col].distinct_count <= 0) {
    return 0.1;  // default guess
  }
  return 1.0 / static_cast<double>(columns[col].distinct_count);
}

double TableStats::RangeSelectivity(size_t col, const Value& bound,
                                    bool less_than, bool inclusive) const {
  if (row_count == 0) return 0.0;
  if (col >= columns.size()) return 1.0 / 3.0;
  const ColumnStats& cs = columns[col];
  if (cs.min.is_null() || cs.max.is_null() || bound.is_null() ||
      !IsNumeric(bound.type()) || !IsNumeric(cs.min.type())) {
    return 1.0 / 3.0;
  }
  const double lo = cs.min.NumericValue();
  const double hi = cs.max.NumericValue();
  const double b = bound.NumericValue();
  // Inverted bounds are corrupt statistics — default guess. A
  // single-point column (hi == lo) is exact: every row holds `lo`, so
  // the range predicate is satisfied by all rows or by none. (The old
  // expression here parsed as `((b >= lo) == less_than) || b == lo`
  // thanks to comparison-over-equality precedence and answered 1.0 for
  // provably-empty ranges.)
  if (hi < lo) return 1.0 / 3.0;
  if (hi == lo) {
    const bool satisfied = less_than ? (inclusive ? b >= lo : b > lo)
                                     : (inclusive ? b <= lo : b < lo);
    return satisfied ? 1.0 : 0.0;
  }
  double frac = (b - lo) / (hi - lo);
  if (!less_than) frac = 1.0 - frac;
  // Nudge for inclusivity at one-point granularity.
  if (inclusive && cs.distinct_count > 0) {
    frac += 1.0 / static_cast<double>(cs.distinct_count);
  }
  if (frac < 0.0) frac = 0.0;
  if (frac > 1.0) frac = 1.0;
  return frac;
}

std::string TableStats::ToString() const {
  std::ostringstream oss;
  oss << "rows=" << row_count << " [";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i) oss << ", ";
    oss << i << ":" << columns[i].ToString();
  }
  oss << "]";
  return oss.str();
}

TableStats CollectStats(const Schema& schema, const std::vector<Row>& rows) {
  TableStats stats;
  stats.row_count = static_cast<int64_t>(rows.size());
  const size_t ncols = schema.num_fields();
  stats.columns.resize(ncols);
  std::vector<std::unordered_set<uint64_t>> distinct(ncols);
  std::vector<int64_t> width_sums(ncols, 0);
  for (const auto& row : rows) {
    for (size_t c = 0; c < ncols && c < row.size(); ++c) {
      ColumnStats& cs = stats.columns[c];
      const Value& v = row[c];
      if (v.is_null()) {
        ++cs.null_count;
        continue;
      }
      if (cs.min.is_null() || v.Compare(cs.min) < 0) cs.min = v;
      if (cs.max.is_null() || v.Compare(cs.max) > 0) cs.max = v;
      distinct[c].insert(v.Hash());
      width_sums[c] += v.WireSize();
    }
  }
  for (size_t c = 0; c < ncols; ++c) {
    stats.columns[c].distinct_count =
        static_cast<int64_t>(distinct[c].size());
    const int64_t non_null = stats.row_count - stats.columns[c].null_count;
    stats.columns[c].avg_width =
        non_null > 0 ? static_cast<double>(width_sums[c]) /
                           static_cast<double>(non_null)
                     : static_cast<double>(EstimatedWireSize(
                           schema.field(c).type));
    // Equi-depth histogram for orderable columns with enough values.
    if (non_null >= kHistogramBuckets * 2 &&
        schema.field(c).type != TypeId::kBool) {
      std::vector<const Value*> sorted;
      sorted.reserve(static_cast<size_t>(non_null));
      for (const auto& row : rows) {
        if (c < row.size() && !row[c].is_null()) sorted.push_back(&row[c]);
      }
      std::sort(sorted.begin(), sorted.end(),
                [](const Value* a, const Value* b) {
                  return a->Compare(*b) < 0;
                });
      auto& bounds = stats.columns[c].histogram_bounds;
      bounds.reserve(kHistogramBuckets + 1);
      for (int b = 0; b <= kHistogramBuckets; ++b) {
        const size_t idx = std::min(
            sorted.size() - 1,
            static_cast<size_t>(b) * sorted.size() / kHistogramBuckets);
        bounds.push_back(*sorted[idx]);
      }
    }
  }
  return stats;
}

}  // namespace gisql
