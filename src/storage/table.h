/// \file table.h
/// \brief Page-backed heap table with optional hash / ordered secondary
/// indexes — the storage layer each autonomous component system runs.
///
/// Rows live in buffer-pool pages (storage/paged_heap.h), so every
/// access — point read, scan, index build — charges page hits/misses
/// and virtual disk time. Indexes map values to row ids and are rebuilt
/// lazily after writes; row ids are positions in the heap file.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/paged_heap.h"
#include "storage/statistics.h"
#include "storage/storage_config.h"
#include "types/row.h"
#include "types/schema.h"

namespace gisql {

/// Rows per scan batch.
inline constexpr size_t kBatchSize = 1024;

/// \brief "Never dies" end timestamp of a live row version.
inline constexpr uint64_t kMaxTimestamp = UINT64_MAX;

/// \brief MVCC lifetime of one row version: visible to snapshot S when
/// begin_ts <= S < end_ts. Bootstrap rows (local DDL/DML, legacy 2PC)
/// are born at 0 — visible to every snapshot.
struct RowVersion {
  uint64_t begin_ts = 0;
  uint64_t end_ts = kMaxTimestamp;
};

/// \brief Equality index: value → row ids. Rebuilt lazily after writes.
class HashIndex {
 public:
  explicit HashIndex(size_t column) : column_(column) {}

  size_t column() const { return column_; }

  void Build(const std::vector<Row>& rows);

  /// \brief Row ids whose indexed column equals `key` (never NULL rows).
  const std::vector<size_t>& Lookup(const Value& key) const;

  size_t built_row_count() const { return built_row_count_; }

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct ValueEq {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) == 0;
    }
  };
  size_t column_;
  size_t built_row_count_ = 0;
  std::unordered_map<Value, std::vector<size_t>, ValueHash, ValueEq> map_;
};

/// \brief Range index: B+tree over column values → row ids.
class OrderedIndex {
 public:
  explicit OrderedIndex(size_t column) : column_(column) {}

  size_t column() const { return column_; }

  void Build(const std::vector<Row>& rows);

  /// \brief Row ids with lo <= col <= hi (either bound may be NULL =
  /// unbounded); `lo_inclusive` / `hi_inclusive` control openness.
  std::vector<size_t> Range(const Value& lo, bool lo_inclusive,
                            const Value& hi, bool hi_inclusive) const;

  size_t built_row_count() const { return built_row_count_; }

  /// \brief The underlying tree (exposed for invariant checks in tests).
  const BPlusTree& tree() const { return tree_; }

 private:
  size_t column_;
  size_t built_row_count_ = 0;
  BPlusTree tree_;
};

/// \brief An append-oriented page-backed heap table.
class Table {
 public:
  /// \param pool buffer pool the heap pages live in; when null, the
  ///        table creates a private pool from StorageConfig::FromEnv()
  ///        (standalone tables in tests and benches).
  Table(std::string name, SchemaPtr schema, BufferPoolPtr pool = nullptr);

  const std::string& name() const { return name_; }
  const SchemaPtr& schema() const { return schema_; }
  int64_t num_rows() const { return heap_.num_rows(); }

  /// \brief Materializes every row through the buffer pool (charging
  /// page accesses). Best-effort: an out-of-budget pool yields the
  /// prefix that fit — engine paths use Scan()/GetRow() instead, which
  /// surface the error.
  std::vector<Row> rows();

  /// \brief Point read of row `rid` through the buffer pool.
  Result<Row> GetRow(size_t rid) { return heap_.Get(rid); }

  /// \brief Full scan in row-id order, one page pin per page.
  Status Scan(const std::function<Status(size_t, const Row&)>& fn) {
    return heap_.Scan(fn);
  }

  /// \brief Validates arity and types against the schema, applying
  /// implicit casts; returns the coerced row without storing it.
  Result<Row> ValidateRow(Row row) const;

  /// \brief Validates arity and types (applying implicit casts), then
  /// appends. Invalidates indexes and cached statistics.
  Status Insert(Row row);

  /// \brief Bulk append without per-row type validation (trusted loader
  /// path used by the workload generator). Fails only when the buffer
  /// pool cannot grow.
  Status InsertUnchecked(std::vector<Row> rows);

  /// \brief Deletes rows matching `predicate`; returns count removed.
  Result<int64_t> Delete(const Expr& predicate);

  /// \name MVCC version metadata
  ///
  /// Every heap row carries a [begin_ts, end_ts) lifetime in a
  /// heap-parallel in-memory vector (timestamps are rebuilt state, not
  /// page payload — the on-page row encoding is unchanged). Writes via
  /// Insert/InsertUnchecked are born at 0 (visible everywhere);
  /// committed transactional writes arrive through InsertVersioned /
  /// MarkDeleted stamped with the mediator's commit timestamp.
  /// @{

  /// \brief Bulk append stamped with begin_ts (commit path of a global
  /// transaction).
  Status InsertVersioned(std::vector<Row> rows, uint64_t begin_ts);

  /// \brief Ends row `rid`'s lifetime at `end_ts` (a committed
  /// transactional DELETE). The row stays in the heap until watermark
  /// GC; indexes still map to it, so readers re-check visibility.
  /// First committer wins: an already-dead row is left untouched.
  void MarkDeleted(size_t rid, uint64_t end_ts);

  /// \brief True when row `rid` is visible at `snapshot_ts`.
  /// snapshot_ts 0 means "latest committed": only live rows
  /// (end_ts == kMaxTimestamp) qualify.
  bool VisibleAt(size_t rid, uint64_t snapshot_ts) const;

  /// \brief The version pair of row `rid` (tests/monitoring).
  RowVersion VersionOf(size_t rid) const;

  /// \brief Physically removes versions dead at or before `watermark`
  /// (no present or future snapshot can see them); returns the count
  /// reclaimed. A table with no such version returns 0 without
  /// touching any page.
  Result<int64_t> GcToWatermark(uint64_t watermark);
  /// @}

  /// \brief Declares a hash index on `column` (built lazily).
  Status CreateHashIndex(size_t column);

  /// \brief Declares an ordered index on `column` (built lazily).
  Status CreateOrderedIndex(size_t column);

  /// \brief The hash index on `column`, freshly built, or nullptr.
  HashIndex* GetHashIndex(size_t column);

  /// \brief The ordered index on `column`, freshly built, or nullptr.
  OrderedIndex* GetOrderedIndex(size_t column);

  /// \brief Columns with a declared hash / ordered index (sorted).
  std::vector<int64_t> HashIndexedColumns() const;
  std::vector<int64_t> OrderedIndexedColumns() const;

  /// \brief Exact statistics; cached until the next write.
  const TableStats& Stats();

  /// \brief The pool this table's pages live in.
  BufferPoolManager& pool() { return *pool_; }

 private:
  /// Grows versions_ with {begin_ts, live} entries to match the heap
  /// after an append.
  void SyncVersions(uint64_t begin_ts);

  std::string name_;
  SchemaPtr schema_;
  BufferPoolPtr pool_;
  PagedHeap heap_;
  /// Heap-parallel MVCC lifetimes: versions_[rid] belongs to heap row
  /// rid. Rebuilt in lockstep whenever the heap is compacted.
  std::vector<RowVersion> versions_;
  uint64_t epoch_ = 0;  ///< bumped on every write
  std::vector<std::unique_ptr<HashIndex>> hash_indexes_;
  std::vector<uint64_t> hash_epochs_;
  std::vector<std::unique_ptr<OrderedIndex>> ordered_indexes_;
  std::vector<uint64_t> ordered_epochs_;
  TableStats stats_;
  bool stats_valid_ = false;
};

using TablePtr = std::shared_ptr<Table>;

/// \brief Named-table container — one per component information system.
/// Owns the buffer pool all of its tables share.
class StorageEngine {
 public:
  explicit StorageEngine(StorageConfig config = StorageConfig::FromEnv(),
                         MemoryBudget* budget = nullptr)
      : pool_(std::make_shared<BufferPoolManager>(config, budget)) {}

  /// \brief Creates an empty table; AlreadyExists if the name is taken.
  Result<TablePtr> CreateTable(const std::string& name, SchemaPtr schema);

  Result<TablePtr> GetTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;

  BufferPoolManager& pool() { return *pool_; }
  const BufferPoolManager& pool() const { return *pool_; }

 private:
  BufferPoolPtr pool_;
  std::unordered_map<std::string, TablePtr> tables_;
};

}  // namespace gisql
