#include "storage/sim_disk.h"

#include <utility>

namespace gisql {

void SimDisk::WritePage(uint64_t page_id, std::vector<uint8_t> data) {
  pages_[page_id] = std::move(data);
  ++writes_;
  io_us_ += write_us_;
}

Result<std::vector<uint8_t>> SimDisk::ReadPage(uint64_t page_id) {
  auto it = pages_.find(page_id);
  if (it == pages_.end()) {
    return Status::NotFound("page ", page_id, " was never written to disk");
  }
  ++reads_;
  io_us_ += read_us_;
  return it->second;
}

}  // namespace gisql
