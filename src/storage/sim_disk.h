/// \file sim_disk.h
/// \brief Simulated page store backing a buffer pool.
///
/// Pages live as byte images in memory; what the simulation charges is
/// *virtual* latency per I/O, accumulated in microseconds so a buffer
/// miss costs deterministic simulated time. Reads of never-written
/// pages are errors (the pool only reads pages it flushed or allocated
/// through the disk), keeping lost-write bugs loud.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace gisql {

class SimDisk {
 public:
  SimDisk(double read_us, double write_us)
      : read_us_(read_us), write_us_(write_us) {}

  /// \brief Allocates a fresh page id (no I/O charged; allocation is a
  /// metadata operation).
  uint64_t AllocatePage() { return next_page_id_++; }

  /// \brief Writes `data` as the image of `page_id`, charging write
  /// latency.
  void WritePage(uint64_t page_id, std::vector<uint8_t> data);

  /// \brief Reads the image of `page_id`, charging read latency.
  /// NotFound for pages never written.
  Result<std::vector<uint8_t>> ReadPage(uint64_t page_id);

  /// \brief Drops a page image (no I/O charged).
  void DeletePage(uint64_t page_id) { pages_.erase(page_id); }

  /// \name Counters (monotonic; all virtual)
  /// @{
  int64_t reads() const { return reads_; }
  int64_t writes() const { return writes_; }
  /// Total virtual I/O time charged, in microseconds.
  double io_us() const { return io_us_; }
  /// Pages currently stored.
  int64_t num_pages() const { return static_cast<int64_t>(pages_.size()); }
  /// Page ids handed out so far (monotonic; ids are never reused).
  int64_t allocated() const {
    return static_cast<int64_t>(next_page_id_ - 1);
  }
  /// @}

 private:
  double read_us_;
  double write_us_;
  uint64_t next_page_id_ = 1;
  std::unordered_map<uint64_t, std::vector<uint8_t>> pages_;
  int64_t reads_ = 0;
  int64_t writes_ = 0;
  double io_us_ = 0.0;
};

}  // namespace gisql
