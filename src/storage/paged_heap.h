/// \file paged_heap.h
/// \brief A heap file of row slots over buffer-pool pages.
///
/// Rows are wire-encoded back to back into fixed-size pages; an
/// in-memory page directory (page ids + per-page row counts) maps a
/// row id to its (page, slot). Every access goes through the buffer
/// pool, so point reads and scans charge honest page hits/misses and
/// virtual disk time. The heap is append-oriented: deletions rebuild
/// the file (Replace), matching the engine's rebuild-on-write policy.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "types/row.h"
#include "types/schema.h"

namespace gisql {

class PagedHeap {
 public:
  PagedHeap(BufferPoolPtr pool, SchemaPtr schema);
  ~PagedHeap();

  PagedHeap(const PagedHeap&) = delete;
  PagedHeap& operator=(const PagedHeap&) = delete;

  /// \brief Appends one row; returns its row id. Fails when the buffer
  /// pool cannot grow (global memory budget).
  Result<size_t> Append(const Row& row);

  /// \brief Bulk append (page-at-a-time; one pin per filled page).
  Status AppendBatch(const std::vector<Row>& rows);

  /// \brief Point read of row `rid` through the buffer pool.
  Result<Row> Get(size_t rid);

  /// \brief Full scan in row-id order, one page pin per page. The
  /// callback may return a non-OK status to stop the scan.
  Status Scan(const std::function<Status(size_t rid, const Row& row)>& fn);

  /// \brief Replaces the whole file contents (delete-rebuild path).
  Status Replace(const std::vector<Row>& rows);

  int64_t num_rows() const { return total_rows_; }
  int64_t num_pages() const { return static_cast<int64_t>(page_ids_.size()); }

 private:
  /// Decodes every row of page `page_index` from `bytes`.
  Result<std::vector<Row>> DecodePage(size_t page_index,
                                      const std::vector<uint8_t>& bytes) const;

  /// Rows of page `page_index`, fetched (counting hit/miss) and decoded
  /// — with a one-page decode memo so consecutive probes of the same
  /// page skip the re-decode CPU, never the pool accounting.
  Result<const std::vector<Row>*> PageRows(size_t page_index);

  void DropAllPages();

  BufferPoolPtr pool_;
  SchemaPtr schema_;
  std::vector<uint64_t> page_ids_;
  std::vector<uint32_t> page_row_counts_;
  std::vector<size_t> page_first_rid_;  ///< prefix sums over row counts
  int64_t total_rows_ = 0;
  uint64_t epoch_ = 0;  ///< bumped on every mutation (invalidates memo)

  // Decode memo for the most recently read page.
  bool memo_valid_ = false;
  size_t memo_page_ = 0;
  uint64_t memo_epoch_ = 0;
  std::vector<Row> memo_rows_;
};

}  // namespace gisql
