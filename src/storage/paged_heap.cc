#include "storage/paged_heap.h"

#include <algorithm>
#include <utility>

#include "common/bytes.h"
#include "wire/serde.h"

namespace gisql {

namespace {

/// Wire-encodes one row (schema arity is implicit: pages store cells
/// back to back; the directory knows how many rows each page holds).
void EncodeRow(ByteWriter* w, const Row& row) {
  for (const Value& v : row) wire::WriteValue(w, v);
}

}  // namespace

PagedHeap::PagedHeap(BufferPoolPtr pool, SchemaPtr schema)
    : pool_(std::move(pool)), schema_(std::move(schema)) {}

PagedHeap::~PagedHeap() { DropAllPages(); }

void PagedHeap::DropAllPages() {
  for (uint64_t page_id : page_ids_) pool_->DeletePage(page_id);
  page_ids_.clear();
  page_row_counts_.clear();
  page_first_rid_.clear();
  total_rows_ = 0;
  memo_valid_ = false;
  ++epoch_;
}

Result<size_t> PagedHeap::Append(const Row& row) {
  ByteWriter encoded;
  EncodeRow(&encoded, row);
  const size_t row_bytes = encoded.size();

  ++epoch_;
  memo_valid_ = false;
  // Fits in the tail page? (A page always accepts its first row, even
  // oversized — the frame simply grows past page_size for that page.)
  if (!page_ids_.empty()) {
    const uint64_t tail_id = page_ids_.back();
    GISQL_ASSIGN_OR_RETURN(std::vector<uint8_t>* data,
                           pool_->FetchPage(tail_id));
    if (data->size() + row_bytes <= pool_->page_size()) {
      data->insert(data->end(), encoded.data().begin(), encoded.data().end());
      pool_->UnpinPage(tail_id, /*dirty=*/true);
      ++page_row_counts_.back();
      return static_cast<size_t>(total_rows_++);
    }
    pool_->UnpinPage(tail_id, /*dirty=*/false);
  }
  std::vector<uint8_t>* data = nullptr;
  GISQL_ASSIGN_OR_RETURN(uint64_t page_id, pool_->NewPage(&data));
  data->assign(encoded.data().begin(), encoded.data().end());
  page_ids_.push_back(page_id);
  page_row_counts_.push_back(1);
  page_first_rid_.push_back(static_cast<size_t>(total_rows_));
  pool_->UnpinPage(page_id, /*dirty=*/true);
  return static_cast<size_t>(total_rows_++);
}

Status PagedHeap::AppendBatch(const std::vector<Row>& rows) {
  for (const Row& row : rows) {
    GISQL_RETURN_NOT_OK(Append(row).status());
  }
  return Status::OK();
}

Result<std::vector<Row>> PagedHeap::DecodePage(
    size_t page_index, const std::vector<uint8_t>& bytes) const {
  const size_t nrows = page_row_counts_[page_index];
  const size_t width = schema_->num_fields();
  ByteReader reader(bytes);
  std::vector<Row> rows;
  rows.reserve(nrows);
  for (size_t i = 0; i < nrows; ++i) {
    Row row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      GISQL_ASSIGN_OR_RETURN(Value v, wire::ReadValue(&reader));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }
  if (!reader.AtEnd()) {
    return Status::SerializationError("heap page ", page_ids_[page_index],
                                      " has trailing bytes");
  }
  return rows;
}

Result<const std::vector<Row>*> PagedHeap::PageRows(size_t page_index) {
  const uint64_t page_id = page_ids_[page_index];
  // Always fetch: the pool must see (and charge) every page touch.
  GISQL_ASSIGN_OR_RETURN(std::vector<uint8_t>* data, pool_->FetchPage(page_id));
  if (memo_valid_ && memo_page_ == page_index && memo_epoch_ == epoch_) {
    pool_->UnpinPage(page_id, /*dirty=*/false);
    return &memo_rows_;
  }
  Result<std::vector<Row>> rows = DecodePage(page_index, *data);
  pool_->UnpinPage(page_id, /*dirty=*/false);
  GISQL_RETURN_NOT_OK(rows.status());
  memo_rows_ = std::move(*rows);
  memo_page_ = page_index;
  memo_epoch_ = epoch_;
  memo_valid_ = true;
  return &memo_rows_;
}

Result<Row> PagedHeap::Get(size_t rid) {
  if (rid >= static_cast<size_t>(total_rows_)) {
    return Status::InvalidArgument("row id ", rid, " out of range (",
                                   total_rows_, " rows)");
  }
  // Last page whose first rid is <= rid.
  auto it = std::upper_bound(page_first_rid_.begin(), page_first_rid_.end(),
                             rid);
  const size_t page_index =
      static_cast<size_t>(it - page_first_rid_.begin()) - 1;
  GISQL_ASSIGN_OR_RETURN(const std::vector<Row>* rows, PageRows(page_index));
  return (*rows)[rid - page_first_rid_[page_index]];
}

Status PagedHeap::Scan(
    const std::function<Status(size_t rid, const Row& row)>& fn) {
  for (size_t p = 0; p < page_ids_.size(); ++p) {
    GISQL_ASSIGN_OR_RETURN(const std::vector<Row>* rows, PageRows(p));
    const size_t first = page_first_rid_[p];
    for (size_t i = 0; i < rows->size(); ++i) {
      GISQL_RETURN_NOT_OK(fn(first + i, (*rows)[i]));
    }
  }
  return Status::OK();
}

Status PagedHeap::Replace(const std::vector<Row>& rows) {
  DropAllPages();
  return AppendBatch(rows);
}

}  // namespace gisql
