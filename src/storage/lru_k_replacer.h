/// \file lru_k_replacer.h
/// \brief LRU-K frame replacement for the buffer pool.
///
/// Classic LRU-K (O'Neil et al.): the victim is the evictable frame
/// with the largest *backward k-distance* — the gap between now and its
/// k-th most recent access. Frames with fewer than K recorded accesses
/// have infinite backward k-distance and are evicted first, oldest
/// overall access first (plain LRU among the +inf class). Timestamps
/// are a logical counter, not wall-clock, so eviction order is a pure
/// function of the access trace and replays identically.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>

namespace gisql {

class LruKReplacer {
 public:
  /// \param num_frames frames tracked (ids 0 .. num_frames-1)
  /// \param k history depth; 1 degenerates to LRU
  LruKReplacer(size_t num_frames, size_t k);

  /// \brief Records an access to `frame_id` at the next logical tick.
  void RecordAccess(size_t frame_id);

  /// \brief Marks whether `frame_id` may be chosen as a victim
  /// (pinned frames are non-evictable).
  void SetEvictable(size_t frame_id, bool evictable);

  /// \brief Picks and removes the victim per LRU-K order; returns false
  /// when no frame is evictable. The victim's access history is erased.
  bool Evict(size_t* frame_id);

  /// \brief Forgets a frame entirely (page deleted from the pool).
  void Remove(size_t frame_id);

  /// \brief Number of currently evictable frames.
  size_t Size() const;

 private:
  struct FrameInfo {
    std::deque<uint64_t> history;  ///< last ≤ k access ticks, oldest first
    bool evictable = false;
  };

  size_t num_frames_;
  size_t k_;
  uint64_t current_tick_ = 0;
  std::unordered_map<size_t, FrameInfo> frames_;
};

}  // namespace gisql
