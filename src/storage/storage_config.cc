#include "storage/storage_config.h"

#include <cstdlib>
#include <cstring>

namespace gisql {

namespace {

/// Overwrites `*out` only on a full, clean, positive parse so a typo'd
/// variable leaves the compiled-in default intact.
void EnvSize(const char* name, size_t* out) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end != nullptr && *end == '\0' && v > 0) *out = static_cast<size_t>(v);
}

void EnvMicros(const char* name, double* out) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end != nullptr && *end == '\0' && v >= 0) *out = v;
}

}  // namespace

StorageConfig StorageConfig::FromEnv() {
  StorageConfig cfg;
  EnvSize("GISQL_PAGE_SIZE", &cfg.page_size);
  EnvSize("GISQL_BUFFER_POOL_FRAMES", &cfg.pool_frames);
  EnvSize("GISQL_LRUK_K", &cfg.lruk_k);
  EnvMicros("GISQL_DISK_READ_US", &cfg.disk_read_us);
  EnvMicros("GISQL_DISK_WRITE_US", &cfg.disk_write_us);
  // Degenerate values would wedge the pool; clamp to workable minima.
  if (cfg.page_size < 64) cfg.page_size = 64;
  if (cfg.pool_frames < 2) cfg.pool_frames = 2;
  if (cfg.lruk_k < 1) cfg.lruk_k = 1;
  return cfg;
}

}  // namespace gisql
