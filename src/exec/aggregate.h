/// \file aggregate.h
/// \brief Aggregate accumulators shared by the mediator's hash-aggregate
/// operator and the component sources' partial aggregation.

#pragma once

#include <unordered_set>

#include "expr/binder.h"
#include "types/value.h"

namespace gisql {

/// \brief Running state of one aggregate over one group.
class AggregateAccumulator {
 public:
  explicit AggregateAccumulator(const BoundAggregate& spec);

  /// \brief Folds one input value in. For COUNT(*) pass any value (it is
  /// ignored); for other aggregates NULLs are skipped per SQL.
  void Update(const Value& v);

  /// \brief Final value of the aggregate (SQL semantics: COUNT of empty
  /// = 0, SUM/MIN/MAX/AVG of empty = NULL).
  Value Finalize() const;

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct ValueEq {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) == 0;
    }
  };

  AggKind kind_;
  bool distinct_;
  TypeId result_type_;
  int64_t count_ = 0;
  int64_t sum_i_ = 0;
  double sum_d_ = 0.0;
  bool sum_is_double_ = false;
  Value min_;
  Value max_;
  std::unordered_set<Value, ValueHash, ValueEq> seen_;  ///< DISTINCT only
};

}  // namespace gisql
