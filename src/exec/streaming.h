/// \file streaming.h
/// \brief Incremental (pull-based) execution of streamable plans.
///
/// The materializing executor (exec/executor.h) computes a query's
/// whole result before the first row reaches the client — the one
/// remaining O(result) memory path after per-query budgets. This file
/// is the alternative for plans that don't need it: a *streamable*
/// plan — any composition of Filter / Project / Limit / UnionAll over
/// RemoteFragment leaves — executes as a chain of pull operators that
/// hold at most one bounded chunk each. Fragment leaves open a cursor
/// at their source (wire/cursor.h) and fetch it chunk by chunk;
/// mediator-side compensation (filter, project, limit, union
/// coercion) applies per chunk, so the resident footprint is O(chunk)
/// while the concatenated chunks equal the materialized result row
/// for row.
///
/// Everything else (joins, aggregates, sorts, distinct — the blocking
/// operators) still materializes; core/cursor_manager.h drains those
/// into a budget-charged spool and serves chunks from it.

#pragma once

#include <cstdint>
#include <memory>

#include "exec/executor.h"
#include "planner/plan.h"

namespace gisql {

/// \brief One increment of a streamed result, with its simulated cost.
struct StreamChunk {
  RowBatch rows;
  /// True on the last chunk (which may still carry rows, or be empty
  /// for an empty result).
  bool done = false;
  /// Simulated milliseconds spent producing this chunk (source scan on
  /// the first fetch, wire transfer, mediator CPU).
  double elapsed_ms = 0.0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  int64_t messages = 0;
};

/// \brief A pull operator: yields a streamable plan's result in
/// bounded chunks.
class RowStream {
 public:
  virtual ~RowStream() = default;

  /// \brief Output schema of every chunk.
  virtual const SchemaPtr& schema() const = 0;

  /// \brief Produces the next chunk (at most the pipeline's chunk_rows
  /// rows; operators like Filter may shrink a chunk, never grow it).
  /// Must not be called again after a chunk with done == true.
  virtual Result<StreamChunk> Next() = 0;

  /// \brief Releases remote cursors (idempotent). Returns the
  /// simulated milliseconds the close RPCs cost.
  virtual double Close() = 0;
};

/// \brief True when `plan` can execute incrementally: Filter / Project
/// / Limit / UnionAll chains over RemoteFragment leaves (a semijoin
/// marker without injected keys counts as a plain fragment, matching
/// the executor). Blocking operators (join, aggregate, sort, distinct)
/// and virtual scans make a plan non-streamable.
bool IsStreamablePlan(const PlanNodePtr& plan);

/// \brief Builds the pull pipeline for a streamable plan.
///
/// No network traffic happens here: each fragment leaf opens its
/// source cursor lazily on its first Next(), so union members are
/// staged at their sources one at a time, not all at once. Open
/// idempotency tokens are drawn from `*next_token` (monotonically
/// consumed; the caller owns the counter and must never reuse values).
/// Fails only when the plan is not streamable.
Result<std::unique_ptr<RowStream>> OpenPlanStream(const ExecContext& ctx,
                                                  PlanNodePtr plan,
                                                  int64_t chunk_rows,
                                                  uint64_t* next_token);

/// \brief Serves an already-materialized result (the blocking-plan
/// spool) in bounded chunks, so cursor clients see one interface.
std::unique_ptr<RowStream> MakeSpoolStream(RowBatch spool,
                                           int64_t chunk_rows);

}  // namespace gisql
