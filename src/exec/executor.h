/// \file executor.h
/// \brief The mediator's execution engine: interprets a decomposed plan,
/// shipping fragments over the simulated network and compensating with
/// local operators.
///
/// Simulated-time model: each node reports the elapsed simulated
/// milliseconds of its subtree. Independent remote fetches (union
/// members, both sides of a ship-strategy join) overlap and contribute
/// their maximum; dependent stages (semijoin reduction, local operators
/// over fetched data) add up. Mediator CPU is charged per row processed.

#pragma once

#include <memory>

#include "common/retry_policy.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "exec/source_sequencer.h"
#include "net/sim_network.h"
#include "planner/plan.h"
#include "types/column_batch.h"

namespace gisql {

class SystemTableProvider;
class MemoryGrant;
class CircuitBreakerRegistry;
class SourceHealthTracker;

/// \brief Execution environment handed to the executor.
struct ExecContext {
  SimNetwork* net = nullptr;
  std::string mediator_host = "mediator";
  /// Source of gis.* virtual-table snapshots (catalog/system_tables.h).
  /// Not owned; may be null, in which case kVirtualScan nodes error.
  const SystemTableProvider* system_tables = nullptr;
  double mediator_cpu_us_per_row = 0.05;
  int64_t semijoin_max_keys = 100000;
  /// EXPLAIN ANALYZE support: record actual rows / simulated ms onto
  /// each plan node as it executes.
  bool record_actuals = false;
  /// Dispatch independent subtrees (union members, both sides of a
  /// ship-strategy join) on worker threads. Results and simulated-time
  /// accounting are identical either way; this only changes wall time.
  /// Requires `pool`; without one, execution stays serial.
  bool parallel_execution = true;
  /// Bounded worker pool for parallel_execution. Not owned; the pool
  /// outlives every query using it (GlobalSystem owns one per system).
  /// The executor never creates threads of its own, so concurrency is
  /// capped at the pool size no matter how bushy the plan is.
  ThreadPool* pool = nullptr;
  /// Fetch remote fragments with the columnar wire encoding
  /// (kExecuteFragmentColumnar). Sources answer row-encoded when a
  /// fragment's values do not fit their declared column types, so this
  /// is safe to leave on; off forces the classic row encoding (A/B).
  bool columnar_wire = true;
  /// Run vectorized kernels (filter / aggregate / join hashing) over
  /// fragment results that arrived columnar, falling back per operator
  /// when an expression is outside the vectorizable subset.
  bool vectorized_execution = true;
  /// Retry/backoff applied to every remote fragment call. The default
  /// (one attempt, no backoff) makes replica failover pay exactly one
  /// detection timeout per dead host; chaos runs raise max_attempts so
  /// transient faults are absorbed before failing over.
  RetryPolicy retry_policy = RetryPolicy::NoRetry();
  /// Query-lifecycle tracing (common/trace.h). When set, every operator
  /// records a span [subtree start, subtree end] on the simulated
  /// clock, with per-attempt network sub-spans below remote fragments.
  /// Span content (rows, bytes, timings) is identical between serial
  /// and pooled execution; only recording order differs, and exports
  /// render in canonical order. Not owned.
  TraceCollector* trace = nullptr;
  /// Span to parent the plan root under (e.g. the "execute" lifecycle
  /// span), and the simulated time at which execution begins.
  uint64_t trace_parent = 0;
  double trace_start_ms = 0.0;
  /// Per-query memory grant (sched/memory_budget.h). Operators charge
  /// an estimate of every batch they materialize; a crossed cap aborts
  /// the query with Status::Overloaded. Not owned; null = unbudgeted.
  MemoryGrant* memory = nullptr;
  /// Health tracker consulted when ordering replica candidates (see
  /// health_aware_routing). Not owned; may be null.
  const SourceHealthTracker* health = nullptr;
  /// Per-source circuit breakers (sched/circuit_breaker.h): an open
  /// breaker makes ExecFragment skip the candidate at zero network
  /// cost. Not owned; null or disabled = classic behavior.
  CircuitBreakerRegistry* breakers = nullptr;
  /// Reorder a replicated view's failover candidates so suspect
  /// sources are tried after healthy ones (stable, name tie-break).
  /// Plan order is preserved while every candidate is healthy.
  bool health_aware_routing = true;
  /// MVCC read context stamped onto every shipped fragment:
  /// snapshot_ts > 0 pins reads to that global snapshot, txn_id lets
  /// sources overlay the transaction's own staged writes
  /// (read-your-writes). Both 0 = classic latest-committed reads.
  uint64_t snapshot_ts = 0;
  uint64_t txn_id = 0;
};

/// \brief A materialized result plus its simulated cost.
struct ExecOutput {
  RowBatch batch;
  double elapsed_ms = 0.0;
  /// When the result arrived via the columnar wire encoding, the
  /// decoded columns ride along (same rows as `batch`) so the parent
  /// operator can run vectorized kernels without re-pivoting.
  std::shared_ptr<const ColumnBatch> columnar;
};

class Executor {
 public:
  explicit Executor(ExecContext ctx) : ctx_(std::move(ctx)) {}

  /// \brief Executes a decomposed plan to completion.
  Result<ExecOutput> Execute(const PlanNodePtr& plan);

 private:
  /// Execution methods thread two tracing arguments: `t0`, the
  /// simulated time at which this subtree begins (children of
  /// overlapping fetches share their parent's t0; dependent stages
  /// start after what they depend on), and the span to attach to —
  /// `parent` for methods that open their own node span, `self` (the
  /// already-open span of `node`) for the per-kind bodies.
  Result<ExecOutput> Exec(const PlanNode& node, double t0, uint64_t parent);
  Result<ExecOutput> ExecImpl(const PlanNode& node, double t0,
                              uint64_t self);
  Result<ExecOutput> ExecFragment(const PlanNode& node,
                                  const FragmentPlan& frag, double t0,
                                  uint64_t self);
  Result<ExecOutput> ExecUnionAll(const PlanNode& node, double t0,
                                  uint64_t self);
  Result<ExecOutput> ExecJoin(const PlanNode& node, double t0,
                              uint64_t self);
  Result<ExecOutput> ExecAggregate(const PlanNode& node, double t0,
                                   uint64_t self);

  /// Applies a Filter/Project node's operation to an already-computed
  /// child output (shared by Exec and the semijoin probe path).
  Result<ExecOutput> ApplyFilter(const PlanNode& node, ExecOutput child);
  Result<ExecOutput> ApplyProject(const PlanNode& node, ExecOutput child);

  /// Executes the probe side of a semijoin-reduced join, pushing the
  /// collected build keys through any mediator-side compensation chain
  /// (Project/Filter) down to the marked fragment.
  Result<ExecOutput> ExecSemijoinProbe(const PlanNode& node,
                                       const std::vector<Value>& keys,
                                       double t0, uint64_t parent);

  /// Opens the operator span for `node` (0 when tracing is off).
  uint64_t BeginNodeSpan(const PlanNode& node, double t0, uint64_t parent);
  /// Closes the span and records EXPLAIN ANALYZE actuals onto the node.
  void FinishNodeSpan(const PlanNode& node, uint64_t span, double t0,
                      const Result<ExecOutput>& out);

  double CpuMs(size_t rows) const {
    return static_cast<double>(rows) * ctx_.mediator_cpu_us_per_row / 1e3;
  }

  /// Charges `rows` materialized rows of `width` columns against the
  /// query's memory grant (no-op when unbudgeted).
  Status ChargeMemory(size_t rows, size_t width, const char* what);

  ExecContext ctx_;
  /// Orders same-source fragment executions into plan pre-order under
  /// pooled execution, so source-side buffer-pool metrics replay
  /// byte-identically between serial and parallel runs.
  SourceSequencer sequencer_;
};

}  // namespace gisql
