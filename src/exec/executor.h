/// \file executor.h
/// \brief The mediator's execution engine: interprets a decomposed plan,
/// shipping fragments over the simulated network and compensating with
/// local operators.
///
/// Simulated-time model: each node reports the elapsed simulated
/// milliseconds of its subtree. Independent remote fetches (union
/// members, both sides of a ship-strategy join) overlap and contribute
/// their maximum; dependent stages (semijoin reduction, local operators
/// over fetched data) add up. Mediator CPU is charged per row processed.

#pragma once

#include <memory>

#include "common/retry_policy.h"
#include "common/thread_pool.h"
#include "net/sim_network.h"
#include "planner/plan.h"
#include "types/column_batch.h"

namespace gisql {

/// \brief Execution environment handed to the executor.
struct ExecContext {
  SimNetwork* net = nullptr;
  std::string mediator_host = "mediator";
  double mediator_cpu_us_per_row = 0.05;
  int64_t semijoin_max_keys = 100000;
  /// EXPLAIN ANALYZE support: record actual rows / simulated ms onto
  /// each plan node as it executes.
  bool record_actuals = false;
  /// Dispatch independent subtrees (union members, both sides of a
  /// ship-strategy join) on worker threads. Results and simulated-time
  /// accounting are identical either way; this only changes wall time.
  /// Requires `pool`; without one, execution stays serial.
  bool parallel_execution = true;
  /// Bounded worker pool for parallel_execution. Not owned; the pool
  /// outlives every query using it (GlobalSystem owns one per system).
  /// The executor never creates threads of its own, so concurrency is
  /// capped at the pool size no matter how bushy the plan is.
  ThreadPool* pool = nullptr;
  /// Fetch remote fragments with the columnar wire encoding
  /// (kExecuteFragmentColumnar). Sources answer row-encoded when a
  /// fragment's values do not fit their declared column types, so this
  /// is safe to leave on; off forces the classic row encoding (A/B).
  bool columnar_wire = true;
  /// Run vectorized kernels (filter / aggregate / join hashing) over
  /// fragment results that arrived columnar, falling back per operator
  /// when an expression is outside the vectorizable subset.
  bool vectorized_execution = true;
  /// Retry/backoff applied to every remote fragment call. The default
  /// (one attempt, no backoff) makes replica failover pay exactly one
  /// detection timeout per dead host; chaos runs raise max_attempts so
  /// transient faults are absorbed before failing over.
  RetryPolicy retry_policy = RetryPolicy::NoRetry();
};

/// \brief A materialized result plus its simulated cost.
struct ExecOutput {
  RowBatch batch;
  double elapsed_ms = 0.0;
  /// When the result arrived via the columnar wire encoding, the
  /// decoded columns ride along (same rows as `batch`) so the parent
  /// operator can run vectorized kernels without re-pivoting.
  std::shared_ptr<const ColumnBatch> columnar;
};

class Executor {
 public:
  explicit Executor(ExecContext ctx) : ctx_(std::move(ctx)) {}

  /// \brief Executes a decomposed plan to completion.
  Result<ExecOutput> Execute(const PlanNodePtr& plan);

 private:
  Result<ExecOutput> Exec(const PlanNode& node);
  Result<ExecOutput> ExecImpl(const PlanNode& node);
  Result<ExecOutput> ExecFragment(const PlanNode& node,
                                  const FragmentPlan& frag);
  Result<ExecOutput> ExecUnionAll(const PlanNode& node);
  Result<ExecOutput> ExecJoin(const PlanNode& node);
  Result<ExecOutput> ExecAggregate(const PlanNode& node);

  /// Applies a Filter/Project node's operation to an already-computed
  /// child output (shared by Exec and the semijoin probe path).
  Result<ExecOutput> ApplyFilter(const PlanNode& node, ExecOutput child);
  Result<ExecOutput> ApplyProject(const PlanNode& node, ExecOutput child);

  /// Executes the probe side of a semijoin-reduced join, pushing the
  /// collected build keys through any mediator-side compensation chain
  /// (Project/Filter) down to the marked fragment.
  Result<ExecOutput> ExecSemijoinProbe(const PlanNode& node,
                                       const std::vector<Value>& keys);

  double CpuMs(size_t rows) const {
    return static_cast<double>(rows) * ctx_.mediator_cpu_us_per_row / 1e3;
  }

  ExecContext ctx_;
};

}  // namespace gisql
