#include "exec/streaming.h"

#include <algorithm>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "core/source_health.h"
#include "expr/eval.h"
#include "net/retry.h"
#include "sched/circuit_breaker.h"
#include "wire/cursor.h"
#include "wire/protocol.h"

namespace gisql {
namespace {

double CpuMs(const ExecContext& ctx, size_t rows) {
  return static_cast<double>(rows) * ctx.mediator_cpu_us_per_row / 1e3;
}

/// Leaf: pulls a fragment's rows through a source cursor. The cursor
/// opens lazily on the first Next(); replica failover happens only at
/// open, before any row has been delivered — once chunks flow, the
/// stream is pinned to its source (a replica would restart the scan
/// and duplicate rows).
class FragmentStream : public RowStream {
 public:
  FragmentStream(const ExecContext& ctx, PlanNodePtr node,
                 int64_t chunk_rows, uint64_t token)
      : ctx_(ctx), node_(std::move(node)), chunk_rows_(chunk_rows),
        token_(token) {}

  const SchemaPtr& schema() const override { return node_->output_schema; }

  Result<StreamChunk> Next() override {
    StreamChunk chunk;
    if (exhausted_) {
      chunk.rows = RowBatch(node_->output_schema);
      chunk.done = true;
      return chunk;
    }
    if (!opened_) GISQL_RETURN_NOT_OK(Open(&chunk));

    wire::FetchChunkRequest req{cursor_id_, next_seq_};
    ByteWriter writer;
    wire::WriteFetchChunkRequest(&writer, req);
    RetryResult call = CallWithRetry(
        *ctx_.net, ctx_.retry_policy, ctx_.mediator_host, source_,
        static_cast<uint8_t>(wire::Opcode::kFetchChunk), writer.Release(),
        HashString(node_->fragment.table) ^ token_);
    Account(call, &chunk);
    GISQL_RETURN_NOT_OK(call.status);
    ByteReader reader(call.payload);
    GISQL_ASSIGN_OR_RETURN(wire::CursorChunk wire_chunk,
                           wire::ReadCursorChunk(&reader));
    if (wire_chunk.cursor_id != cursor_id_ || wire_chunk.seq != next_seq_) {
      return Status::ExecutionError(
          "cursor ", cursor_id_, " answered chunk ", wire_chunk.seq,
          " of cursor ", wire_chunk.cursor_id, ", expected chunk ",
          next_seq_, " from source '", source_, "'");
    }
    if (wire_chunk.rows.schema()->num_fields() !=
        node_->output_schema->num_fields()) {
      return Status::ExecutionError(
          "cursor chunk arity ", wire_chunk.rows.schema()->num_fields(),
          " does not match plan arity ", node_->output_schema->num_fields(),
          " from source '", source_, "'");
    }
    ++next_seq_;
    exhausted_ = wire_chunk.done;
    // Adopt the plan's (qualified) schema for downstream resolution.
    chunk.rows =
        RowBatch(node_->output_schema, std::move(wire_chunk.rows.rows()));
    chunk.done = wire_chunk.done;
    return chunk;
  }

  double Close() override {
    if (!opened_ || closed_) return 0.0;
    closed_ = true;
    ByteWriter writer;
    wire::WriteCloseCursorRequest(&writer, {cursor_id_});
    // Best effort: an unreachable source keeps the cursor until its
    // own staging limit recycles it; the mediator-side lease has
    // already been settled by the caller.
    RetryResult call = CallWithRetry(
        *ctx_.net, ctx_.retry_policy, ctx_.mediator_host, source_,
        static_cast<uint8_t>(wire::Opcode::kCloseCursor), writer.Release(),
        HashString(node_->fragment.table) ^ token_ ^ 1);
    if (!call.ok()) {
      GISQL_LOG(kWarn) << "close of cursor " << cursor_id_ << " at '"
                       << source_ << "' failed: "
                       << call.status.message();
    }
    return call.elapsed_ms;
  }

 private:
  static void Account(const RetryResult& call, StreamChunk* chunk) {
    chunk->elapsed_ms += call.elapsed_ms;
    chunk->bytes_sent += call.bytes_sent;
    chunk->bytes_received += call.bytes_received;
    chunk->messages += call.attempts;
  }

  /// Opens the source cursor, failing over across replica candidates
  /// with the same health-aware ordering as the materializing executor.
  Status Open(StreamChunk* chunk) {
    FragmentPlan frag = node_->fragment;
    frag.snapshot_ts = ctx_.snapshot_ts;
    frag.txn_id = ctx_.txn_id;
    if (frag.semijoin_column >= 0 && frag.semijoin_values.empty()) {
      frag.semijoin_column = -1;  // decomposer marker without keys
    }
    struct Candidate {
      const std::string* source;
      const std::string* table;
    };
    std::vector<Candidate> candidates;
    candidates.push_back({&node_->fragment_source, &frag.table});
    for (const auto& alt : node_->scan_alternates) {
      candidates.push_back({&alt.source, &alt.exported_name});
    }
    if (ctx_.health_aware_routing && ctx_.health != nullptr &&
        candidates.size() > 1) {
      auto penalty = [&](const Candidate& c) {
        return ctx_.health->StateOf(*c.source) == SourceHealthState::kSuspect
                   ? 1
                   : 0;
      };
      std::stable_sort(candidates.begin(), candidates.end(),
                       [&](const Candidate& a, const Candidate& b) {
                         const int pa = penalty(a), pb = penalty(b);
                         if (pa != pb) return pa < pb;
                         return pa > 0 && *a.source < *b.source;
                       });
    }

    Status last;
    for (const Candidate& candidate : candidates) {
      if (ctx_.breakers != nullptr &&
          ctx_.breakers->ShouldSkip(*candidate.source)) {
        last = Status::NetworkError("circuit breaker open for source '",
                                    *candidate.source, "'");
        continue;
      }
      wire::OpenCursorRequest req;
      req.token = token_;
      req.chunk_rows = chunk_rows_;
      req.fragment = frag;
      req.fragment.table = *candidate.table;
      ByteWriter writer;
      wire::WriteOpenCursorRequest(&writer, req);
      RetryResult call = CallWithRetry(
          *ctx_.net, ctx_.retry_policy, ctx_.mediator_host,
          *candidate.source,
          static_cast<uint8_t>(wire::Opcode::kOpenCursor), writer.Release(),
          HashString(frag.table) ^ token_);
      Account(call, chunk);
      if (call.ok()) {
        ByteReader reader(call.payload);
        GISQL_ASSIGN_OR_RETURN(wire::OpenCursorResponse resp,
                               wire::ReadOpenCursorResponse(&reader));
        source_ = *candidate.source;
        cursor_id_ = resp.cursor_id;
        opened_ = true;
        return Status::OK();
      }
      last = std::move(call.status);
      // Only an unreachable source justifies another replica;
      // application errors would repeat identically elsewhere.
      if (!last.IsNetworkError()) return last;
    }
    return last.ok() ? Status::NetworkError("no candidate source for '",
                                            frag.table, "'")
                     : last;
  }

  ExecContext ctx_;
  PlanNodePtr node_;
  int64_t chunk_rows_;
  uint64_t token_;
  bool opened_ = false;
  bool closed_ = false;
  bool exhausted_ = false;
  std::string source_;
  uint64_t cursor_id_ = 0;
  uint64_t next_seq_ = 0;
};

/// Filter over a child stream: one chunk in, at most one (possibly
/// smaller) chunk out.
class FilterStream : public RowStream {
 public:
  FilterStream(const ExecContext& ctx, PlanNodePtr node,
               std::unique_ptr<RowStream> child)
      : ctx_(ctx), node_(std::move(node)), child_(std::move(child)) {}

  const SchemaPtr& schema() const override { return node_->output_schema; }

  Result<StreamChunk> Next() override {
    GISQL_ASSIGN_OR_RETURN(StreamChunk chunk, child_->Next());
    RowBatch out(node_->output_schema);
    for (auto& row : chunk.rows.rows()) {
      GISQL_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*node_->filter, row));
      if (keep) out.Append(std::move(row));
    }
    chunk.elapsed_ms += CpuMs(ctx_, chunk.rows.num_rows());
    chunk.rows = std::move(out);
    return chunk;
  }

  double Close() override { return child_->Close(); }

 private:
  ExecContext ctx_;
  PlanNodePtr node_;
  std::unique_ptr<RowStream> child_;
};

class ProjectStream : public RowStream {
 public:
  ProjectStream(const ExecContext& ctx, PlanNodePtr node,
                std::unique_ptr<RowStream> child)
      : ctx_(ctx), node_(std::move(node)), child_(std::move(child)) {}

  const SchemaPtr& schema() const override { return node_->output_schema; }

  Result<StreamChunk> Next() override {
    GISQL_ASSIGN_OR_RETURN(StreamChunk chunk, child_->Next());
    RowBatch out(node_->output_schema);
    out.Reserve(chunk.rows.num_rows());
    for (const auto& row : chunk.rows.rows()) {
      Row projected;
      projected.reserve(node_->projections.size());
      for (const auto& p : node_->projections) {
        GISQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, row));
        projected.push_back(std::move(v));
      }
      out.Append(std::move(projected));
    }
    chunk.elapsed_ms += CpuMs(ctx_, chunk.rows.num_rows());
    chunk.rows = std::move(out);
    return chunk;
  }

  double Close() override { return child_->Close(); }

 private:
  ExecContext ctx_;
  PlanNodePtr node_;
  std::unique_ptr<RowStream> child_;
};

/// Limit/offset over a child stream. The child is closed early when
/// the limit is reached — the whole point of streaming LIMIT: rows
/// past it are never fetched.
class LimitStream : public RowStream {
 public:
  LimitStream(PlanNodePtr node, std::unique_ptr<RowStream> child)
      : node_(std::move(node)), child_(std::move(child)),
        skip_(node_->offset),
        remaining_(node_->limit) {}

  const SchemaPtr& schema() const override { return node_->output_schema; }

  Result<StreamChunk> Next() override {
    StreamChunk chunk;
    if (done_) {
      chunk.rows = RowBatch(node_->output_schema);
      chunk.done = true;
      return chunk;
    }
    // Skip whole offset-consumed chunks without surfacing empties.
    while (true) {
      GISQL_ASSIGN_OR_RETURN(StreamChunk in, child_->Next());
      chunk.elapsed_ms += in.elapsed_ms;
      chunk.bytes_sent += in.bytes_sent;
      chunk.bytes_received += in.bytes_received;
      chunk.messages += in.messages;
      auto& rows = in.rows.rows();
      const int64_t drop =
          std::min(skip_, static_cast<int64_t>(rows.size()));
      if (drop > 0) {
        rows.erase(rows.begin(), rows.begin() + drop);
        skip_ -= drop;
      }
      if (remaining_ >= 0 &&
          static_cast<int64_t>(rows.size()) > remaining_) {
        rows.resize(static_cast<size_t>(remaining_));
      }
      if (remaining_ >= 0) remaining_ -= static_cast<int64_t>(rows.size());
      const bool child_done = in.done;
      const bool limit_hit = remaining_ == 0;
      if (limit_hit && !child_done) {
        chunk.elapsed_ms += child_->Close();
      }
      if (child_done || limit_hit) done_ = true;
      if (done_ || !rows.empty()) {
        chunk.rows = RowBatch(node_->output_schema, std::move(rows));
        chunk.done = done_;
        return chunk;
      }
    }
  }

  double Close() override { return child_->Close(); }

 private:
  PlanNodePtr node_;
  std::unique_ptr<RowStream> child_;
  bool done_ = false;
  int64_t skip_ = 0;
  int64_t remaining_ = -1;  ///< -1 = no limit, only offset
};

/// Concatenates member streams in plan order, coercing member values
/// to the union view's column types (row-wise, same semantics as the
/// materializing executor). Members run one after another, so only one
/// source cursor is staged at a time.
class UnionStream : public RowStream {
 public:
  UnionStream(const ExecContext& ctx, PlanNodePtr node,
              std::vector<std::unique_ptr<RowStream>> members)
      : ctx_(ctx), node_(std::move(node)), members_(std::move(members)) {}

  const SchemaPtr& schema() const override { return node_->output_schema; }

  Result<StreamChunk> Next() override {
    StreamChunk chunk;
    while (current_ < members_.size()) {
      GISQL_ASSIGN_OR_RETURN(StreamChunk in, members_[current_]->Next());
      chunk.elapsed_ms += in.elapsed_ms;
      chunk.bytes_sent += in.bytes_sent;
      chunk.bytes_received += in.bytes_received;
      chunk.messages += in.messages;
      if (in.done) {
        chunk.elapsed_ms += members_[current_]->Close();
        ++current_;
      }
      if (in.rows.num_rows() == 0 && current_ < members_.size()) {
        continue;  // exhausted member's empty tail: move on silently
      }
      const size_t width = node_->output_schema->num_fields();
      RowBatch out(node_->output_schema);
      out.Reserve(in.rows.num_rows());
      for (auto& row : in.rows.rows()) {
        for (size_t c = 0; c < width && c < row.size(); ++c) {
          const TypeId want = node_->output_schema->field(c).type;
          if (!row[c].is_null() && row[c].type() != want) {
            GISQL_ASSIGN_OR_RETURN(row[c], row[c].CastTo(want));
          }
        }
        out.Append(std::move(row));
      }
      chunk.elapsed_ms += CpuMs(ctx_, out.num_rows());
      chunk.rows = std::move(out);
      chunk.done = current_ >= members_.size();
      return chunk;
    }
    chunk.rows = RowBatch(node_->output_schema);
    chunk.done = true;
    return chunk;
  }

  double Close() override {
    double ms = 0.0;
    for (size_t i = current_; i < members_.size(); ++i) {
      ms += members_[i]->Close();
    }
    current_ = members_.size();
    return ms;
  }

 private:
  ExecContext ctx_;
  PlanNodePtr node_;
  std::vector<std::unique_ptr<RowStream>> members_;
  size_t current_ = 0;
};

class SpoolStream : public RowStream {
 public:
  SpoolStream(RowBatch spool, int64_t chunk_rows)
      : schema_(spool.schema()), spool_(std::move(spool)),
        chunk_rows_(chunk_rows) {}

  const SchemaPtr& schema() const override { return schema_; }

  Result<StreamChunk> Next() override {
    StreamChunk chunk;
    const int64_t total = spool_.num_rows();
    const int64_t take = std::min(chunk_rows_, total - pos_);
    std::vector<Row> rows(spool_.rows().begin() + pos_,
                          spool_.rows().begin() + pos_ + take);
    pos_ += take;
    chunk.rows = RowBatch(schema_, std::move(rows));
    chunk.done = pos_ >= total;
    return chunk;
  }

  double Close() override { return 0.0; }

 private:
  SchemaPtr schema_;
  RowBatch spool_;
  int64_t chunk_rows_;
  int64_t pos_ = 0;
};

bool IsStreamableNode(const PlanNodePtr& node) {
  switch (node->kind) {
    case PlanKind::kRemoteFragment:
      // A semijoin reduction with injected keys only exists below a
      // join — a blocking parent — so in practice this always streams;
      // the guard keeps the invariant local.
      return !(node->fragment.semijoin_column >= 0 &&
               !node->fragment.semijoin_values.empty());
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kLimit:
      return IsStreamableNode(node->children[0]);
    case PlanKind::kUnionAll:
      for (const auto& child : node->children) {
        if (!IsStreamableNode(child)) return false;
      }
      return true;
    default:
      return false;
  }
}

Result<std::unique_ptr<RowStream>> Build(const ExecContext& ctx,
                                         const PlanNodePtr& node,
                                         int64_t chunk_rows,
                                         uint64_t* next_token) {
  switch (node->kind) {
    case PlanKind::kRemoteFragment:
      return std::unique_ptr<RowStream>(
          new FragmentStream(ctx, node, chunk_rows, (*next_token)++));
    case PlanKind::kFilter: {
      GISQL_ASSIGN_OR_RETURN(
          std::unique_ptr<RowStream> child,
          Build(ctx, node->children[0], chunk_rows, next_token));
      return std::unique_ptr<RowStream>(
          new FilterStream(ctx, node, std::move(child)));
    }
    case PlanKind::kProject: {
      GISQL_ASSIGN_OR_RETURN(
          std::unique_ptr<RowStream> child,
          Build(ctx, node->children[0], chunk_rows, next_token));
      return std::unique_ptr<RowStream>(
          new ProjectStream(ctx, node, std::move(child)));
    }
    case PlanKind::kLimit: {
      GISQL_ASSIGN_OR_RETURN(
          std::unique_ptr<RowStream> child,
          Build(ctx, node->children[0], chunk_rows, next_token));
      return std::unique_ptr<RowStream>(
          new LimitStream(node, std::move(child)));
    }
    case PlanKind::kUnionAll: {
      std::vector<std::unique_ptr<RowStream>> members;
      members.reserve(node->children.size());
      for (const auto& child : node->children) {
        GISQL_ASSIGN_OR_RETURN(std::unique_ptr<RowStream> member,
                               Build(ctx, child, chunk_rows, next_token));
        members.push_back(std::move(member));
      }
      return std::unique_ptr<RowStream>(
          new UnionStream(ctx, node, std::move(members)));
    }
    default:
      return Status::InvalidArgument("plan node ",
                                     PlanKindName(node->kind),
                                     " is not streamable");
  }
}

}  // namespace

bool IsStreamablePlan(const PlanNodePtr& plan) {
  return plan != nullptr && IsStreamableNode(plan);
}

Result<std::unique_ptr<RowStream>> OpenPlanStream(const ExecContext& ctx,
                                                  PlanNodePtr plan,
                                                  int64_t chunk_rows,
                                                  uint64_t* next_token) {
  if (!IsStreamablePlan(plan)) {
    return Status::InvalidArgument("plan is not streamable");
  }
  if (chunk_rows <= 0) {
    return Status::InvalidArgument("chunk_rows must be positive, got ",
                                   chunk_rows);
  }
  // Streaming stays serial by construction (the client drives the
  // pulls), so no pool is consulted; results are identical to the
  // materializing executor either way.
  ExecContext stream_ctx = ctx;
  stream_ctx.parallel_execution = false;
  stream_ctx.pool = nullptr;
  stream_ctx.memory = nullptr;  // the cursor's owner charges per chunk
  stream_ctx.trace = nullptr;
  return Build(stream_ctx, plan, chunk_rows, next_token);
}

std::unique_ptr<RowStream> MakeSpoolStream(RowBatch spool,
                                           int64_t chunk_rows) {
  return std::make_unique<SpoolStream>(std::move(spool),
                                       std::max<int64_t>(1, chunk_rows));
}

}  // namespace gisql
