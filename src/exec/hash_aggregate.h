/// \file hash_aggregate.h
/// \brief Grouped aggregation shared by the mediator executor and the
/// component sources' partial aggregation.

#pragma once

#include "exec/aggregate.h"
#include "expr/expr.h"
#include "types/row.h"

namespace gisql {

/// \brief Hash-aggregates `rows`: groups by `group_by` expressions and
/// computes `aggs`, producing rows shaped [groups..., aggregates...]
/// with schema `out_schema`.
///
/// A global aggregation (empty `group_by`) over zero input rows yields
/// one row of empty-input aggregate values (COUNT=0, SUM=NULL, ...).
/// `limit` (-1 = none) caps the number of emitted groups.
Result<RowBatch> HashAggregate(const std::vector<const Row*>& rows,
                               const std::vector<ExprPtr>& group_by,
                               const std::vector<BoundAggregate>& aggs,
                               SchemaPtr out_schema, int64_t limit = -1);

}  // namespace gisql
