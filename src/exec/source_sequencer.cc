#include "exec/source_sequencer.h"

namespace gisql {

SourceSequencer::Turn::~Turn() {
  if (seq_ != nullptr) seq_->Release(node_);
}

void SourceSequencer::Plan(const PlanNodePtr& root) {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, size_t> counters;
  VisitPlan(root, [&](const PlanNodePtr& node) {
    if (node->kind != PlanKind::kRemoteFragment) return;
    tickets_[node.get()] =
        Ticket{node->fragment_source, counters[node->fragment_source]++};
  });
}

SourceSequencer::Turn SourceSequencer::Acquire(const PlanNode* node) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = tickets_.find(node);
  if (it == tickets_.end() || held_.count(node) > 0 ||
      finished_.count(node) > 0) {
    return Turn();
  }
  Lane& lane = lanes_[it->second.source];
  const size_t seq = it->second.seq;
  cv_.wait(lock, [&] { return lane.next == seq; });
  held_.insert(node);
  return Turn(this, node);
}

void SourceSequencer::AdvanceLane(Lane* lane, size_t seq) {
  if (lane->next == seq) {
    ++lane->next;
    while (lane->early_done.erase(lane->next) > 0) ++lane->next;
  } else if (seq > lane->next) {
    lane->early_done.insert(seq);
  }
}

void SourceSequencer::Release(const PlanNode* node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tickets_.find(node);
  if (it == tickets_.end()) return;
  held_.erase(node);
  finished_.insert(node);
  AdvanceLane(&lanes_[it->second.source], it->second.seq);
  cv_.notify_all();
}

void SourceSequencer::SkipSubtree(const PlanNodePtr& root) {
  std::lock_guard<std::mutex> lock(mu_);
  VisitPlan(root, [&](const PlanNodePtr& node) {
    if (node->kind != PlanKind::kRemoteFragment) return;
    auto it = tickets_.find(node.get());
    if (it == tickets_.end() || held_.count(node.get()) > 0 ||
        finished_.count(node.get()) > 0) {
      return;
    }
    finished_.insert(node.get());
    AdvanceLane(&lanes_[it->second.source], it->second.seq);
  });
  cv_.notify_all();
}

}  // namespace gisql
