#include "exec/vectorized.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <unordered_map>

#include "common/hash.h"
#include "common/string_util.h"
#include "exec/aggregate.h"

namespace gisql {

namespace {

using Column = ColumnBatch::Column;

/// A borrowed view of one cell: the columnar counterpart of Value,
/// without the allocation. Strings stay views into the column arena.
struct CellView {
  TypeId type = TypeId::kNull;
  bool null = true;
  bool b = false;
  int64_t i = 0;
  double d = 0.0;
  std::string_view s;
};

CellView CellAt(const Column& col, size_t row) {
  CellView c;
  c.type = col.type;
  c.null = col.IsNull(row);
  if (c.null) return c;
  switch (col.type) {
    case TypeId::kBool: c.b = col.bools[row] != 0; break;
    case TypeId::kInt64:
    case TypeId::kDate: c.i = col.ints[row]; break;
    case TypeId::kDouble: c.d = col.doubles[row]; break;
    case TypeId::kString: c.s = col.StringAt(row); break;
    case TypeId::kNull: break;
  }
  return c;
}

CellView CellOf(const Value& v) {
  CellView c;
  c.type = v.type();
  c.null = v.is_null();
  if (c.null) return c;
  switch (v.type()) {
    case TypeId::kBool: c.b = v.AsBool(); break;
    case TypeId::kInt64:
    case TypeId::kDate: c.i = v.AsInt(); break;
    case TypeId::kDouble: c.d = v.AsDouble(); break;
    case TypeId::kString: c.s = v.AsString(); break;
    case TypeId::kNull: break;
  }
  return c;
}

Value CellToValue(const CellView& c) {
  if (c.null) return Value::Null(c.type);
  switch (c.type) {
    case TypeId::kBool: return Value::Bool(c.b);
    case TypeId::kInt64: return Value::Int(c.i);
    case TypeId::kDate: return Value::Date(c.i);
    case TypeId::kDouble: return Value::Double(c.d);
    case TypeId::kString: return Value::String(std::string(c.s));
    case TypeId::kNull: break;
  }
  return Value::Null(c.type);
}

/// Mirrors Value::NumericValue().
double CellNumeric(const CellView& c) {
  switch (c.type) {
    case TypeId::kBool: return c.b ? 1.0 : 0.0;
    case TypeId::kInt64:
    case TypeId::kDate: return static_cast<double>(c.i);
    case TypeId::kDouble: return c.d;
    default: return 0.0;
  }
}

/// Mirrors Value::Compare() for non-NULL cells (callers handle NULL).
int CompareCells(const CellView& a, const CellView& b) {
  const bool numeric =
      (IsNumeric(a.type) || a.type == TypeId::kBool) &&
      (IsNumeric(b.type) || b.type == TypeId::kBool);
  if (a.type != b.type && !numeric) {
    return a.type < b.type ? -1 : 1;
  }
  if (a.type == TypeId::kString && b.type == TypeId::kString) {
    const int c = a.s.compare(b.s);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.type == TypeId::kBool && b.type == TypeId::kBool) {
    return static_cast<int>(a.b) - static_cast<int>(b.b);
  }
  if ((a.type == TypeId::kInt64 || a.type == TypeId::kDate) &&
      (b.type == TypeId::kInt64 || b.type == TypeId::kDate)) {
    return a.i < b.i ? -1 : (a.i > b.i ? 1 : 0);
  }
  const double x = CellNumeric(a);
  const double y = CellNumeric(b);
  return x < y ? -1 : (x > y ? 1 : 0);
}

/// Mirrors Value::Hash(), including the integral-double rule.
uint64_t HashCell(const CellView& c) {
  if (c.null) return 0x9b14deadULL;
  switch (c.type) {
    case TypeId::kBool: return HashInt(c.b ? 1 : 2);
    case TypeId::kInt64:
    case TypeId::kDate: return HashInt(static_cast<uint64_t>(c.i));
    case TypeId::kDouble: {
      if (c.d == std::floor(c.d) && std::abs(c.d) < 9.2e18) {
        return HashInt(static_cast<uint64_t>(static_cast<int64_t>(c.d)));
      }
      uint64_t bits;
      std::memcpy(&bits, &c.d, sizeof(bits));
      return HashInt(bits);
    }
    case TypeId::kString: return HashString(c.s);
    case TypeId::kNull: break;
  }
  return 0;
}

/// An evaluated scalar: a (possibly owned) column, or one constant
/// cell broadcast to every row.
struct ScalarVal {
  ColumnRef col;
  CellView konst;
  bool is_const = false;

  CellView at(size_t row) const {
    return is_const ? konst : CellAt(col.get(), row);
  }
  TypeId vtype() const { return is_const ? konst.type : col.get().type; }
};

/// Value type an expression in the scalar subset produces, mirroring
/// the row evaluator (arith yields DOUBLE iff an operand or the
/// declared type is DOUBLE, else INT64).
TypeId ScalarTypeOf(const Expr& e, const ColumnBatch& batch) {
  switch (e.kind) {
    case ExprKind::kColumn: return batch.column(e.column_index).type;
    case ExprKind::kLiteral: return e.literal.type();
    case ExprKind::kArith: {
      const TypeId l = ScalarTypeOf(*e.children[0], batch);
      const TypeId r = ScalarTypeOf(*e.children[1], batch);
      const bool use_double = l == TypeId::kDouble || r == TypeId::kDouble ||
                              e.type == TypeId::kDouble;
      return use_double ? TypeId::kDouble : TypeId::kInt64;
    }
    default: return TypeId::kNull;
  }
}

bool IsArithOperandType(TypeId t) {
  // The row evaluator reads arithmetic operands as int64 or via
  // NumericValue; strings would throw there, so they are out.
  return t == TypeId::kNull || t == TypeId::kBool || t == TypeId::kInt64 ||
         t == TypeId::kDouble || t == TypeId::kDate;
}

bool HasDivMod(const Expr& e) {
  if (e.kind == ExprKind::kArith &&
      (e.arith_op == ArithOp::kDiv || e.arith_op == ArithOp::kMod)) {
    return true;
  }
  for (const auto& c : e.children) {
    if (HasDivMod(*c)) return true;
  }
  return false;
}

Result<ScalarVal> EvalScalar(const Expr& e, const ColumnBatch& batch);

Result<ScalarVal> EvalArithColumnar(const Expr& e, const ColumnBatch& batch) {
  GISQL_ASSIGN_OR_RETURN(ScalarVal l, EvalScalar(*e.children[0], batch));
  GISQL_ASSIGN_OR_RETURN(ScalarVal r, EvalScalar(*e.children[1], batch));
  const size_t n = batch.num_rows();
  // Value types are per-column, so the row evaluator's per-row
  // use_double decision is loop-invariant here.
  const bool use_double = l.vtype() == TypeId::kDouble ||
                          r.vtype() == TypeId::kDouble ||
                          e.type == TypeId::kDouble;
  ScalarVal out;
  Column& col = out.col.owned;
  col.type = use_double ? TypeId::kDouble : TypeId::kInt64;
  if (use_double) {
    col.doubles.resize(n, 0.0);
  } else {
    col.ints.resize(n, 0);
  }
  for (size_t row = 0; row < n; ++row) {
    const CellView a = l.at(row);
    const CellView b = r.at(row);
    if (a.null || b.null) {
      col.SetNull(row, n);
      continue;
    }
    if (use_double) {
      const double x = CellNumeric(a);
      const double y = CellNumeric(b);
      switch (e.arith_op) {
        case ArithOp::kAdd: col.doubles[row] = x + y; break;
        case ArithOp::kSub: col.doubles[row] = x - y; break;
        case ArithOp::kMul: col.doubles[row] = x * y; break;
        case ArithOp::kDiv:
          if (y == 0.0) return Status::ExecutionError("division by zero");
          col.doubles[row] = x / y;
          break;
        case ArithOp::kMod:
          if (y == 0.0) return Status::ExecutionError("modulo by zero");
          col.doubles[row] = std::fmod(x, y);
          break;
      }
    } else {
      const int64_t x = a.type == TypeId::kBool ? (a.b ? 1 : 0) : a.i;
      const int64_t y = b.type == TypeId::kBool ? (b.b ? 1 : 0) : b.i;
      switch (e.arith_op) {
        case ArithOp::kAdd: col.ints[row] = x + y; break;
        case ArithOp::kSub: col.ints[row] = x - y; break;
        case ArithOp::kMul: col.ints[row] = x * y; break;
        case ArithOp::kDiv:
          if (y == 0) return Status::ExecutionError("division by zero");
          col.ints[row] = x / y;
          break;
        case ArithOp::kMod:
          if (y == 0) return Status::ExecutionError("modulo by zero");
          col.ints[row] = x % y;
          break;
      }
    }
  }
  return out;
}

Result<ScalarVal> EvalScalar(const Expr& e, const ColumnBatch& batch) {
  switch (e.kind) {
    case ExprKind::kColumn: {
      if (e.column_index >= batch.num_columns()) {
        return Status::ExecutionError("column $", e.column_index,
                                      " out of range for batch of width ",
                                      batch.num_columns());
      }
      ScalarVal v;
      v.col.borrowed = &batch.column(e.column_index);
      return v;
    }
    case ExprKind::kLiteral: {
      ScalarVal v;
      v.is_const = true;
      v.konst = CellOf(e.literal);
      return v;
    }
    case ExprKind::kArith:
      return EvalArithColumnar(e, batch);
    default:
      return Status::Internal("expression is not a vectorizable scalar: ",
                              e.ToString());
  }
}

/// Kleene truth of one predicate cell: 0=false, 1=true, 2=unknown.
int CellTruth(const CellView& c) {
  if (c.null) return 2;
  return c.b ? 1 : 0;
}

void StoreTruth(Column* col, size_t row, size_t n, int truth) {
  if (truth == 2) {
    col->SetNull(row, n);
  } else {
    col->bools[row] = truth == 1 ? 1 : 0;
  }
}

Column MakeBoolColumn(size_t n) {
  Column col;
  col.type = TypeId::kBool;
  col.bools.resize(n, 0);
  return col;
}

Result<ColumnRef> EvalPredicate(const Expr& e, const ColumnBatch& batch);

Result<ColumnRef> EvalCompareColumnar(const Expr& e,
                                      const ColumnBatch& batch) {
  GISQL_ASSIGN_OR_RETURN(ScalarVal l, EvalScalar(*e.children[0], batch));
  GISQL_ASSIGN_OR_RETURN(ScalarVal r, EvalScalar(*e.children[1], batch));
  const size_t n = batch.num_rows();
  ColumnRef out;
  out.owned = MakeBoolColumn(n);
  for (size_t row = 0; row < n; ++row) {
    const CellView a = l.at(row);
    const CellView b = r.at(row);
    if (a.null || b.null) {
      out.owned.SetNull(row, n);
      continue;
    }
    const int c = CompareCells(a, b);
    bool v = false;
    switch (e.compare_op) {
      case CompareOp::kEq: v = c == 0; break;
      case CompareOp::kNe: v = c != 0; break;
      case CompareOp::kLt: v = c < 0; break;
      case CompareOp::kLe: v = c <= 0; break;
      case CompareOp::kGt: v = c > 0; break;
      case CompareOp::kGe: v = c >= 0; break;
    }
    out.owned.bools[row] = v ? 1 : 0;
  }
  return out;
}

Result<ColumnRef> EvalPredicate(const Expr& e, const ColumnBatch& batch) {
  const size_t n = batch.num_rows();
  switch (e.kind) {
    case ExprKind::kColumn: {
      if (e.column_index >= batch.num_columns()) {
        return Status::ExecutionError("column $", e.column_index,
                                      " out of range for batch of width ",
                                      batch.num_columns());
      }
      ColumnRef out;
      out.borrowed = &batch.column(e.column_index);
      return out;
    }
    case ExprKind::kLiteral: {
      ColumnRef out;
      out.owned = MakeBoolColumn(n);
      const CellView c = CellOf(e.literal);
      for (size_t row = 0; row < n; ++row) {
        StoreTruth(&out.owned, row, n, CellTruth(c));
      }
      return out;
    }
    case ExprKind::kCompare:
      return EvalCompareColumnar(e, batch);
    case ExprKind::kIsNull: {
      GISQL_ASSIGN_OR_RETURN(ScalarVal v, EvalScalar(*e.children[0], batch));
      ColumnRef out;
      out.owned = MakeBoolColumn(n);
      for (size_t row = 0; row < n; ++row) {
        const bool isnull = v.at(row).null;
        out.owned.bools[row] = (e.negated ? !isnull : isnull) ? 1 : 0;
      }
      return out;
    }
    case ExprKind::kLike: {
      GISQL_ASSIGN_OR_RETURN(ScalarVal v, EvalScalar(*e.children[0], batch));
      const CellView pat = CellOf(e.children[1]->literal);
      ColumnRef out;
      out.owned = MakeBoolColumn(n);
      for (size_t row = 0; row < n; ++row) {
        const CellView c = v.at(row);
        if (c.null || pat.null) {
          out.owned.SetNull(row, n);
          continue;
        }
        const bool m = LikeMatch(c.s, pat.s);
        out.owned.bools[row] = (e.negated ? !m : m) ? 1 : 0;
      }
      return out;
    }
    case ExprKind::kIn: {
      GISQL_ASSIGN_OR_RETURN(ScalarVal v, EvalScalar(*e.children[0], batch));
      std::vector<CellView> items;
      items.reserve(e.children.size() - 1);
      bool any_null_item = false;
      for (size_t i = 1; i < e.children.size(); ++i) {
        const CellView item = CellOf(e.children[i]->literal);
        if (item.null) {
          any_null_item = true;
        } else {
          items.push_back(item);
        }
      }
      ColumnRef out;
      out.owned = MakeBoolColumn(n);
      for (size_t row = 0; row < n; ++row) {
        const CellView c = v.at(row);
        if (c.null) {
          out.owned.SetNull(row, n);
          continue;
        }
        bool matched = false;
        for (const CellView& item : items) {
          if (CompareCells(c, item) == 0) {
            matched = true;
            break;
          }
        }
        if (matched) {
          out.owned.bools[row] = e.negated ? 0 : 1;
        } else if (any_null_item) {
          out.owned.SetNull(row, n);
        } else {
          out.owned.bools[row] = e.negated ? 1 : 0;
        }
      }
      return out;
    }
    case ExprKind::kNot: {
      GISQL_ASSIGN_OR_RETURN(ColumnRef c, EvalPredicate(*e.children[0], batch));
      const Column& in = c.get();
      ColumnRef out;
      out.owned = MakeBoolColumn(n);
      for (size_t row = 0; row < n; ++row) {
        const int t = in.IsNull(row) ? 2 : (in.bools[row] != 0 ? 1 : 0);
        StoreTruth(&out.owned, row, n, t == 2 ? 2 : (t == 1 ? 0 : 1));
      }
      return out;
    }
    case ExprKind::kLogic: {
      GISQL_ASSIGN_OR_RETURN(ColumnRef lc, EvalPredicate(*e.children[0], batch));
      GISQL_ASSIGN_OR_RETURN(ColumnRef rc, EvalPredicate(*e.children[1], batch));
      const Column& l = lc.get();
      const Column& r = rc.get();
      ColumnRef out;
      out.owned = MakeBoolColumn(n);
      for (size_t row = 0; row < n; ++row) {
        const int lt = l.IsNull(row) ? 2 : (l.bools[row] != 0 ? 1 : 0);
        const int rt = r.IsNull(row) ? 2 : (r.bools[row] != 0 ? 1 : 0);
        int t;
        if (e.logic_op == LogicOp::kAnd) {
          t = (lt == 0 || rt == 0) ? 0 : ((lt == 2 || rt == 2) ? 2 : 1);
        } else {
          t = (lt == 1 || rt == 1) ? 1 : ((lt == 2 || rt == 2) ? 2 : 0);
        }
        StoreTruth(&out.owned, row, n, t);
      }
      return out;
    }
    default:
      return Status::Internal("expression is not a vectorizable predicate: ",
                              e.ToString());
  }
}

}  // namespace

bool IsVectorizableScalar(const Expr& e, const ColumnBatch& batch) {
  switch (e.kind) {
    case ExprKind::kColumn:
      return e.column_index < batch.num_columns();
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kArith:
      return IsVectorizableScalar(*e.children[0], batch) &&
             IsVectorizableScalar(*e.children[1], batch) &&
             IsArithOperandType(ScalarTypeOf(*e.children[0], batch)) &&
             IsArithOperandType(ScalarTypeOf(*e.children[1], batch));
    default:
      return false;
  }
}

bool IsVectorizablePredicate(const Expr& e, const ColumnBatch& batch) {
  switch (e.kind) {
    case ExprKind::kColumn: {
      // A bare column is only a predicate if it is BOOL (or all-NULL).
      if (e.column_index >= batch.num_columns()) return false;
      const TypeId t = batch.column(e.column_index).type;
      return t == TypeId::kBool || t == TypeId::kNull;
    }
    case ExprKind::kLiteral:
      return e.literal.is_null() || e.literal.type() == TypeId::kBool;
    case ExprKind::kCompare:
      // Division is excluded anywhere under a predicate: the row path
      // may short-circuit past a division by zero that eager columnar
      // evaluation would surface.
      return IsVectorizableScalar(*e.children[0], batch) &&
             IsVectorizableScalar(*e.children[1], batch) &&
             !HasDivMod(e);
    case ExprKind::kIsNull:
      return IsVectorizableScalar(*e.children[0], batch) && !HasDivMod(e);
    case ExprKind::kLike: {
      if (e.children[1]->kind != ExprKind::kLiteral) return false;
      const Value& pat = e.children[1]->literal;
      if (!pat.is_null() && pat.type() != TypeId::kString) return false;
      if (!IsVectorizableScalar(*e.children[0], batch) || HasDivMod(e)) {
        return false;
      }
      // Non-NULL non-string LIKE operands are a row-path error.
      const TypeId t = ScalarTypeOf(*e.children[0], batch);
      return t == TypeId::kString || t == TypeId::kNull;
    }
    case ExprKind::kIn: {
      if (!IsVectorizableScalar(*e.children[0], batch) ||
          HasDivMod(*e.children[0])) {
        return false;
      }
      for (size_t i = 1; i < e.children.size(); ++i) {
        if (e.children[i]->kind != ExprKind::kLiteral) return false;
      }
      return true;
    }
    case ExprKind::kNot:
      return IsVectorizablePredicate(*e.children[0], batch);
    case ExprKind::kLogic:
      return IsVectorizablePredicate(*e.children[0], batch) &&
             IsVectorizablePredicate(*e.children[1], batch);
    default:
      return false;
  }
}

Result<ColumnRef> EvalScalarColumnar(const Expr& e, const ColumnBatch& batch) {
  GISQL_ASSIGN_OR_RETURN(ScalarVal v, EvalScalar(e, batch));
  if (!v.is_const) {
    return std::move(v.col);
  }
  // Broadcast a top-level literal (rare: constant group keys).
  const size_t n = batch.num_rows();
  ColumnRef out;
  Column& col = out.owned;
  col.type = v.konst.type;
  for (size_t row = 0; row < n; ++row) {
    if (v.konst.null) {
      col.SetNull(row, n);
    }
  }
  switch (v.konst.type) {
    case TypeId::kBool:
      col.bools.assign(n, v.konst.null ? 0 : (v.konst.b ? 1 : 0));
      break;
    case TypeId::kInt64:
    case TypeId::kDate:
      col.ints.assign(n, v.konst.null ? 0 : v.konst.i);
      break;
    case TypeId::kDouble:
      col.doubles.assign(n, v.konst.null ? 0.0 : v.konst.d);
      break;
    case TypeId::kString: {
      // Same arena bound AppendCell enforces: the offsets are uint32_t.
      if (!v.konst.null &&
          n != 0 && v.konst.s.size() > UINT32_MAX / n) {
        return Status::InvalidArgument(
            "string arena would exceed 4 GiB broadcasting literal of ",
            v.konst.s.size(), " bytes over ", n, " rows");
      }
      col.offsets.assign(n + 1, 0);
      if (!v.konst.null) {
        for (size_t row = 0; row < n; ++row) {
          col.arena.append(v.konst.s);
          col.offsets[row + 1] = static_cast<uint32_t>(col.arena.size());
        }
      }
      break;
    }
    case TypeId::kNull:
      break;
  }
  return out;
}

Result<ColumnRef> EvalPredicateColumnar(const Expr& e,
                                        const ColumnBatch& batch) {
  return EvalPredicate(e, batch);
}

std::vector<uint32_t> SelectTrue(const ColumnBatch::Column& pred, size_t n) {
  std::vector<uint32_t> sel;
  sel.reserve(n);
  if (pred.type == TypeId::kNull) return sel;  // all UNKNOWN
  for (size_t row = 0; row < n; ++row) {
    if (!pred.IsNull(row) && pred.bools[row] != 0) {
      sel.push_back(static_cast<uint32_t>(row));
    }
  }
  return sel;
}

std::vector<uint64_t> HashKeysColumnar(const ColumnBatch& batch,
                                       const std::vector<size_t>& keys) {
  const size_t n = batch.num_rows();
  std::vector<uint64_t> out(n, kFnvOffset);
  for (size_t k : keys) {
    const Column& col = batch.column(k);
    for (size_t row = 0; row < n; ++row) {
      out[row] = HashCombine(out[row], HashCell(CellAt(col, row)));
    }
  }
  return out;
}

bool CanVectorizeAggregate(const std::vector<ExprPtr>& group_by,
                           const std::vector<BoundAggregate>& aggs,
                           const ColumnBatch& batch) {
  for (const auto& g : group_by) {
    if (!IsVectorizableScalar(*g, batch)) return false;
  }
  for (const auto& a : aggs) {
    if (a.distinct) return false;
    if (a.kind == AggKind::kCountStar) continue;
    if (a.arg == nullptr || !IsVectorizableScalar(*a.arg, batch)) {
      return false;
    }
    if (a.kind == AggKind::kSum || a.kind == AggKind::kAvg) {
      // The row accumulator reads SUM/AVG inputs as int64 or double.
      const TypeId t = ScalarTypeOf(*a.arg, batch);
      if (t != TypeId::kInt64 && t != TypeId::kDate &&
          t != TypeId::kDouble && t != TypeId::kNull) {
        return false;
      }
    }
  }
  return true;
}

Result<RowBatch> HashAggregateColumnar(const ColumnBatch& batch,
                                       const std::vector<ExprPtr>& group_by,
                                       const std::vector<BoundAggregate>& aggs,
                                       SchemaPtr out_schema, int64_t limit) {
  const size_t n = batch.num_rows();

  std::vector<ScalarVal> keys;
  keys.reserve(group_by.size());
  for (const auto& g : group_by) {
    GISQL_ASSIGN_OR_RETURN(ScalarVal v, EvalScalar(*g, batch));
    keys.push_back(std::move(v));
  }
  std::vector<ScalarVal> args(aggs.size());
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (aggs[i].kind == AggKind::kCountStar) continue;
    GISQL_ASSIGN_OR_RETURN(args[i], EvalScalar(*aggs[i].arg, batch));
  }

  // Typed accumulator state mirroring AggregateAccumulator. MIN/MAX
  // remember the row of the current extremum instead of copying the
  // value out of the column.
  struct VecAcc {
    int64_t count = 0;
    int64_t sum_i = 0;
    double sum_d = 0.0;
    bool sum_is_double = false;
    size_t min_row = SIZE_MAX;
    size_t max_row = SIZE_MAX;
  };
  struct VGroup {
    size_t rep;  ///< first input row of the group (its key cells)
    std::vector<VecAcc> accs;
  };
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  std::vector<VGroup> groups;

  for (size_t row = 0; row < n; ++row) {
    uint64_t h = 0x9e3779b9;
    for (const auto& key : keys) h = HashCombine(h, HashCell(key.at(row)));
    VGroup* group = nullptr;
    auto& bucket = buckets[h];
    for (size_t gi : bucket) {
      bool same = true;
      for (const auto& key : keys) {
        const CellView a = key.at(row);
        const CellView b = key.at(groups[gi].rep);
        if (a.null != b.null || (!a.null && CompareCells(a, b) != 0)) {
          same = false;
          break;
        }
      }
      if (same) {
        group = &groups[gi];
        break;
      }
    }
    if (group == nullptr) {
      bucket.push_back(groups.size());
      VGroup g;
      g.rep = row;
      g.accs.resize(aggs.size());
      for (size_t i = 0; i < aggs.size(); ++i) {
        g.accs[i].sum_is_double =
            aggs[i].result_type == TypeId::kDouble ||
            (aggs[i].arg && aggs[i].arg->type == TypeId::kDouble);
      }
      groups.push_back(std::move(g));
      group = &groups.back();
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      VecAcc& acc = group->accs[i];
      if (aggs[i].kind == AggKind::kCountStar) {
        ++acc.count;
        continue;
      }
      const CellView c = args[i].at(row);
      if (c.null) continue;  // aggregates ignore NULL inputs
      switch (aggs[i].kind) {
        case AggKind::kCountStar:
          break;
        case AggKind::kCount:
          ++acc.count;
          break;
        case AggKind::kSum:
        case AggKind::kAvg:
          ++acc.count;
          if (acc.sum_is_double || c.type == TypeId::kDouble) {
            acc.sum_is_double = true;
            acc.sum_d += CellNumeric(c);
          } else {
            acc.sum_i += c.i;
          }
          break;
        case AggKind::kMin:
          if (acc.min_row == SIZE_MAX ||
              CompareCells(c, args[i].at(acc.min_row)) < 0) {
            acc.min_row = row;
          }
          break;
        case AggKind::kMax:
          if (acc.max_row == SIZE_MAX ||
              CompareCells(c, args[i].at(acc.max_row)) > 0) {
            acc.max_row = row;
          }
          break;
      }
    }
  }

  RowBatch out(std::move(out_schema));
  out.Reserve(groups.size());
  for (const auto& g : groups) {
    if (limit >= 0 && static_cast<int64_t>(out.num_rows()) >= limit) break;
    Row row;
    row.reserve(keys.size() + aggs.size());
    for (const auto& key : keys) row.push_back(CellToValue(key.at(g.rep)));
    for (size_t i = 0; i < aggs.size(); ++i) {
      const VecAcc& acc = g.accs[i];
      switch (aggs[i].kind) {
        case AggKind::kCountStar:
        case AggKind::kCount:
          row.push_back(Value::Int(acc.count));
          break;
        case AggKind::kSum:
          if (acc.count == 0) {
            row.push_back(Value::Null(aggs[i].result_type));
          } else if (acc.sum_is_double) {
            row.push_back(
                Value::Double(acc.sum_d + static_cast<double>(acc.sum_i)));
          } else {
            row.push_back(Value::Int(acc.sum_i));
          }
          break;
        case AggKind::kAvg:
          if (acc.count == 0) {
            row.push_back(Value::Null(TypeId::kDouble));
          } else {
            const double total = acc.sum_d + static_cast<double>(acc.sum_i);
            row.push_back(
                Value::Double(total / static_cast<double>(acc.count)));
          }
          break;
        case AggKind::kMin:
          row.push_back(acc.min_row == SIZE_MAX
                            ? Value::Null(aggs[i].result_type)
                            : CellToValue(args[i].at(acc.min_row)));
          break;
        case AggKind::kMax:
          row.push_back(acc.max_row == SIZE_MAX
                            ? Value::Null(aggs[i].result_type)
                            : CellToValue(args[i].at(acc.max_row)));
          break;
      }
    }
    out.Append(std::move(row));
  }
  // SQL: a global aggregate over no rows still produces one row.
  if (group_by.empty() && out.num_rows() == 0 && (limit < 0 || limit > 0)) {
    Row row;
    for (const auto& a : aggs) {
      AggregateAccumulator acc(a);
      row.push_back(acc.Finalize());
    }
    out.Append(std::move(row));
  }
  return out;
}

}  // namespace gisql
