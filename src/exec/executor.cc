#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "catalog/system_tables.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/source_health.h"
#include "exec/hash_aggregate.h"
#include "exec/vectorized.h"
#include "expr/eval.h"
#include "net/retry.h"
#include "sched/circuit_breaker.h"
#include "sched/memory_budget.h"
#include "wire/protocol.h"
#include "wire/serde.h"

namespace gisql {

Result<ExecOutput> Executor::Execute(const PlanNodePtr& plan) {
  if (ctx_.net == nullptr) {
    return Status::InvalidArgument("executor requires a network");
  }
  // Serial execution already visits fragments in pre-order; only
  // pooled execution needs the explicit ordering.
  if (ctx_.parallel_execution && ctx_.pool != nullptr) {
    sequencer_.Plan(plan);
  }
  return Exec(*plan, ctx_.trace_start_ms, ctx_.trace_parent);
}

Status Executor::ChargeMemory(size_t rows, size_t width, const char* what) {
  if (ctx_.memory == nullptr) return Status::OK();
  return ctx_.memory->Charge(
      EstimateRowBytes(static_cast<int64_t>(rows),
                       static_cast<int64_t>(width)),
      what);
}

uint64_t Executor::BeginNodeSpan(const PlanNode& node, double t0,
                                 uint64_t parent) {
  if (ctx_.trace == nullptr) return 0;
  std::string label;
  if (node.kind == PlanKind::kRemoteFragment) {
    label = "fragment " + node.fragment.table + " @" + node.fragment_source;
  } else if (node.kind == PlanKind::kVirtualScan) {
    label = "system " + node.scan_global_name;
  } else {
    label = PlanKindName(node.kind);
  }
  const uint64_t span =
      ctx_.trace->Begin(std::move(label), "operator", parent, t0);
  if (node.kind == PlanKind::kRemoteFragment) {
    ctx_.trace->SetHost(span, node.fragment_source);
  }
  return span;
}

void Executor::FinishNodeSpan(const PlanNode& node, uint64_t span, double t0,
                              const Result<ExecOutput>& out) {
  if (out.ok()) {
    if (ctx_.record_actuals) {
      node.actual_rows = static_cast<double>(out->batch.num_rows());
      node.actual_ms = out->elapsed_ms;
    }
    if (ctx_.trace != nullptr) {
      ctx_.trace->SetRows(span, out->batch.num_rows());
      ctx_.trace->End(span, t0 + out->elapsed_ms);
    }
  } else if (ctx_.trace != nullptr) {
    ctx_.trace->SetNote(span, out.status().message());
    ctx_.trace->End(span, t0);
  }
}

Result<ExecOutput> Executor::ExecFragment(const PlanNode& node,
                                          const FragmentPlan& frag,
                                          double t0, uint64_t self) {
  // Wait for this fragment's turn on its planned source (no-op when
  // sequencing is off or on re-entry); held until the response is in.
  SourceSequencer::Turn turn = sequencer_.Acquire(&node);
  if (frag.semijoin_column >= 0 && frag.semijoin_values.empty()) {
    // A decomposer marker without injected keys (e.g. the plain path of
    // a join that fell back to shipping): execute as a plain fragment.
    FragmentPlan plain = frag;
    plain.semijoin_column = -1;
    return ExecFragment(node, plain, t0, self);
  }
  // Candidate sources: the planned primary, then the alternates of a
  // replicated view in catalog order. Each candidate gets the full
  // retry budget; exhausting a candidate on a transport failure moves
  // to the next replica. All attempts and backoffs charge the same
  // simulated clock (E11 failover and E15 chaos share this path).
  struct Candidate {
    const std::string* source;
    const std::string* table;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({&node.fragment_source, &frag.table});
  for (const auto& alt : node.scan_alternates) {
    candidates.push_back({&alt.source, &alt.exported_name});
  }
  // Health-aware routing: a suspect source (sustained failure streak —
  // likely down) is tried after the healthy replicas instead of first,
  // saving the detection-timeout burn its attempt would cost. The sort
  // is stable, so plan order survives while everyone is healthy, and
  // demoted candidates tie-break on name so the order never depends on
  // container layout.
  if (ctx_.health_aware_routing && ctx_.health != nullptr &&
      candidates.size() > 1) {
    auto penalty = [&](const Candidate& c) {
      return ctx_.health->StateOf(*c.source) == SourceHealthState::kSuspect
                 ? 1
                 : 0;
    };
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](const Candidate& a, const Candidate& b) {
                       const int pa = penalty(a), pb = penalty(b);
                       if (pa != pb) return pa < pb;
                       return pa > 0 && *a.source < *b.source;
                     });
  }

  double spent_ms = 0.0;
  Status last;
  std::string tried;
  // Node-level network actuals, accumulated across all candidates and
  // attempts (failed ones included — their traffic was charged too).
  int64_t total_sent = 0;
  int64_t total_received = 0;
  int64_t total_attempts = 0;
  auto record_net_actuals = [&] {
    if (!ctx_.record_actuals) return;
    node.actual_bytes_sent = total_sent;
    node.actual_bytes_received = total_received;
    node.actual_messages = total_attempts;
    node.actual_attempts = total_attempts;
  };
  // Decorrelates backoff jitter between the fragments of one query.
  const uint64_t nonce = HashString(frag.table);
  const wire::Opcode opcode = ctx_.columnar_wire
                                  ? wire::Opcode::kExecuteFragmentColumnar
                                  : wire::Opcode::kExecuteFragment;
  for (size_t i = 0; i < candidates.size(); ++i) {
    // An open breaker answers before the wire does: no message, no
    // bytes, no simulated time — the skip is free by construction and
    // the E17 bench asserts it stays that way.
    if (ctx_.breakers != nullptr &&
        ctx_.breakers->ShouldSkip(*candidates[i].source)) {
      last = Status::NetworkError("circuit breaker open for source '",
                                  *candidates[i].source, "'");
      if (ctx_.trace != nullptr) {
        const uint64_t sk =
            ctx_.trace->Begin("breaker.skip", "net", self, t0 + spent_ms);
        ctx_.trace->SetHost(sk, *candidates[i].source);
        ctx_.trace->End(sk, t0 + spent_ms);
      }
      tried += tried.empty() ? *candidates[i].source
                             : ", " + *candidates[i].source;
      if (i + 1 < candidates.size()) {
        GISQL_LOG(kInfo) << "breaker open for '" << *candidates[i].source
                         << "'; skipping to replica '"
                         << *candidates[i + 1].source << "'";
      }
      continue;
    }
    FragmentPlan attempt = frag;
    attempt.table = *candidates[i].table;
    attempt.snapshot_ts = ctx_.snapshot_ts;
    attempt.txn_id = ctx_.txn_id;
    std::vector<uint8_t> request = wire::SerializeFragment(attempt);
    if (ctx_.trace != nullptr) {
      // Wire-encode marker: free on the simulated clock, but it shows
      // what the mediator shipped before any network time was spent.
      const uint64_t enc = ctx_.trace->Begin("encode", "net", self,
                                             t0 + spent_ms);
      ctx_.trace->SetHost(enc, *candidates[i].source);
      ctx_.trace->AddIo(enc, static_cast<int64_t>(request.size()), 0, 0, 0,
                        0);
      ctx_.trace->End(enc, t0 + spent_ms);
    }
    RetryResult call = CallWithRetry(
        *ctx_.net, ctx_.retry_policy, ctx_.mediator_host,
        *candidates[i].source, static_cast<uint8_t>(opcode), request, nonce,
        TraceSink{ctx_.trace, self, t0 + spent_ms});
    spent_ms += call.elapsed_ms;
    total_sent += call.bytes_sent;
    total_received += call.bytes_received;
    total_attempts += call.attempts;
    if (ctx_.trace != nullptr) {
      ctx_.trace->AddIo(self, call.bytes_sent, call.bytes_received,
                        call.attempts, call.attempts,
                        call.attempts > 0 ? call.attempts - 1 : 0);
    }
    if (call.ok()) {
      record_net_actuals();
      ByteReader reader(call.payload);
      ExecOutput out;
      RowBatch batch;
      if (ctx_.columnar_wire) {
        GISQL_ASSIGN_OR_RETURN(uint8_t format, reader.GetU8());
        if (format == wire::kBatchFormatColumnar) {
          GISQL_ASSIGN_OR_RETURN(ColumnBatch cols,
                                 wire::ReadColumnBatch(&reader));
          if (cols.num_columns() != node.output_schema->num_fields()) {
            return Status::ExecutionError(
                "fragment result arity ", cols.num_columns(),
                " does not match plan arity ",
                node.output_schema->num_fields(), " from source '",
                *candidates[i].source, "'");
          }
          cols.AdoptSchema(node.output_schema);
          batch = cols.ToRows();
          out.columnar =
              std::make_shared<const ColumnBatch>(std::move(cols));
        } else if (format == wire::kBatchFormatRow) {
          GISQL_ASSIGN_OR_RETURN(batch, wire::ReadBatch(&reader));
        } else {
          return Status::SerializationError("bad batch format byte ",
                                            int(format));
        }
      } else {
        GISQL_ASSIGN_OR_RETURN(batch, wire::ReadBatch(&reader));
      }
      if (batch.schema()->num_fields() != node.output_schema->num_fields()) {
        return Status::ExecutionError(
            "fragment result arity ", batch.schema()->num_fields(),
            " does not match plan arity ", node.output_schema->num_fields(),
            " from source '", *candidates[i].source, "'");
      }
      // Page-stats trailer (sources with paged storage append it after
      // the batch payload; absence just leaves the actuals unset).
      if (!reader.AtEnd()) {
        GISQL_ASSIGN_OR_RETURN(uint64_t page_hits, reader.GetVarint());
        GISQL_ASSIGN_OR_RETURN(uint64_t page_misses, reader.GetVarint());
        GISQL_ASSIGN_OR_RETURN(uint64_t evictions, reader.GetVarint());
        GISQL_ASSIGN_OR_RETURN(double disk_us, reader.GetDouble());
        if (ctx_.record_actuals) {
          node.actual_page_hits = static_cast<int64_t>(page_hits);
          node.actual_page_misses = static_cast<int64_t>(page_misses);
          node.actual_evictions = static_cast<int64_t>(evictions);
          node.actual_disk_ms = disk_us / 1e3;
        }
      }
      // Adopt the plan's (qualified) schema for downstream resolution.
      out.batch = RowBatch(node.output_schema, std::move(batch.rows()));
      out.elapsed_ms = spent_ms;
      GISQL_RETURN_NOT_OK(ChargeMemory(out.batch.num_rows(),
                                       node.output_schema->num_fields(),
                                       "a fragment result"));
      return out;
    }
    last = std::move(call.status);
    // Only an unreachable source justifies reading a different replica;
    // application errors would repeat identically elsewhere.
    if (!last.IsNetworkError()) {
      record_net_actuals();
      return last;
    }
    tried += tried.empty() ? *candidates[i].source
                           : ", " + *candidates[i].source;
    if (i + 1 < candidates.size()) {
      GISQL_LOG(kWarn) << "source '" << *candidates[i].source
                       << "' unreachable; failing over to replica '"
                       << *candidates[i + 1].source << "'";
    }
  }
  record_net_actuals();
  if (candidates.size() > 1) {
    return Status::NetworkError("all replicas of '", frag.table,
                                "' unreachable (tried ", tried,
                                "); last error: ", last.message());
  }
  return last;
}

Result<ExecOutput> Executor::ExecUnionAll(const PlanNode& node, double t0,
                                          uint64_t self) {
  ExecOutput out;
  out.batch = RowBatch(node.output_schema);
  double slowest = 0.0;

  // Fetch members concurrently on the bounded pool (their simulated
  // costs already combine as a max; the workers only buy wall-clock
  // overlap). Results are appended in member order, so output is
  // deterministic regardless of completion order or pool size. Every
  // member's span starts at t0 — overlap is the simulated semantics.
  std::vector<Result<ExecOutput>> parts(
      node.children.size(), Result<ExecOutput>(ExecOutput{}));
  if (ctx_.parallel_execution && ctx_.pool != nullptr &&
      node.children.size() > 1) {
    TaskGroup group(ctx_.pool);
    for (size_t i = 0; i < node.children.size(); ++i) {
      group.Spawn([this, &node, &parts, t0, self, i] {
        parts[i] = Exec(*node.children[i], t0, self);
      });
    }
    group.Wait();
  } else {
    for (size_t i = 0; i < node.children.size(); ++i) {
      parts[i] = Exec(*node.children[i], t0, self);
    }
  }

  for (auto& part_result : parts) {
    GISQL_RETURN_NOT_OK(part_result.status());
    ExecOutput part = std::move(*part_result);
    slowest = std::max(slowest, part.elapsed_ms);
    const size_t width = node.output_schema->num_fields();
    // Columnar members expose per-column value types, so when every
    // column already matches the view type the per-value cast checks
    // vanish for the whole member.
    bool already_coerced = ctx_.vectorized_execution &&
                           part.columnar != nullptr &&
                           part.columnar->num_columns() >= width;
    if (already_coerced) {
      for (size_t c = 0; c < width; ++c) {
        const ColumnBatch::Column& col = part.columnar->column(c);
        if (col.type != node.output_schema->field(c).type &&
            col.type != TypeId::kNull) {
          already_coerced = false;
          break;
        }
      }
    }
    if (already_coerced) {
      for (auto& row : part.batch.rows()) {
        out.batch.Append(std::move(row));
      }
      continue;
    }
    for (auto& row : part.batch.rows()) {
      // Coerce member values to the view's column types.
      for (size_t c = 0; c < width && c < row.size(); ++c) {
        const TypeId want = node.output_schema->field(c).type;
        if (!row[c].is_null() && row[c].type() != want) {
          GISQL_ASSIGN_OR_RETURN(row[c], row[c].CastTo(want));
        }
      }
      out.batch.Append(std::move(row));
    }
  }
  out.elapsed_ms = slowest + CpuMs(out.batch.num_rows());
  GISQL_RETURN_NOT_OK(ChargeMemory(out.batch.num_rows(),
                                   node.output_schema->num_fields(),
                                   "a union result"));
  return out;
}

Result<ExecOutput> Executor::ExecJoin(const PlanNode& node, double t0,
                                      uint64_t self) {
  const PlanNode& left_node = *node.children[0];
  const PlanNode& right_node = *node.children[1];
  // Ship-strategy joins fetch both sides independently: overlap them on
  // threads. Semijoin needs the left result first, so it stays serial.
  // Either way both ship-side spans start at t0 (simulated overlap);
  // the semijoin probe starts only after the build side arrived.
  ExecOutput left;
  ExecOutput right;
  bool right_done = false;
  if (ctx_.parallel_execution && ctx_.pool != nullptr &&
      node.join_strategy == JoinStrategy::kShip) {
    Result<ExecOutput> right_result(ExecOutput{});
    {
      TaskGroup group(ctx_.pool);
      group.Spawn([this, &right_node, &right_result, t0, self] {
        right_result = Exec(right_node, t0, self);
      });
      Result<ExecOutput> left_result = Exec(left_node, t0, self);
      group.Wait();
      GISQL_RETURN_NOT_OK(left_result.status());
      left = std::move(*left_result);
    }
    GISQL_RETURN_NOT_OK(right_result.status());
    right = std::move(*right_result);
    right_done = true;
  } else {
    Result<ExecOutput> left_result = Exec(left_node, t0, self);
    if (!left_result.ok()) {
      // The right subtree will never run; free its sequencer tickets
      // so concurrent same-source fragments elsewhere don't wait.
      sequencer_.SkipSubtree(node.children[1]);
      return left_result.status();
    }
    left = std::move(*left_result);
  }

  bool sequential = false;
  if (right_done) {
    // both sides already fetched above
  } else if (node.join_strategy == JoinStrategy::kSemijoin &&
             !node.left_keys.empty()) {
    // Collect distinct build-side key values.
    struct ValueHash {
      size_t operator()(const Value& v) const { return v.Hash(); }
    };
    struct ValueEq {
      bool operator()(const Value& a, const Value& b) const {
        return a.Compare(b) == 0;
      }
    };
    std::unordered_set<Value, ValueHash, ValueEq> key_set;
    const size_t key_col = node.left_keys[0];
    for (const auto& row : left.batch.rows()) {
      if (!row[key_col].is_null()) key_set.insert(row[key_col]);
    }
    std::vector<Value> keys(key_set.begin(), key_set.end());
    // Deterministic key order for reproducible byte counts.
    std::sort(keys.begin(), keys.end(),
              [](const Value& a, const Value& b) {
                return a.Compare(b) < 0;
              });
    sequential = true;  // the reduction depends on the left result
    Result<ExecOutput> probe =
        ExecSemijoinProbe(right_node, keys, t0 + left.elapsed_ms, self);
    if (!probe.ok()) {
      // The probe may have failed before reaching the marked fragment;
      // release whatever tickets it never claimed.
      sequencer_.SkipSubtree(node.children[1]);
      return probe.status();
    }
    right = std::move(*probe);
  } else {
    GISQL_ASSIGN_OR_RETURN(right, Exec(right_node, t0, self));
  }

  // Build a hash table over the right side. When a side arrived
  // columnar, key hashes come from a bulk pass over the key columns
  // (HashKeysColumnar matches HashRowKeys cell for cell) instead of a
  // per-row, per-Value hash.
  std::unordered_map<uint64_t, std::vector<const Row*>> table;
  table.reserve(right.batch.num_rows());
  // Bucket and pointer overhead per build row; the rows themselves
  // were charged when their batch materialized.
  if (ctx_.memory != nullptr) {
    GISQL_RETURN_NOT_OK(ctx_.memory->Charge(
        48 * static_cast<int64_t>(right.batch.num_rows()),
        "a join hash table"));
  }
  auto keys_nonnull = [](const Row& row, const std::vector<size_t>& keys) {
    for (size_t k : keys) {
      if (row[k].is_null()) return false;
    }
    return true;
  };
  const bool hash_vectorized =
      ctx_.vectorized_execution && !node.left_keys.empty();
  std::vector<uint64_t> right_hashes;
  if (hash_vectorized && right.columnar != nullptr) {
    right_hashes = HashKeysColumnar(*right.columnar, node.right_keys);
  }
  std::vector<uint64_t> left_hashes;
  if (hash_vectorized && left.columnar != nullptr) {
    left_hashes = HashKeysColumnar(*left.columnar, node.left_keys);
  }
  bool right_has_null_key = false;
  {
    size_t r = 0;
    for (const auto& row : right.batch.rows()) {
      const size_t idx = r++;
      if (!keys_nonnull(row, node.right_keys)) {
        right_has_null_key = true;
        continue;
      }
      const uint64_t h = right_hashes.empty()
                             ? HashRowKeys(row, node.right_keys)
                             : right_hashes[idx];
      table[h].push_back(&row);
    }
  }

  if (node.join_type == JoinType::kAnti) {
    // Null-aware anti-join (NOT IN semantics): a NULL anywhere on the
    // right makes every membership test UNKNOWN → nothing qualifies;
    // NULL probes are UNKNOWN too and drop.
    ExecOutput out;
    out.batch = RowBatch(node.output_schema);
    if (!right_has_null_key) {
      size_t l = 0;
      for (const auto& lrow : left.batch.rows()) {
        const size_t lidx = l++;
        if (!keys_nonnull(lrow, node.left_keys)) continue;
        auto it = table.find(left_hashes.empty()
                                 ? HashRowKeys(lrow, node.left_keys)
                                 : left_hashes[lidx]);
        bool matched = false;
        if (it != table.end()) {
          for (const Row* rrow : it->second) {
            bool equal = true;
            for (size_t i = 0; i < node.left_keys.size(); ++i) {
              if (lrow[node.left_keys[i]].Compare(
                      (*rrow)[node.right_keys[i]]) != 0) {
                equal = false;
                break;
              }
            }
            if (equal) {
              matched = true;
              break;
            }
          }
        }
        if (!matched) out.batch.Append(lrow);
      }
    }
    const double fetch = sequential
                             ? left.elapsed_ms + right.elapsed_ms
                             : std::max(left.elapsed_ms, right.elapsed_ms);
    out.elapsed_ms = fetch + CpuMs(left.batch.num_rows() +
                                   right.batch.num_rows());
    GISQL_RETURN_NOT_OK(ChargeMemory(out.batch.num_rows(),
                                     node.output_schema->num_fields(),
                                     "an anti-join result"));
    return out;
  }

  ExecOutput out;
  out.batch = RowBatch(node.output_schema);
  const size_t right_width = right_node.output_schema->num_fields();
  const bool cross = node.left_keys.empty();

  // Join output is charged in chunks *while* it grows, so a hostile
  // cross join hits its budget after the next chunk instead of after
  // materializing the full product.
  constexpr size_t kChargeChunk = 8192;
  const size_t out_width = node.output_schema->num_fields();
  size_t charged_rows = 0;
  auto charge_output = [&]() -> Status {
    const size_t n = out.batch.num_rows();
    if (n >= charged_rows + kChargeChunk) {
      GISQL_RETURN_NOT_OK(
          ChargeMemory(n - charged_rows, out_width, "a join result"));
      charged_rows = n;
    }
    return Status::OK();
  };

  size_t probe_idx = 0;
  for (const auto& lrow : left.batch.rows()) {
    const size_t lidx = probe_idx++;
    bool matched = false;
    auto try_match = [&](const Row& rrow) -> Status {
      Row combined = lrow;
      combined.insert(combined.end(), rrow.begin(), rrow.end());
      if (node.join_residual) {
        GISQL_ASSIGN_OR_RETURN(bool keep,
                               EvalPredicate(*node.join_residual, combined));
        if (!keep) return Status::OK();
      }
      matched = true;
      out.batch.Append(std::move(combined));
      return charge_output();
    };
    if (cross) {
      for (const auto& rrow : right.batch.rows()) {
        GISQL_RETURN_NOT_OK(try_match(rrow));
      }
    } else if (keys_nonnull(lrow, node.left_keys)) {
      auto it = table.find(left_hashes.empty()
                               ? HashRowKeys(lrow, node.left_keys)
                               : left_hashes[lidx]);
      if (it != table.end()) {
        for (const Row* rrow : it->second) {
          // Verify by value (hash collisions, cross-type equality).
          bool equal = true;
          for (size_t i = 0; i < node.left_keys.size(); ++i) {
            if (lrow[node.left_keys[i]].Compare(
                    (*rrow)[node.right_keys[i]]) != 0) {
              equal = false;
              break;
            }
          }
          if (equal) GISQL_RETURN_NOT_OK(try_match(*rrow));
        }
      }
    }
    if (!matched && node.join_type == JoinType::kLeft) {
      Row combined = lrow;
      for (size_t i = 0; i < right_width; ++i) {
        combined.push_back(
            Value::Null(right_node.output_schema->field(i).type));
      }
      out.batch.Append(std::move(combined));
      GISQL_RETURN_NOT_OK(charge_output());
    }
  }
  GISQL_RETURN_NOT_OK(
      ChargeMemory(out.batch.num_rows() - charged_rows, out_width,
                   "a join result"));

  const double fetch_ms = sequential
                              ? left.elapsed_ms + right.elapsed_ms
                              : std::max(left.elapsed_ms, right.elapsed_ms);
  out.elapsed_ms = fetch_ms + CpuMs(left.batch.num_rows() +
                                    right.batch.num_rows() +
                                    out.batch.num_rows());
  return out;
}

Result<ExecOutput> Executor::ApplyFilter(const PlanNode& node,
                                         ExecOutput child) {
  ExecOutput out;
  out.batch = RowBatch(node.output_schema);
  // Vectorized path: evaluate the predicate over the columnar copy
  // into a selection vector, then gather the surviving rows. The
  // vectorizable subset is total and replicates the row evaluator's
  // Kleene semantics, so the selected set is identical.
  if (ctx_.vectorized_execution && child.columnar != nullptr &&
      IsVectorizablePredicate(*node.filter, *child.columnar)) {
    GISQL_ASSIGN_OR_RETURN(
        ColumnRef pred, EvalPredicateColumnar(*node.filter, *child.columnar));
    const std::vector<uint32_t> sel =
        SelectTrue(pred.get(), child.columnar->num_rows());
    out.batch.Reserve(sel.size());
    auto& rows = child.batch.rows();
    for (uint32_t r : sel) out.batch.Append(std::move(rows[r]));
    out.elapsed_ms = child.elapsed_ms + CpuMs(child.batch.num_rows());
    return out;
  }
  for (auto& row : child.batch.rows()) {
    GISQL_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*node.filter, row));
    if (keep) out.batch.Append(std::move(row));
  }
  out.elapsed_ms = child.elapsed_ms + CpuMs(child.batch.num_rows());
  return out;
}

Result<ExecOutput> Executor::ApplyProject(const PlanNode& node,
                                          ExecOutput child) {
  ExecOutput out;
  out.batch = RowBatch(node.output_schema);
  out.batch.Reserve(child.batch.num_rows());
  for (const auto& row : child.batch.rows()) {
    Row projected;
    projected.reserve(node.projections.size());
    for (const auto& p : node.projections) {
      GISQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, row));
      projected.push_back(std::move(v));
    }
    out.batch.Append(std::move(projected));
  }
  out.elapsed_ms = child.elapsed_ms + CpuMs(child.batch.num_rows());
  GISQL_RETURN_NOT_OK(ChargeMemory(out.batch.num_rows(),
                                   node.output_schema->num_fields(),
                                   "a projected result"));
  return out;
}

Result<ExecOutput> Executor::ExecSemijoinProbe(const PlanNode& node,
                                               const std::vector<Value>& keys,
                                               double t0, uint64_t parent) {
  // Mirrors the Exec wrapper so probe-side nodes get spans and EXPLAIN
  // ANALYZE actuals too.
  auto traced = [&](auto&& body) -> Result<ExecOutput> {
    const uint64_t span = BeginNodeSpan(node, t0, parent);
    Result<ExecOutput> out = body(span != 0 ? span : parent);
    FinishNodeSpan(node, span, t0, out);
    return out;
  };
  switch (node.kind) {
    case PlanKind::kRemoteFragment:
      return traced([&](uint64_t self) -> Result<ExecOutput> {
        if (node.fragment.semijoin_column < 0 ||
            static_cast<int64_t>(keys.size()) > ctx_.semijoin_max_keys) {
          // Unmarked fragment or too many keys: ship it whole.
          FragmentPlan plain = node.fragment;
          plain.semijoin_column = -1;
          return ExecFragment(node, plain, t0, self);
        }
        FragmentPlan reduced = node.fragment;
        reduced.semijoin_values = keys;
        return ExecFragment(node, reduced, t0, self);
      });
    case PlanKind::kFilter:
      return traced([&](uint64_t self) -> Result<ExecOutput> {
        GISQL_ASSIGN_OR_RETURN(
            ExecOutput child,
            ExecSemijoinProbe(*node.children[0], keys, t0, self));
        return ApplyFilter(node, std::move(child));
      });
    case PlanKind::kProject:
      return traced([&](uint64_t self) -> Result<ExecOutput> {
        GISQL_ASSIGN_OR_RETURN(
            ExecOutput child,
            ExecSemijoinProbe(*node.children[0], keys, t0, self));
        return ApplyProject(node, std::move(child));
      });
    default:
      // No fragment to reduce below this shape; execute normally.
      return Exec(node, t0, parent);
  }
}

Result<ExecOutput> Executor::ExecAggregate(const PlanNode& node, double t0,
                                           uint64_t self) {
  GISQL_ASSIGN_OR_RETURN(ExecOutput child, Exec(*node.children[0], t0, self));
  ExecOutput result;
  result.elapsed_ms = child.elapsed_ms + CpuMs(child.batch.num_rows());
  // Vectorized path: group keys and aggregate inputs computed over
  // contiguous columns, no per-cell Value materialization.
  if (ctx_.vectorized_execution && child.columnar != nullptr &&
      CanVectorizeAggregate(node.group_by, node.aggregates,
                            *child.columnar)) {
    GISQL_ASSIGN_OR_RETURN(
        result.batch,
        HashAggregateColumnar(*child.columnar, node.group_by,
                              node.aggregates, node.output_schema));
    GISQL_RETURN_NOT_OK(ChargeMemory(result.batch.num_rows(),
                                     node.output_schema->num_fields(),
                                     "an aggregate result"));
    return result;
  }
  std::vector<const Row*> rows;
  rows.reserve(child.batch.num_rows());
  for (const auto& row : child.batch.rows()) rows.push_back(&row);
  GISQL_ASSIGN_OR_RETURN(
      RowBatch out,
      HashAggregate(rows, node.group_by, node.aggregates,
                    node.output_schema));
  result.batch = std::move(out);
  GISQL_RETURN_NOT_OK(ChargeMemory(result.batch.num_rows(),
                                   node.output_schema->num_fields(),
                                   "an aggregate result"));
  return result;
}

Result<ExecOutput> Executor::Exec(const PlanNode& node, double t0,
                                  uint64_t parent) {
  if (!ctx_.record_actuals && ctx_.trace == nullptr) {
    return ExecImpl(node, t0, parent);
  }
  const uint64_t span = BeginNodeSpan(node, t0, parent);
  Result<ExecOutput> out = ExecImpl(node, t0, span != 0 ? span : parent);
  FinishNodeSpan(node, span, t0, out);
  return out;
}

Result<ExecOutput> Executor::ExecImpl(const PlanNode& node, double t0,
                                      uint64_t self) {
  switch (node.kind) {
    case PlanKind::kValues: {
      ExecOutput out;
      out.batch = RowBatch(node.output_schema, node.values_rows);
      return out;
    }

    case PlanKind::kSourceScan:
      return Status::Internal(
          "SourceScan reached the executor; run the decomposer first");

    case PlanKind::kVirtualScan: {
      if (ctx_.system_tables == nullptr) {
        return Status::Internal("virtual scan of '", node.scan_global_name,
                                "' without a system-table provider");
      }
      GISQL_ASSIGN_OR_RETURN(
          RowBatch snap, ctx_.system_tables->Snapshot(node.scan_global_name));
      // Re-shape under the plan's (qualified) schema; rows are already
      // positionally aligned. Mediator-local: CPU cost only, no wire.
      ExecOutput out;
      out.batch = RowBatch(node.output_schema, std::move(snap.rows()));
      out.elapsed_ms = CpuMs(out.batch.num_rows());
      GISQL_RETURN_NOT_OK(ChargeMemory(out.batch.num_rows(),
                                       node.output_schema->num_fields(),
                                       "a system-table snapshot"));
      return out;
    }

    case PlanKind::kRemoteFragment:
      return ExecFragment(node, node.fragment, t0, self);

    case PlanKind::kUnionAll:
      return ExecUnionAll(node, t0, self);

    case PlanKind::kFilter: {
      GISQL_ASSIGN_OR_RETURN(ExecOutput child,
                             Exec(*node.children[0], t0, self));
      return ApplyFilter(node, std::move(child));
    }

    case PlanKind::kProject: {
      GISQL_ASSIGN_OR_RETURN(ExecOutput child,
                             Exec(*node.children[0], t0, self));
      return ApplyProject(node, std::move(child));
    }

    case PlanKind::kJoin:
      return ExecJoin(node, t0, self);

    case PlanKind::kAggregate:
      return ExecAggregate(node, t0, self);

    case PlanKind::kSort: {
      GISQL_ASSIGN_OR_RETURN(ExecOutput child,
                             Exec(*node.children[0], t0, self));
      // Sort scratch is proportional to the input it permutes.
      GISQL_RETURN_NOT_OK(ChargeMemory(child.batch.num_rows(),
                                       node.output_schema->num_fields(),
                                       "a sort buffer"));
      auto& rows = child.batch.rows();
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const Row& a, const Row& b) {
                         for (size_t i = 0; i < node.sort_columns.size();
                              ++i) {
                           const size_t c = node.sort_columns[i];
                           const int cmp = a[c].Compare(b[c]);
                           if (cmp != 0) {
                             return node.sort_ascending[i] ? cmp < 0
                                                           : cmp > 0;
                           }
                         }
                         return false;
                       });
      // Sorting costs ~n log n row touches.
      const double n = static_cast<double>(rows.size());
      child.elapsed_ms +=
          CpuMs(static_cast<size_t>(n * std::max(1.0, std::log2(n + 1))));
      child.batch = RowBatch(node.output_schema, std::move(rows));
      return child;
    }

    case PlanKind::kLimit: {
      GISQL_ASSIGN_OR_RETURN(ExecOutput child,
                             Exec(*node.children[0], t0, self));
      auto& rows = child.batch.rows();
      const int64_t begin =
          std::min<int64_t>(node.offset, static_cast<int64_t>(rows.size()));
      int64_t end = static_cast<int64_t>(rows.size());
      if (node.limit >= 0) {
        end = std::min<int64_t>(end, begin + node.limit);
      }
      std::vector<Row> sliced(rows.begin() + begin, rows.begin() + end);
      child.batch = RowBatch(node.output_schema, std::move(sliced));
      return child;
    }

    case PlanKind::kDistinct: {
      GISQL_ASSIGN_OR_RETURN(ExecOutput child,
                             Exec(*node.children[0], t0, self));
      // Buckets hold indexes into the output batch (stable under growth).
      std::unordered_map<uint64_t, std::vector<size_t>> seen;
      ExecOutput out;
      out.batch = RowBatch(node.output_schema);
      std::vector<size_t> all_cols(node.output_schema->num_fields());
      for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
      for (auto& row : child.batch.rows()) {
        const uint64_t h = HashRowKeys(row, all_cols);
        auto& bucket = seen[h];
        bool duplicate = false;
        for (size_t prev : bucket) {
          if (CompareRowKeys(row, out.batch.rows()[prev], all_cols) == 0) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        bucket.push_back(out.batch.num_rows());
        out.batch.Append(std::move(row));
      }
      out.elapsed_ms = child.elapsed_ms + CpuMs(child.batch.num_rows());
      GISQL_RETURN_NOT_OK(ChargeMemory(out.batch.num_rows(),
                                       node.output_schema->num_fields(),
                                       "a distinct result"));
      return out;
    }
  }
  return Status::Internal("unreachable plan kind in executor");
}

}  // namespace gisql
