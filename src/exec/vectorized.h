/// \file vectorized.h
/// \brief Vectorized mediator kernels over ColumnBatch: predicate
/// filtering into a selection vector, scalar expression evaluation,
/// bulk hash-key computation, and grouped aggregation over contiguous
/// arrays.
///
/// Every kernel replicates the row-at-a-time semantics of
/// expr/eval.cc, types/value.h, and exec/aggregate.cc *exactly* —
/// same NULL propagation, same cross-type comparison and hashing,
/// same division-by-zero errors — so the executor can switch per
/// operator based on what the expression supports. Vectorization
/// pays off by hoisting type dispatch out of the row loop and never
/// materializing a Value per cell.
///
/// The supported subsets are deliberately conservative:
///  - Scalars: column refs, literals, and arithmetic over them. This
///    covers partial-aggregation group keys like `sid % 16`.
///  - Predicates: comparisons / IS NULL / IN (literal list) / LIKE
///    (literal pattern) over supported scalars, combined with Kleene
///    AND/OR/NOT. Division and modulo are excluded here: the row
///    evaluator short-circuits AND/OR and so may skip a dividing
///    subexpression that a columnar evaluator would run; everything
///    in the predicate subset is total, making eager evaluation
///    indistinguishable from short-circuit.
/// Anything outside the subset falls back to the row path, keeping
/// error behavior and results bit-identical.

#pragma once

#include <cstdint>
#include <vector>

#include "expr/binder.h"
#include "expr/expr.h"
#include "types/column_batch.h"

namespace gisql {

/// \brief A column that is either borrowed from the input batch (a
/// bare column reference costs nothing) or owned by the evaluation.
struct ColumnRef {
  const ColumnBatch::Column* borrowed = nullptr;
  ColumnBatch::Column owned;
  const ColumnBatch::Column& get() const {
    return borrowed != nullptr ? *borrowed : owned;
  }
};

/// \brief True if `e` is a scalar the columnar evaluator supports:
/// kColumn / kLiteral / kArith over numeric or boolean operands.
bool IsVectorizableScalar(const Expr& e, const ColumnBatch& batch);

/// \brief True if `e` is a predicate the columnar evaluator supports
/// (see the subset note above). Total: no member can raise a runtime
/// error, so eager evaluation matches the short-circuiting row path.
bool IsVectorizablePredicate(const Expr& e, const ColumnBatch& batch);

/// \brief Evaluates a vectorizable scalar over the batch. The result
/// column's type follows the row evaluator's value types (e.g. INT64
/// arithmetic stays INT64 unless an operand or the declared type is
/// DOUBLE). Division/modulo by a non-NULL zero yields the same
/// ExecutionError the row path raises.
Result<ColumnRef> EvalScalarColumnar(const Expr& e, const ColumnBatch& batch);

/// \brief Evaluates a vectorizable predicate into a BOOL column whose
/// NULL slots are SQL UNKNOWN.
Result<ColumnRef> EvalPredicateColumnar(const Expr& e,
                                        const ColumnBatch& batch);

/// \brief Selection vector: indexes of rows where `pred` is TRUE
/// (UNKNOWN drops, per SQL WHERE).
std::vector<uint32_t> SelectTrue(const ColumnBatch::Column& pred, size_t n);

/// \brief Per-row hash of the key columns, identical to
/// HashRowKeys(row, keys) on the materialized rows.
std::vector<uint64_t> HashKeysColumnar(const ColumnBatch& batch,
                                       const std::vector<size_t>& keys);

/// \brief True if HashAggregateColumnar can run this aggregation:
/// vectorizable group keys, no DISTINCT, vectorizable arguments, and
/// numeric SUM/AVG inputs.
bool CanVectorizeAggregate(const std::vector<ExprPtr>& group_by,
                           const std::vector<BoundAggregate>& aggs,
                           const ColumnBatch& batch);

/// \brief Columnar grouped aggregation, result-identical to
/// HashAggregate over the materialized rows: same bucketing (hash +
/// verify by value), same insertion-ordered output, same empty-input
/// global row, same `limit` cap.
Result<RowBatch> HashAggregateColumnar(const ColumnBatch& batch,
                                       const std::vector<ExprPtr>& group_by,
                                       const std::vector<BoundAggregate>& aggs,
                                       SchemaPtr out_schema,
                                       int64_t limit = -1);

}  // namespace gisql
