#include "exec/hash_aggregate.h"

#include <unordered_map>

#include "common/hash.h"
#include "expr/eval.h"

namespace gisql {

Result<RowBatch> HashAggregate(const std::vector<const Row*>& rows,
                               const std::vector<ExprPtr>& group_by,
                               const std::vector<BoundAggregate>& aggs,
                               SchemaPtr out_schema, int64_t limit) {
  struct Group {
    Row keys;
    std::vector<AggregateAccumulator> accs;
  };
  // Bucketed by key hash; groups inside a bucket are verified by value
  // so hash collisions stay correct. Insertion order is preserved for
  // deterministic output.
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  std::vector<Group> groups;

  for (const Row* row : rows) {
    Row keys;
    keys.reserve(group_by.size());
    for (const auto& g : group_by) {
      GISQL_ASSIGN_OR_RETURN(Value k, EvalExpr(*g, *row));
      keys.push_back(std::move(k));
    }
    uint64_t h = 0x9e3779b9;
    for (const auto& k : keys) h = HashCombine(h, k.Hash());
    Group* group = nullptr;
    auto& bucket = buckets[h];
    for (size_t gi : bucket) {
      bool same = true;
      for (size_t i = 0; i < keys.size(); ++i) {
        if (keys[i].Compare(groups[gi].keys[i]) != 0) {
          same = false;
          break;
        }
      }
      if (same) {
        group = &groups[gi];
        break;
      }
    }
    if (group == nullptr) {
      bucket.push_back(groups.size());
      Group g;
      g.keys = std::move(keys);
      g.accs.reserve(aggs.size());
      for (const auto& a : aggs) g.accs.emplace_back(a);
      groups.push_back(std::move(g));
      group = &groups.back();
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      const auto& a = aggs[i];
      if (a.kind == AggKind::kCountStar) {
        group->accs[i].Update(Value::Int(1));
      } else {
        GISQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*a.arg, *row));
        group->accs[i].Update(v);
      }
    }
  }

  RowBatch out(std::move(out_schema));
  out.Reserve(groups.size());
  for (auto& g : groups) {
    if (limit >= 0 && static_cast<int64_t>(out.num_rows()) >= limit) break;
    Row row = std::move(g.keys);
    for (const auto& acc : g.accs) row.push_back(acc.Finalize());
    out.Append(std::move(row));
  }
  // SQL: a global aggregate over no rows still produces one row.
  if (group_by.empty() && out.num_rows() == 0 && (limit < 0 || limit > 0)) {
    Row row;
    for (const auto& a : aggs) {
      AggregateAccumulator acc(a);
      row.push_back(acc.Finalize());
    }
    out.Append(std::move(row));
  }
  return out;
}

}  // namespace gisql
