/// \file source_sequencer.h
/// \brief Per-query ordering of same-source fragment executions.
///
/// A source's buffer pool is stateful: the order in which fragments
/// touch it decides which pages hit, miss, and evict. Serial execution
/// visits fragments in plan pre-order; worker threads would race that
/// order and make the simulated page metrics depend on wall-clock
/// scheduling. The sequencer issues pre-order tickets per source at
/// plan time and makes each fragment wait for its turn, so pooled
/// execution replays the serial access sequence byte-identically.
/// Fragments bound for different sources never wait on each other.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

#include "planner/plan.h"

namespace gisql {

class SourceSequencer {
 public:
  /// \brief Issues pre-order tickets for every kRemoteFragment under
  /// `root`, keyed by the planned primary source (failover attempts
  /// keep the planned ticket). Call once per query, before execution.
  void Plan(const PlanNodePtr& root);

  /// \brief RAII holder of one fragment's turn; releases on scope exit.
  class Turn {
   public:
    Turn() = default;
    Turn(SourceSequencer* seq, const PlanNode* node)
        : seq_(seq), node_(node) {}
    Turn(Turn&& o) noexcept : seq_(o.seq_), node_(o.node_) {
      o.seq_ = nullptr;
      o.node_ = nullptr;
    }
    Turn(const Turn&) = delete;
    Turn& operator=(const Turn&) = delete;
    Turn& operator=(Turn&&) = delete;
    ~Turn();

   private:
    SourceSequencer* seq_ = nullptr;
    const PlanNode* node_ = nullptr;
  };

  /// \brief Blocks until every earlier ticket of `node`'s source is
  /// released or skipped. Returns an inactive (no-op) turn when the
  /// node has no ticket (sequencing off / unplanned fragment) or its
  /// turn is already held (re-entrant fragment execution).
  Turn Acquire(const PlanNode* node);

  /// \brief Marks every not-yet-executed fragment under `root` as
  /// skipped, unblocking later same-source tickets. Used on error
  /// paths that abandon a subtree before executing it.
  void SkipSubtree(const PlanNodePtr& root);

 private:
  struct Ticket {
    std::string source;
    size_t seq = 0;
  };
  struct Lane {
    size_t next = 0;              ///< lowest unreleased ticket
    std::set<size_t> early_done;  ///< released/skipped tickets > next
  };

  void Release(const PlanNode* node);
  /// Advances `lane.next` past `seq` and any early-done successors.
  /// Caller holds mu_.
  void AdvanceLane(Lane* lane, size_t seq);

  std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<const PlanNode*, Ticket> tickets_;
  std::map<std::string, Lane> lanes_;
  std::set<const PlanNode*> held_;
  std::set<const PlanNode*> finished_;
};

}  // namespace gisql
