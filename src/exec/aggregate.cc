#include "exec/aggregate.h"

namespace gisql {

AggregateAccumulator::AggregateAccumulator(const BoundAggregate& spec)
    : kind_(spec.kind),
      distinct_(spec.distinct),
      result_type_(spec.result_type) {
  sum_is_double_ = spec.result_type == TypeId::kDouble ||
                   (spec.arg && spec.arg->type == TypeId::kDouble);
}

void AggregateAccumulator::Update(const Value& v) {
  if (kind_ == AggKind::kCountStar) {
    ++count_;
    return;
  }
  if (v.is_null()) return;  // aggregates ignore NULL inputs
  if (distinct_) {
    if (!seen_.insert(v).second) return;  // duplicate under DISTINCT
  }
  switch (kind_) {
    case AggKind::kCountStar:
      break;  // handled above
    case AggKind::kCount:
      ++count_;
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
      ++count_;
      if (sum_is_double_ || v.type() == TypeId::kDouble) {
        sum_is_double_ = true;
        sum_d_ += v.NumericValue();
      } else {
        sum_i_ += v.AsInt();
      }
      break;
    case AggKind::kMin:
      if (min_.is_null() || v.Compare(min_) < 0) min_ = v;
      break;
    case AggKind::kMax:
      if (max_.is_null() || v.Compare(max_) > 0) max_ = v;
      break;
  }
}

Value AggregateAccumulator::Finalize() const {
  switch (kind_) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return Value::Int(count_);
    case AggKind::kSum:
      if (count_ == 0) return Value::Null(result_type_);
      if (sum_is_double_) {
        return Value::Double(sum_d_ + static_cast<double>(sum_i_));
      }
      return Value::Int(sum_i_);
    case AggKind::kAvg: {
      if (count_ == 0) return Value::Null(TypeId::kDouble);
      const double total = sum_d_ + static_cast<double>(sum_i_);
      return Value::Double(total / static_cast<double>(count_));
    }
    case AggKind::kMin:
      return min_.is_null() ? Value::Null(result_type_) : min_;
    case AggKind::kMax:
      return max_.is_null() ? Value::Null(result_type_) : max_;
  }
  return Value::Null();
}

}  // namespace gisql
