/// \file system_tables.h
/// \brief The `gis.*` virtual system tables: names, schemas, and the
/// provider interface the planner and executor consume.
///
/// The mediator's own state — source health, metrics, histograms, the
/// query log — is exposed through the global schema itself, as virtual
/// tables under the reserved `gis.` prefix:
///
///   gis.sources     one row per registered component source, with its
///                   health counters, derived state, and circuit-
///                   breaker view;
///   gis.metrics     every *counter* of the mediator and network
///                   registries (monotone, schedule-independent);
///   gis.gauges      the point-in-time gauges, quarantined here so
///                   gis.metrics snapshots stay deterministic under
///                   pooled execution;
///   gis.histograms  digests (count/sum/min/max/p50/p95/p99) of every
///                   registry histogram;
///   gis.queries     the bounded ring of recently executed queries,
///                   with admission wait and shed reason;
///   gis.admission   one row: the resource governor's limits and
///                   admit/shed/budget/breaker counters;
///   gis.tenants     per-tenant attribution rows whose column sums
///                   provably equal the global counters;
///   gis.slo         one row per service-level objective: rolling
///                   attainment and error-budget burn rates;
///   gis.incidents   flight-recorder captures — one JSON snapshot per
///                   deterministic trigger firing.
///
/// A query over them runs through the ordinary parse → bind → plan →
/// optimize → execute pipeline: the logical planner resolves a `gis.`
/// name against the provider registered in the Catalog and emits a
/// VirtualTableScan leaf; the executor materializes it by snapshotting
/// live state at the mediator — zero network cost, so observing the
/// system never perturbs the experiment being observed.
///
/// This header lives in catalog/ and depends only on types/; the
/// concrete provider wiring mediator internals together is
/// core/system_catalog.h.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "types/row.h"
#include "types/schema.h"

namespace gisql {

/// \brief Reserved name prefix of the virtual system tables.
inline constexpr const char* kSystemTablePrefix = "gis.";

/// \brief True when `name` (any case) starts with the `gis.` prefix.
bool IsSystemTableName(const std::string& name);

/// \brief Canonical (lower-case) names of the built-in system tables.
std::vector<std::string> SystemTableNames();

/// \brief Schema of one built-in system table; NotFound for names
/// outside SystemTableNames(). Fields carry no qualifier — the planner
/// qualifies them with the query's alias (or the table name).
Result<SchemaPtr> SystemTableSchema(const std::string& name);

/// \brief Source of virtual-table snapshots, registered in the Catalog
/// and handed to the executor through ExecContext.
///
/// Implementations snapshot live state at call time; two scans of the
/// same table may legitimately differ (which is why query plans
/// containing a virtual scan bypass the result cache). Snapshot rows
/// must match TableSchema positionally and be deterministically
/// ordered.
class SystemTableProvider {
 public:
  virtual ~SystemTableProvider() = default;

  /// \brief True when `name` (canonical lower-case) is served here.
  virtual bool HasTable(const std::string& name) const = 0;

  /// \brief Schema for `name`; NotFound when absent.
  virtual Result<SchemaPtr> TableSchema(const std::string& name) const = 0;

  /// \brief Materializes the current state of `name`.
  virtual Result<RowBatch> Snapshot(const std::string& name) const = 0;

  /// \brief All served table names (canonical lower-case, sorted).
  virtual std::vector<std::string> TableNames() const = 0;
};

}  // namespace gisql
