/// \file catalog.h
/// \brief The mediator's global catalog: registered component sources,
/// imported export schemas, statistics, and integrated global views.
///
/// Schema integration in gisql takes two forms:
///  1. *Import mapping* — each exported table of a component source gets
///     a unique global name ("src1.orders" or a chosen alias) and its
///     schema/statistics are cached here.
///  2. *Union views* — a union-compatible global view presents one
///     logical entity partitioned (or replicated) across sources as a
///     single table, the heart of the global-schema idea.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "source/capabilities.h"
#include "storage/statistics.h"
#include "types/schema.h"

namespace gisql {

class SystemTableProvider;

/// \brief One registered component information system.
struct SourceInfo {
  std::string name;  ///< network host name
  SourceDialect dialect = SourceDialect::kRelational;
  SourceCapabilities capabilities;
  double latency_hint_ms = 0.0;  ///< optional planner hint
};

/// \brief Mapping of a global table name onto a source's exported table.
struct TableMapping {
  std::string global_name;    ///< unique name in the global schema
  std::string source_name;    ///< owning source (network host)
  std::string exported_name;  ///< table name at the source
  SchemaPtr schema;           ///< source schema, re-qualified globally
  TableStats stats;           ///< last imported statistics
};

/// \brief A union-compatible global view over member tables.
///
/// Two flavours:
///  - partitioned (`replicated == false`): the view's rows are the
///    concatenation of all members (horizontal sharding);
///  - replicated (`replicated == true`): every member holds a full copy
///    and the planner reads exactly one, preferring the cheapest and
///    failing over to the others when a source is unreachable.
struct GlobalView {
  std::string name;
  std::vector<std::string> members;  ///< global table names
  SchemaPtr schema;                  ///< the first member's shape, renamed
  bool replicated = false;
};

/// \brief The global catalog held by the mediator.
class Catalog {
 public:
  /// \name Sources
  /// @{
  Status RegisterSource(SourceInfo info);
  Result<const SourceInfo*> GetSource(const std::string& name) const;

  /// \brief Updates a source's planner latency hint (used to pick
  /// replicas of replicated views).
  Status SetLatencyHint(const std::string& name, double latency_ms);
  std::vector<std::string> SourceNames() const;
  /// @}

  /// \name Tables
  /// @{
  Status RegisterTable(TableMapping mapping);
  Result<const TableMapping*> GetTable(const std::string& global_name) const;
  bool HasTable(const std::string& global_name) const;
  Status UpdateStats(const std::string& global_name, TableStats stats);
  std::vector<std::string> TableNames() const;

  /// \brief Re-keys a table under a new global name, re-qualifying its
  /// schema. Fails if the table is a member of any view (the view's
  /// member list would dangle) or the new name is taken. Used by the
  /// advisor to alias a base table away before promoting its global
  /// name to a replicated view.
  Status RenameTable(const std::string& global_name,
                     const std::string& new_global_name);

  /// \brief Removes a table mapping. Fails while any view references
  /// it. The source-side table is not touched — that is the owner's
  /// admin-channel problem.
  Status DropTable(const std::string& global_name);
  /// @}

  /// \name Union views
  /// @{

  /// \brief Creates a global view over `members` (each a registered
  /// global table). All members must be union-compatible with the
  /// first; the view schema takes the first member's column names and
  /// types, qualified by the view name.
  Status CreateUnionView(const std::string& name,
                         const std::vector<std::string>& members);

  /// \brief Creates a replicated view: each member is a full copy of
  /// the same logical table on a different source. Same compatibility
  /// rules as union views.
  Status CreateReplicatedView(const std::string& name,
                              const std::vector<std::string>& members);
  Result<const GlobalView*> GetView(const std::string& name) const;
  bool HasView(const std::string& name) const;
  std::vector<std::string> ViewNames() const;

  /// \brief Removes a view definition (member tables stay registered).
  /// The advisor's demote path drops its replicated view with this
  /// before renaming the base table back.
  Status DropView(const std::string& name);

  /// \brief True when `global_name` appears in any view's member list.
  bool TableInAnyView(const std::string& global_name) const;
  /// @}

  /// \name System tables
  ///
  /// The `gis.*` virtual tables (catalog/system_tables.h) resolve
  /// through a provider installed here; the planner consults it for
  /// names under the reserved `gis.` prefix before ordinary tables and
  /// views. Not owned; the installer (GlobalSystem) guarantees the
  /// provider outlives the catalog.
  /// @{
  void RegisterSystemTableProvider(const SystemTableProvider* provider) {
    system_tables_ = provider;
  }
  const SystemTableProvider* system_tables() const { return system_tables_; }
  /// @}

  /// \brief Renders the whole global schema (EXPLAIN CATALOG style).
  std::string ToString() const;

 private:
  Status CreateViewInternal(const std::string& name,
                            const std::vector<std::string>& members,
                            bool replicated);

  std::map<std::string, SourceInfo> sources_;
  std::map<std::string, TableMapping> tables_;
  std::map<std::string, GlobalView> views_;
  const SystemTableProvider* system_tables_ = nullptr;
};

}  // namespace gisql
