#include "catalog/system_tables.h"

#include "common/string_util.h"

namespace gisql {

bool IsSystemTableName(const std::string& name) {
  const std::string lower = ToLower(name);
  const std::string prefix = kSystemTablePrefix;
  return lower.size() > prefix.size() &&
         lower.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string> SystemTableNames() {
  return {"gis.admission",    "gis.advisor",      "gis.cursors",
          "gis.gauges",       "gis.histograms",   "gis.incidents",
          "gis.metrics",      "gis.queries",      "gis.slo",
          "gis.sources",      "gis.storage",      "gis.tenants",
          "gis.transactions"};
}

Result<SchemaPtr> SystemTableSchema(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "gis.sources") {
    return std::make_shared<Schema>(std::vector<Field>{
        {"source", TypeId::kString, false},
        {"state", TypeId::kString, false},
        {"requests", TypeId::kInt64, false},
        {"errors", TypeId::kInt64, false},
        {"retries", TypeId::kInt64, false},
        {"consecutive_failures", TypeId::kInt64, false},
        {"bytes_sent", TypeId::kInt64, false},
        {"bytes_received", TypeId::kInt64, false},
        {"ewma_ms", TypeId::kDouble, false},
        {"p95_ms", TypeId::kDouble, false},
        {"last_error", TypeId::kString, false},
        {"breaker", TypeId::kString, false},
        {"breaker_skips", TypeId::kInt64, false},
        {"breaker_probes", TypeId::kInt64, false},
        {"breaker_transitions", TypeId::kInt64, false},
    });
  }
  if (lower == "gis.metrics") {
    // Counters only: monotone values identical under any worker
    // interleaving. Point-in-time gauges live in gis.gauges.
    return std::make_shared<Schema>(std::vector<Field>{
        {"registry", TypeId::kString, false},
        {"name", TypeId::kString, false},
        {"kind", TypeId::kString, false},
        {"value", TypeId::kDouble, false},
    });
  }
  if (lower == "gis.gauges") {
    // Instantaneous gauges (e.g. net.last_elapsed_ms): meaningful to a
    // human, but *which* instant they captured can depend on worker
    // scheduling, so they are quarantined away from the deterministic
    // gis.metrics snapshot.
    return std::make_shared<Schema>(std::vector<Field>{
        {"registry", TypeId::kString, false},
        {"name", TypeId::kString, false},
        {"value", TypeId::kDouble, false},
    });
  }
  if (lower == "gis.admission") {
    return std::make_shared<Schema>(std::vector<Field>{
        {"max_concurrent", TypeId::kInt64, false},
        {"queue_limit", TypeId::kInt64, false},
        {"max_wait_ms", TypeId::kDouble, false},
        {"in_flight", TypeId::kInt64, false},
        {"admitted", TypeId::kInt64, false},
        {"queued", TypeId::kInt64, false},
        {"shed_queue_full", TypeId::kInt64, false},
        {"shed_deadline", TypeId::kInt64, false},
        {"shed_memory_budget", TypeId::kInt64, false},
        {"total_wait_ms", TypeId::kDouble, false},
        {"mem_query_cap", TypeId::kInt64, false},
        {"mem_global_cap", TypeId::kInt64, false},
        {"mem_peak_bytes", TypeId::kInt64, false},
        {"breaker_enabled", TypeId::kBool, false},
        {"breakers_open", TypeId::kInt64, false},
        {"breaker_transitions", TypeId::kInt64, false},
        {"breaker_skips", TypeId::kInt64, false},
        {"breaker_probes", TypeId::kInt64, false},
    });
  }
  if (lower == "gis.cursors") {
    // One row per mediator cursor (open, plus a bounded tail of
    // finished ones): its lifecycle state, delivery mode, progress,
    // lease deadline, and currently charged memory.
    return std::make_shared<Schema>(std::vector<Field>{
        {"id", TypeId::kInt64, false},
        {"sql", TypeId::kString, false},
        {"state", TypeId::kString, false},
        {"streaming", TypeId::kBool, false},
        {"chunk_rows", TypeId::kInt64, false},
        {"chunks", TypeId::kInt64, false},
        {"rows", TypeId::kInt64, false},
        {"opened_ms", TypeId::kDouble, false},
        {"lease_deadline_ms", TypeId::kDouble, false},
        {"elapsed_ms", TypeId::kDouble, false},
        {"mem_bytes", TypeId::kInt64, false},
    });
  }
  if (lower == "gis.storage") {
    // One row per component source's buffer pool: geometry, residency,
    // and cumulative page/disk counters on the simulated clock.
    return std::make_shared<Schema>(std::vector<Field>{
        {"source", TypeId::kString, false},
        {"page_size", TypeId::kInt64, false},
        {"pool_frames", TypeId::kInt64, false},
        {"frames_used", TypeId::kInt64, false},
        {"pages", TypeId::kInt64, false},
        {"hits", TypeId::kInt64, false},
        {"misses", TypeId::kInt64, false},
        {"evictions", TypeId::kInt64, false},
        {"disk_reads", TypeId::kInt64, false},
        {"disk_writes", TypeId::kInt64, false},
        {"disk_ms", TypeId::kDouble, false},
        {"hit_ratio", TypeId::kDouble, false},
    });
  }
  if (lower == "gis.transactions") {
    // One row per global transaction (active, plus a bounded ring of
    // finished ones): snapshot/commit timestamps, participant sources,
    // and lock-wait / abort history on the simulated clock.
    return std::make_shared<Schema>(std::vector<Field>{
        {"id", TypeId::kInt64, false},
        {"state", TypeId::kString, false},
        {"snapshot_ts", TypeId::kInt64, false},
        {"commit_ts", TypeId::kInt64, false},
        {"statements", TypeId::kInt64, false},
        {"participants", TypeId::kString, false},
        {"lock_waits", TypeId::kInt64, false},
        {"abort_reason", TypeId::kString, false},
        {"begin_ms", TypeId::kDouble, false},
        {"end_ms", TypeId::kDouble, false},
    });
  }
  if (lower == "gis.histograms") {
    return std::make_shared<Schema>(std::vector<Field>{
        {"registry", TypeId::kString, false},
        {"name", TypeId::kString, false},
        {"count", TypeId::kInt64, false},
        {"sum", TypeId::kDouble, false},
        {"min", TypeId::kDouble, false},
        {"max", TypeId::kDouble, false},
        {"p50", TypeId::kDouble, false},
        {"p95", TypeId::kDouble, false},
        {"p99", TypeId::kDouble, false},
        {"p999", TypeId::kDouble, false},
    });
  }
  if (lower == "gis.tenants") {
    // One row per tracked tenant (sorted by name; "~other" absorbs
    // tenants past the tracking bound). Column sums over this table
    // equal the accountant's grand totals exactly.
    return std::make_shared<Schema>(std::vector<Field>{
        {"tenant", TypeId::kString, false},
        {"queries", TypeId::kInt64, false},
        {"sheds", TypeId::kInt64, false},
        {"cache_hits", TypeId::kInt64, false},
        {"rows", TypeId::kInt64, false},
        {"elapsed_ms", TypeId::kDouble, false},
        {"admission_wait_ms", TypeId::kDouble, false},
        {"bytes_sent", TypeId::kInt64, false},
        {"bytes_received", TypeId::kInt64, false},
        {"messages", TypeId::kInt64, false},
        {"retries", TypeId::kInt64, false},
        {"mem_peak_bytes", TypeId::kInt64, false},
        {"page_hits", TypeId::kInt64, false},
        {"page_misses", TypeId::kInt64, false},
        {"disk_ms", TypeId::kDouble, false},
    });
  }
  if (lower == "gis.slo") {
    // One row per declared objective: rolling-window attainment over
    // the fast and slow windows, error-budget burn rates, and the
    // alert latch (all on the simulated clock).
    return std::make_shared<Schema>(std::vector<Field>{
        {"objective", TypeId::kString, false},
        {"priority", TypeId::kInt64, false},
        {"target_ms", TypeId::kDouble, false},
        {"goal", TypeId::kDouble, false},
        {"fast_total", TypeId::kInt64, false},
        {"fast_good", TypeId::kInt64, false},
        {"slow_total", TypeId::kInt64, false},
        {"slow_good", TypeId::kInt64, false},
        {"fast_attainment", TypeId::kDouble, false},
        {"slow_attainment", TypeId::kDouble, false},
        {"fast_burn", TypeId::kDouble, false},
        {"slow_burn", TypeId::kDouble, false},
        {"alerting", TypeId::kBool, false},
        {"alerts", TypeId::kInt64, false},
        {"last_alert_ms", TypeId::kDouble, false},
    });
  }
  if (lower == "gis.incidents") {
    // One row per captured incident: the deterministic trigger, when
    // it fired on the simulated clock, and the full JSON snapshot.
    return std::make_shared<Schema>(std::vector<Field>{
        {"id", TypeId::kInt64, false},
        {"at_ms", TypeId::kDouble, false},
        {"trigger", TypeId::kString, false},
        {"detail", TypeId::kString, false},
        {"snapshot", TypeId::kString, false},
    });
  }
  if (lower == "gis.queries") {
    return std::make_shared<Schema>(std::vector<Field>{
        {"id", TypeId::kInt64, false},
        {"sql", TypeId::kString, false},
        {"elapsed_ms", TypeId::kDouble, false},
        {"bytes_sent", TypeId::kInt64, false},
        {"bytes_received", TypeId::kInt64, false},
        {"messages", TypeId::kInt64, false},
        {"retries", TypeId::kInt64, false},
        {"cache_hit", TypeId::kBool, false},
        {"rows", TypeId::kInt64, false},
        {"trace_root", TypeId::kInt64, false},
        {"admission_wait_ms", TypeId::kDouble, false},
        {"shed_reason", TypeId::kString, false},
        {"tenant", TypeId::kString, false},
        {"priority", TypeId::kInt64, false},
        {"finish_ms", TypeId::kDouble, false},
        {"fingerprint", TypeId::kString, false},
    });
  }
  if (lower == "gis.advisor") {
    // One row per *enacted* advisor decision (plus failures), in
    // decision order: what policy fired, the evidence it read, the
    // action it took, and how the action ended. The rendering is
    // byte-identical across serial/pooled runs of the same seed.
    return std::make_shared<Schema>(std::vector<Field>{
        {"id", TypeId::kInt64, false},
        {"at_ms", TypeId::kDouble, false},
        {"kind", TypeId::kString, false},
        {"target", TypeId::kString, false},
        {"evidence", TypeId::kString, false},
        {"action", TypeId::kString, false},
        {"outcome", TypeId::kString, false},
    });
  }
  return Status::NotFound("'", name, "' is not a system table (known: ",
                          "gis.sources, gis.metrics, gis.gauges, "
                          "gis.histograms, gis.queries, gis.admission, "
                          "gis.advisor, gis.cursors, gis.storage, "
                          "gis.transactions, gis.tenants, gis.slo, "
                          "gis.incidents)");
}

}  // namespace gisql
