#include "catalog/catalog.h"

#include <sstream>

#include "common/string_util.h"

namespace gisql {

Status Catalog::RegisterSource(SourceInfo info) {
  const std::string key = ToLower(info.name);
  if (sources_.count(key)) {
    return Status::AlreadyExists("source '", info.name,
                                 "' already registered");
  }
  sources_.emplace(key, std::move(info));
  return Status::OK();
}

Result<const SourceInfo*> Catalog::GetSource(const std::string& name) const {
  auto it = sources_.find(ToLower(name));
  if (it == sources_.end()) {
    return Status::NotFound("source '", name, "' is not registered");
  }
  return &it->second;
}

Status Catalog::SetLatencyHint(const std::string& name,
                               double latency_ms) {
  auto it = sources_.find(ToLower(name));
  if (it == sources_.end()) {
    return Status::NotFound("source '", name, "' is not registered");
  }
  it->second.latency_hint_ms = latency_ms;
  return Status::OK();
}

std::vector<std::string> Catalog::SourceNames() const {
  std::vector<std::string> names;
  for (const auto& [key, info] : sources_) names.push_back(info.name);
  return names;
}

Status Catalog::RegisterTable(TableMapping mapping) {
  const std::string key = ToLower(mapping.global_name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::AlreadyExists("global name '", mapping.global_name,
                                 "' is already in use");
  }
  if (!sources_.count(ToLower(mapping.source_name))) {
    return Status::NotFound("source '", mapping.source_name,
                            "' is not registered");
  }
  if (mapping.schema == nullptr) {
    return Status::InvalidArgument("table mapping requires a schema");
  }
  tables_.emplace(key, std::move(mapping));
  return Status::OK();
}

Result<const TableMapping*> Catalog::GetTable(
    const std::string& global_name) const {
  auto it = tables_.find(ToLower(global_name));
  if (it == tables_.end()) {
    return Status::NotFound("global table '", global_name,
                            "' is not in the catalog");
  }
  return &it->second;
}

bool Catalog::HasTable(const std::string& global_name) const {
  return tables_.count(ToLower(global_name)) > 0;
}

Status Catalog::UpdateStats(const std::string& global_name,
                            TableStats stats) {
  auto it = tables_.find(ToLower(global_name));
  if (it == tables_.end()) {
    return Status::NotFound("global table '", global_name,
                            "' is not in the catalog");
  }
  it->second.stats = std::move(stats);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [key, t] : tables_) names.push_back(t.global_name);
  return names;
}

Status Catalog::RenameTable(const std::string& global_name,
                            const std::string& new_global_name) {
  const std::string key = ToLower(global_name);
  const std::string new_key = ToLower(new_global_name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("global table '", global_name,
                            "' is not in the catalog");
  }
  if (new_key == key) return Status::OK();
  if (tables_.count(new_key) || views_.count(new_key)) {
    return Status::AlreadyExists("global name '", new_global_name,
                                 "' is already in use");
  }
  if (TableInAnyView(global_name)) {
    return Status::InvalidArgument("global table '", global_name,
                                   "' is a member of a view; rename would "
                                   "dangle the member list");
  }
  TableMapping mapping = std::move(it->second);
  tables_.erase(it);
  mapping.global_name = new_global_name;
  mapping.schema =
      std::make_shared<Schema>(mapping.schema->WithQualifier(new_global_name));
  tables_.emplace(new_key, std::move(mapping));
  return Status::OK();
}

Status Catalog::DropTable(const std::string& global_name) {
  auto it = tables_.find(ToLower(global_name));
  if (it == tables_.end()) {
    return Status::NotFound("global table '", global_name,
                            "' is not in the catalog");
  }
  if (TableInAnyView(global_name)) {
    return Status::InvalidArgument("global table '", global_name,
                                   "' is a member of a view; drop the view "
                                   "first");
  }
  tables_.erase(it);
  return Status::OK();
}

Status Catalog::CreateUnionView(const std::string& name,
                                const std::vector<std::string>& members) {
  return CreateViewInternal(name, members, /*replicated=*/false);
}

Status Catalog::CreateReplicatedView(const std::string& name,
                                     const std::vector<std::string>& members) {
  return CreateViewInternal(name, members, /*replicated=*/true);
}

Status Catalog::CreateViewInternal(const std::string& name,
                                   const std::vector<std::string>& members,
                                   bool replicated) {
  const std::string key = ToLower(name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::AlreadyExists("global name '", name,
                                 "' is already in use");
  }
  if (members.empty()) {
    return Status::InvalidArgument("union view requires at least one member");
  }
  const TableMapping* first = nullptr;
  for (const auto& member : members) {
    GISQL_ASSIGN_OR_RETURN(const TableMapping* t, GetTable(member));
    if (first == nullptr) {
      first = t;
    } else if (!first->schema->UnionCompatible(*t->schema)) {
      return Status::InvalidArgument(
          "member '", member, "' ", t->schema->ToString(),
          " is not union-compatible with '", members[0], "' ",
          first->schema->ToString());
    }
  }
  GlobalView view;
  view.name = name;
  view.members = members;
  view.replicated = replicated;
  view.schema =
      std::make_shared<Schema>(first->schema->WithQualifier(name));
  views_.emplace(key, std::move(view));
  return Status::OK();
}

Result<const GlobalView*> Catalog::GetView(const std::string& name) const {
  auto it = views_.find(ToLower(name));
  if (it == views_.end()) {
    return Status::NotFound("global view '", name, "' is not in the catalog");
  }
  return &it->second;
}

bool Catalog::HasView(const std::string& name) const {
  return views_.count(ToLower(name)) > 0;
}

std::vector<std::string> Catalog::ViewNames() const {
  std::vector<std::string> names;
  for (const auto& [key, v] : views_) names.push_back(v.name);
  return names;
}

Status Catalog::DropView(const std::string& name) {
  auto it = views_.find(ToLower(name));
  if (it == views_.end()) {
    return Status::NotFound("global view '", name, "' is not in the catalog");
  }
  views_.erase(it);
  return Status::OK();
}

bool Catalog::TableInAnyView(const std::string& global_name) const {
  const std::string key = ToLower(global_name);
  for (const auto& [vkey, v] : views_) {
    for (const auto& member : v.members) {
      if (ToLower(member) == key) return true;
    }
  }
  return false;
}

std::string Catalog::ToString() const {
  std::ostringstream oss;
  oss << "Catalog:\n";
  for (const auto& [key, s] : sources_) {
    oss << "  source " << s.name << " [" << SourceDialectName(s.dialect)
        << " " << s.capabilities.ToString() << "]\n";
  }
  for (const auto& [key, t] : tables_) {
    oss << "  table " << t.global_name << " -> " << t.source_name << "."
        << t.exported_name << " " << t.schema->ToString() << " rows="
        << t.stats.row_count << "\n";
  }
  for (const auto& [key, v] : views_) {
    oss << "  view " << v.name << " = " << (v.replicated ? "REPLICA" : "UNION")
        << "(" << Join(v.members, ", ")
        << ")\n";
  }
  return oss.str();
}

}  // namespace gisql
