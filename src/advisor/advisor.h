/// \file advisor.h
/// \brief The self-driving mediator: a deterministic background advisor
/// that closes the observe→act loop.
///
/// Every prior layer of gisql *observes* — health EWMAs, breaker state,
/// SLO burn rates, per-tenant charges, the query log — but acting on
/// those signals was left to the operator. The advisor is the missing
/// half: it runs on the simulated clock (ticked from the query path, no
/// background thread), reads only simulation-deterministic signals, and
/// enacts three guard-railed policies:
///
///  * **auto-materialization** — fingerprint the recent query log,
///    detect hot statement templates, and replicate their base table
///    onto a cheap healthy source, promoting the global name to a
///    replicated view (bounded by a view budget; cold views are
///    evicted and the base table restored);
///  * **replica placement** — steer replicated-view routing toward the
///    cheapest *healthy* sites by maintaining catalog latency hints
///    from observed per-source EWMAs, deprioritizing breaker-open or
///    unhealthy sources (the advisor never places work onto a source
///    whose breaker is open);
///  * **auto-tuning** — tighten admission queue watermarks while an
///    interactive SLO is burning its error budget, relax them back
///    once it recovers, and grow the per-query memory cap after
///    memory-budget sheds — always through the governor's bounded
///    setters, which own the guard rails.
///
/// Every enacted action (and every failed attempt) is one
/// AdvisorDecision in a bounded log: the trigger evidence, the action,
/// and the outcome. The log renders canonically via LogText() and is
/// queryable as `gis.advisor`; because every input is deterministic on
/// the simulated clock, the same seed replays a byte-identical decision
/// log, serial or pooled.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "core/query_log.h"
#include "core/source_health.h"
#include "obs/slo.h"
#include "planner/options.h"
#include "sched/governor.h"

namespace gisql {

/// \brief Advisor knobs (mirrored from the GISQL_ADVISOR_* block of
/// PlannerOptions).
struct AdvisorConfig {
  bool enabled = false;
  double interval_ms = 500.0;  ///< simulated ms between ticks
  double window_ms = 2000.0;   ///< observation window over gis.queries
  int hot_threshold = 8;       ///< window executions that make a template hot
  int max_views = 2;           ///< replicated views the advisor may own
  double min_gain_ms = 1.0;    ///< minimum modeled per-query gain to act
  int cold_ticks = 8;          ///< unused ticks before a view is evicted
  int log_capacity = 256;      ///< bounded decision-log entries
  bool materialize = true;     ///< auto-materialization sub-policy
  bool placement = true;       ///< replica-placement sub-policy
  bool tune = true;            ///< admission/memory auto-tuning sub-policy

  static AdvisorConfig FromOptions(const PlannerOptions& options) {
    AdvisorConfig c;
    c.enabled = options.advisor_enabled;
    c.interval_ms = options.advisor_interval_ms;
    c.window_ms = options.advisor_window_ms;
    c.hot_threshold = options.advisor_hot_threshold;
    c.max_views = options.advisor_max_views;
    c.min_gain_ms = options.advisor_min_gain_ms;
    c.cold_ticks = options.advisor_cold_ticks;
    c.log_capacity = options.advisor_log_capacity;
    c.materialize = options.advisor_materialize;
    c.placement = options.advisor_placement;
    c.tune = options.advisor_tune;
    return c;
  }
};

/// \brief One advisor decision: trigger evidence → action → outcome.
/// Rows of `gis.advisor`.
struct AdvisorDecision {
  int64_t id = 0;        ///< 1-based, monotone across the advisor's life
  double at_ms = 0.0;    ///< simulated tick time the decision fired
  std::string kind;      ///< materialize|evict|placement|tune-admission|tune-memory
  std::string target;    ///< table/source/subsystem acted on
  std::string evidence;  ///< the observed trigger, canonically rendered
  std::string action;    ///< what was done
  std::string outcome;   ///< "ok" or "error: <status>"
};

/// \brief Cumulative advisor counters (gisql_advisor_* Prometheus
/// series).
struct AdvisorCounters {
  int64_t ticks = 0;             ///< ticks that actually ran policies
  int64_t decisions = 0;         ///< decisions logged (failures included)
  int64_t materializations = 0;
  int64_t evictions = 0;
  int64_t placements = 0;
  int64_t tunings = 0;
  int64_t failures = 0;          ///< decisions whose action errored
};

/// \brief The mutation surface the advisor acts through, implemented by
/// GlobalSystem. Keeping actions behind this interface means the
/// advisor itself never touches the network or the planner — it only
/// decides.
class AdvisorHost {
 public:
  virtual ~AdvisorHost() = default;

  /// \brief Copies `global_table` onto `target_source` (one bulk
  /// transfer on the simulated WAN) and promotes the global name to a
  /// replicated view over {base, replica}. Returns the replica's
  /// global name.
  virtual Result<std::string> MaterializeReplica(
      const std::string& global_table, const std::string& target_source) = 0;

  /// \brief Reverses MaterializeReplica: drops the view, the replica
  /// table (catalog + best-effort source-side DROP TABLE), and restores
  /// the base table under its original global name.
  virtual Status DemoteReplicatedView(const std::string& view_name) = 0;
};

/// \brief Deterministic policy engine on the simulated clock.
///
/// Thread-safe, but decisions depend only on the tick-time sequence:
/// GlobalSystem ticks it at the end of each submitted statement, whose
/// simulated completion times replay exactly.
class Advisor {
 public:
  Advisor(const AdvisorConfig& config, AdvisorHost* host,
          const QueryLog* query_log, const SourceHealthTracker* health,
          const SloEngine* slo, ResourceGovernor* governor, Catalog* catalog)
      : config_(config),
        host_(host),
        query_log_(query_log),
        health_(health),
        slo_(slo),
        governor_(governor),
        catalog_(catalog) {}

  /// \brief Runs the policies once `interval_ms` has elapsed since the
  /// last tick (cheap no-op otherwise, and always a no-op when
  /// disabled).
  void Tick(double now_ms);

  /// \brief Swaps the config in place; decision log, owned views, and
  /// counters are kept (the system catalog holds a pointer to this
  /// object, so reconfiguration must not re-create it).
  void Configure(const AdvisorConfig& config);

  bool enabled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return config_.enabled;
  }
  AdvisorConfig config() const {
    std::lock_guard<std::mutex> lock(mu_);
    return config_;
  }

  /// \brief Retained decisions, oldest first (ids ascend).
  std::vector<AdvisorDecision> Decisions() const;

  /// \brief Canonical one-line-per-decision rendering; byte-identical
  /// across serial/pooled/replayed runs of the same seed.
  std::string LogText() const;

  AdvisorCounters counters() const;

 private:
  struct OwnedView {
    int cold = 0;  ///< consecutive ticks without a window hit
  };

  void RunMaterialize(double now_ms,
                      const std::vector<QueryLogEntry>& window);
  void RunPlacement(double now_ms);
  void RunTune(double now_ms);
  void Record(double now_ms, const std::string& kind,
              const std::string& target, const std::string& evidence,
              const std::string& action, const Status& outcome);

  /// \brief Resolves a fingerprint to the single named FROM table of a
  /// representative statement ("" when the shape is not a plain
  /// single-table SELECT). Memoized — fingerprints are stable.
  const std::string& TableForFingerprint(const std::string& fingerprint,
                                         const std::string& sql);

  AdvisorConfig config_;
  AdvisorHost* host_;
  const QueryLog* query_log_;
  const SourceHealthTracker* health_;
  const SloEngine* slo_;
  ResourceGovernor* governor_;
  Catalog* catalog_;

  mutable std::mutex mu_;
  double last_tick_ms_ = 0.0;
  bool ticked_once_ = false;
  int64_t next_decision_id_ = 1;
  std::deque<AdvisorDecision> log_;
  AdvisorCounters counters_;
  std::map<std::string, OwnedView> owned_;       ///< view name → state
  std::map<std::string, std::string> fp_table_;  ///< fingerprint → table
  std::set<std::string> failed_tables_;          ///< do-not-retry set
  int healthy_ticks_ = 0;
  int64_t seen_memory_sheds_ = 0;
};

}  // namespace gisql
