#include "advisor/advisor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sql/parser.h"

namespace gisql {

namespace {

/// Fixed-precision rendering so evidence/action strings are
/// byte-identical across runs (std::to_string(double) is locale-stable
/// but drags six digits of noise; decisions read better with three).
std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Latency hint assigned to breaker-open or unhealthy sources: large
/// enough that replica ranking (latency_hint * 1e9 + row_count) always
/// prefers any healthy member, finite so the source stays routable as
/// a last resort.
constexpr double kDeprioritizedHintMs = 1e6;

}  // namespace

void Advisor::Configure(const AdvisorConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
}

void Advisor::Tick(double now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!config_.enabled) return;
  if (ticked_once_ && now_ms - last_tick_ms_ < config_.interval_ms) return;
  ticked_once_ = true;
  last_tick_ms_ = now_ms;
  ++counters_.ticks;

  if (config_.materialize) {
    const double cutoff = now_ms - config_.window_ms;
    std::vector<QueryLogEntry> window;
    for (auto& e : query_log_->Snapshot()) {
      if (e.finish_ms >= cutoff && e.shed_reason.empty() &&
          !e.fingerprint.empty()) {
        window.push_back(std::move(e));
      }
    }
    RunMaterialize(now_ms, window);
  }
  if (config_.placement) RunPlacement(now_ms);
  if (config_.tune) RunTune(now_ms);
}

void Advisor::RunMaterialize(double now_ms,
                             const std::vector<QueryLogEntry>& window) {
  // Count executions per fingerprint; keep the earliest statement text
  // as the representative for table resolution (earliest-by-id makes
  // the choice replay-stable).
  struct FpStats {
    int64_t count = 0;
    int64_t first_id = 0;
    std::string sql;
  };
  std::map<std::string, FpStats> by_fp;
  for (const auto& e : window) {
    FpStats& s = by_fp[e.fingerprint];
    ++s.count;
    if (s.first_id == 0 || e.id < s.first_id) {
      s.first_id = e.id;
      s.sql = e.sql;
    }
  }

  // Views that saw traffic this window stay warm.
  std::set<std::string> used_views;
  for (auto& [fp, s] : by_fp) {
    const std::string& table = TableForFingerprint(fp, s.sql);
    if (!table.empty() && owned_.count(table)) used_views.insert(table);
  }

  // Hot templates, hottest first (count desc, fingerprint asc).
  std::vector<std::pair<std::string, const FpStats*>> hot;
  for (const auto& [fp, s] : by_fp) {
    if (s.count >= config_.hot_threshold) hot.emplace_back(fp, &s);
  }
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    if (a.second->count != b.second->count) {
      return a.second->count > b.second->count;
    }
    return a.first < b.first;
  });

  for (const auto& [fp, stats] : hot) {
    if (static_cast<int>(owned_.size()) >= config_.max_views) break;
    const std::string& table = TableForFingerprint(fp, stats->sql);
    if (table.empty()) continue;
    if (owned_.count(table)) continue;           // already ours
    if (failed_tables_.count(table)) continue;   // gave up on it
    if (catalog_->HasView(table)) continue;      // someone else's view
    if (!catalog_->HasTable(table)) continue;
    if (catalog_->TableInAnyView(table)) continue;  // promote would dangle

    auto mapping = catalog_->GetTable(table);
    if (!mapping.ok()) continue;
    const std::string owner = (*mapping)->source_name;
    const SourceHealthSnapshot owner_h = health_->SnapshotOf(owner);

    // Cheapest healthy target, never one with an open breaker. Sorted
    // source names + strict < keep ties deterministic.
    std::string target;
    double target_cost = 0.0;
    for (const auto& name : catalog_->SourceNames()) {
      if (name == owner) continue;
      if (governor_->breakers().StateOf(name) == BreakerState::kOpen) continue;
      if (health_->StateOf(name) != SourceHealthState::kHealthy) continue;
      const double cost = health_->SnapshotOf(name).ewma_ms;
      if (target.empty() || cost < target_cost) {
        target = name;
        target_cost = cost;
      }
    }
    if (target.empty()) continue;

    const double gain = owner_h.ewma_ms - target_cost;
    if (gain < config_.min_gain_ms) continue;

    const std::string evidence =
        "fingerprint=" + fp + " count=" + std::to_string(stats->count) +
        " window_ms=" + Fmt(config_.window_ms) + " owner=" + owner +
        " owner_ewma_ms=" + Fmt(owner_h.ewma_ms) + " target=" + target +
        " target_ewma_ms=" + Fmt(target_cost);
    Result<std::string> replica = host_->MaterializeReplica(table, target);
    if (replica.ok()) {
      owned_.emplace(table, OwnedView{});
      ++counters_.materializations;
      Record(now_ms, "materialize", table, evidence,
             "replicate " + table + " -> " + target + " as " + *replica +
                 "; promote " + table + " to replicated view",
             Status::OK());
    } else {
      failed_tables_.insert(table);
      Record(now_ms, "materialize", table, evidence,
             "replicate " + table + " -> " + target, replica.status());
    }
  }

  // Cold-view eviction: a view with no window traffic for cold_ticks
  // consecutive ticks goes back to a plain table.
  for (auto it = owned_.begin(); it != owned_.end();) {
    if (used_views.count(it->first)) {
      it->second.cold = 0;
      ++it;
      continue;
    }
    if (++it->second.cold < config_.cold_ticks) {
      ++it;
      continue;
    }
    const std::string view = it->first;
    const std::string evidence =
        "cold_ticks=" + std::to_string(it->second.cold) +
        " window_ms=" + Fmt(config_.window_ms);
    const Status st = host_->DemoteReplicatedView(view);
    if (st.ok()) ++counters_.evictions;
    Record(now_ms, "evict", view, evidence,
           "drop replicated view " + view + "; restore base table", st);
    it = owned_.erase(it);
  }
}

void Advisor::RunPlacement(double now_ms) {
  // Maintain catalog latency hints from observed health so replicated
  // views (the advisor's own and pre-existing ones) route to the
  // cheapest healthy replica; breaker-open and unhealthy sources sink
  // to the bottom of the ranking. Hints only retarget replica choice —
  // partitioned views still read every member.
  for (const auto& name : catalog_->SourceNames()) {
    const SourceHealthSnapshot h = health_->SnapshotOf(name);
    if (h.requests == 0) continue;  // never observed: no evidence
    const BreakerState breaker = governor_->breakers().StateOf(name);
    const bool eligible = breaker != BreakerState::kOpen &&
                          h.state == SourceHealthState::kHealthy;
    const double desired = eligible ? h.ewma_ms : kDeprioritizedHintMs;
    auto info = catalog_->GetSource(name);
    if (!info.ok()) continue;
    const double current = (*info)->latency_hint_ms;
    // Hysteresis: act only on a >25% (or >0.05 ms absolute) move, so a
    // converged EWMA stops generating decisions.
    if (std::abs(desired - current) <=
        std::max(0.25 * std::abs(current), 0.05)) {
      continue;
    }
    const std::string evidence =
        "state=" + std::string(SourceHealthStateName(h.state)) +
        " breaker=" + BreakerStateName(breaker) +
        " ewma_ms=" + Fmt(h.ewma_ms) + " p95_ms=" + Fmt(h.p95_ms);
    const Status st = catalog_->SetLatencyHint(name, desired);
    if (st.ok()) ++counters_.placements;
    Record(now_ms, "placement", name, evidence,
           "latency hint " + Fmt(current) + " -> " + Fmt(desired), st);
  }
}

void Advisor::RunTune(double now_ms) {
  // Admission watermarks: tighten while an interactive objective burns
  // its error budget (background/normal queueing backs off first),
  // relax back toward the defaults after a sustained healthy streak.
  SloStatus burning;
  bool is_burning = false;
  for (const auto& s : slo_->Snapshot()) {
    if (s.priority == 2 && s.alerting) {
      burning = s;  // copied: the snapshot dies with this loop
      is_burning = true;
      break;  // Snapshot order is deterministic; first suffices
    }
  }
  const AdmissionConfig a = governor_->admission().config();
  if (is_burning) {
    healthy_ticks_ = 0;
    const auto [bg, norm] = governor_->SetAdmissionWatermarks(
        a.watermark_background * 0.5, a.watermark_normal * 0.75);
    if (bg != a.watermark_background || norm != a.watermark_normal) {
      ++counters_.tunings;
      Record(now_ms, "tune-admission", "admission",
             "slo=" + burning.name + " fast_burn=" + Fmt(burning.fast_burn) +
                 " slow_burn=" + Fmt(burning.slow_burn) + " alerting=1",
             "watermarks " + Fmt(a.watermark_background) + "/" +
                 Fmt(a.watermark_normal) + " -> " + Fmt(bg) + "/" + Fmt(norm),
             Status::OK());
    }
  } else if (a.watermark_background < 0.5 || a.watermark_normal < 0.8) {
    if (++healthy_ticks_ >= config_.cold_ticks) {
      healthy_ticks_ = 0;
      const auto [bg, norm] = governor_->SetAdmissionWatermarks(
          std::min(0.5, a.watermark_background * 1.5),
          std::min(0.8, a.watermark_normal * 1.5));
      if (bg != a.watermark_background || norm != a.watermark_normal) {
        ++counters_.tunings;
        Record(now_ms, "tune-admission", "admission",
               "healthy_ticks=" + std::to_string(config_.cold_ticks),
               "watermarks " + Fmt(a.watermark_background) + "/" +
                   Fmt(a.watermark_normal) + " -> " + Fmt(bg) + "/" +
                   Fmt(norm),
               Status::OK());
      }
    }
  } else {
    healthy_ticks_ = 0;
  }

  // Memory: queries aborted by the per-query budget since the last
  // tick argue the cap is too tight; double it (the governor clamps to
  // its guard rails, so this converges).
  const GovernorSnapshot g = governor_->Snapshot();
  const int64_t sheds = g.shed_memory_budget - seen_memory_sheds_;
  if (sheds > 0) {
    seen_memory_sheds_ = g.shed_memory_budget;
    const int64_t applied = governor_->SetQueryMemCap(g.mem_query_cap * 2);
    if (applied != g.mem_query_cap) {
      ++counters_.tunings;
      Record(now_ms, "tune-memory", "memory",
             "shed_memory_budget_delta=" + std::to_string(sheds),
             "query_mem_cap " + std::to_string(g.mem_query_cap) + " -> " +
                 std::to_string(applied),
             Status::OK());
    }
  }
}

void Advisor::Record(double now_ms, const std::string& kind,
                     const std::string& target, const std::string& evidence,
                     const std::string& action, const Status& outcome) {
  AdvisorDecision d;
  d.id = next_decision_id_++;
  d.at_ms = now_ms;
  d.kind = kind;
  d.target = target;
  d.evidence = evidence;
  d.action = action;
  d.outcome = outcome.ok() ? "ok" : "error: " + outcome.message();
  ++counters_.decisions;
  if (!outcome.ok()) ++counters_.failures;
  log_.push_back(std::move(d));
  const size_t cap =
      config_.log_capacity > 0 ? static_cast<size_t>(config_.log_capacity) : 1;
  while (log_.size() > cap) log_.pop_front();
}

const std::string& Advisor::TableForFingerprint(const std::string& fingerprint,
                                                const std::string& sql) {
  auto it = fp_table_.find(fingerprint);
  if (it != fp_table_.end()) return it->second;
  std::string table;
  auto parsed = sql::ParseStatement(sql);
  if (parsed.ok() && parsed->kind == sql::Statement::Kind::kSelect &&
      parsed->select != nullptr && parsed->select->from != nullptr &&
      parsed->select->from->kind == sql::TableRef::Kind::kNamed &&
      parsed->select->union_all_terms.empty()) {
    table = parsed->select->from->table_name;
    // gis.* virtual tables are not materializable.
    if (table.size() >= 4 && table.compare(0, 4, "gis.") == 0) table.clear();
  }
  return fp_table_.emplace(fingerprint, std::move(table)).first->second;
}

std::vector<AdvisorDecision> Advisor::Decisions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<AdvisorDecision>(log_.begin(), log_.end());
}

std::string Advisor::LogText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& d : log_) {
    out += "#" + std::to_string(d.id) + " t=" + Fmt(d.at_ms) + " " + d.kind +
           " target=" + d.target + " evidence={" + d.evidence + "} action={" +
           d.action + "} outcome={" + d.outcome + "}\n";
  }
  return out;
}

AdvisorCounters Advisor::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace gisql
