/// \file federation_shell.cpp
/// \brief Interactive SQL shell against a pre-built retail federation.
///
/// Run it and type SQL (terminated by newline). Meta-commands:
///   \catalog            print the global schema
///   \explain <SELECT>   show the decomposed plan without executing
///   \options ship|filter|full   switch planner regime
///   \quit               exit
///
/// Works non-interactively too:
///   echo "SELECT COUNT(*) FROM sales" | ./build/examples/federation_shell

#include <iostream>
#include <string>

#include "common/string_util.h"
#include "core/global_system.h"
#include "workload/generator.h"

using namespace gisql;

int main() {
  GlobalSystem gis;
  WorkloadSpec spec;
  spec.num_sites = 3;
  spec.num_customers = 500;
  spec.num_products = 100;
  spec.orders_per_site = 5000;
  spec.site_dialects = {SourceDialect::kRelational,
                        SourceDialect::kDocument, SourceDialect::kLegacy};
  if (Status st = BuildRetailFederation(&gis, spec); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  gis.network().set_default_link({15.0, 100.0});

  std::cout << "gisql federation shell — tables: customers, products, "
               "sales (view over 3 heterogeneous sites)\n"
               "type SQL, or \\catalog, \\explain <sql>, "
               "\\options ship|filter|full, \\quit\n";

  std::string line;
  while (true) {
    std::cout << "gisql> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    const std::string input(Trim(line));
    if (input.empty()) continue;

    if (input == "\\quit" || input == "\\q") break;
    if (input == "\\catalog") {
      std::cout << gis.catalog().ToString();
      continue;
    }
    if (StartsWith(input, "\\options")) {
      const std::string mode(Trim(input.substr(8)));
      if (mode == "ship") {
        gis.set_options(PlannerOptions::ShipEverything());
      } else if (mode == "filter") {
        gis.set_options(PlannerOptions::FilterPushdownOnly());
      } else if (mode == "full") {
        gis.set_options(PlannerOptions::Full());
      } else {
        std::cout << "unknown mode '" << mode
                  << "' (want ship|filter|full)\n";
        continue;
      }
      std::cout << "planner regime: " << mode << "\n";
      continue;
    }
    if (StartsWith(input, "\\explain")) {
      auto text = gis.Explain(std::string(Trim(input.substr(8))));
      if (!text.ok()) {
        std::cout << text.status().ToString() << "\n";
      } else {
        std::cout << *text;
      }
      continue;
    }

    auto result = gis.Query(input);
    if (!result.ok()) {
      std::cout << result.status().ToString() << "\n";
      continue;
    }
    std::cout << result->batch.ToString()
              << "(" << result->metrics.elapsed_ms << " simulated ms, "
              << HumanBytes(result->metrics.bytes_received)
              << " over the wire, " << result->metrics.messages
              << " messages)\n";
  }
  std::cout << "\n";
  return 0;
}
