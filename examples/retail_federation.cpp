/// \file retail_federation.cpp
/// \brief Analytics over a partitioned retail federation: a headquarters
/// source, a product catalog source, and four branch sites holding
/// horizontal shards of the sales fact table, unified by a global view.
///
/// Demonstrates the mediator's value proposition: the same SQL runs
/// under three planner regimes (ship-everything, filter-pushdown-only,
/// full optimization) and the example prints the traffic and simulated
/// latency of each.

#include <cstdio>
#include <iostream>

#include "common/string_util.h"
#include "core/global_system.h"
#include "workload/generator.h"

using namespace gisql;

namespace {

void RunUnder(GlobalSystem& gis, const std::string& label,
              const PlannerOptions& options, const std::string& query) {
  gis.set_options(options);
  auto result = gis.Query(query);
  if (!result.ok()) {
    std::cerr << label << ": " << result.status().ToString() << "\n";
    return;
  }
  std::printf("  %-22s %10.2f ms %12s received %6lld msgs\n", label.c_str(),
              result->metrics.elapsed_ms,
              HumanBytes(result->metrics.bytes_received).c_str(),
              static_cast<long long>(result->metrics.messages));
}

}  // namespace

int main() {
  GlobalSystem gis;
  WorkloadSpec spec;
  spec.num_sites = 4;
  spec.num_customers = 2000;
  spec.num_products = 300;
  spec.orders_per_site = 20000;
  spec.zipf_theta = 0.5;
  if (Status st = BuildRetailFederation(&gis, spec); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  gis.network().set_default_link({20.0, 50.0});  // WAN-ish: 20ms, 50 Mbps

  std::cout << "Global schema:\n" << gis.catalog().ToString() << "\n";

  const struct {
    const char* title;
    const char* sql;
  } queries[] = {
      {"Q1: revenue by region",
       "SELECT c.region, SUM(s.amount) AS revenue, COUNT(*) AS n "
       "FROM sales s JOIN customers c ON s.cid = c.cid "
       "GROUP BY c.region ORDER BY revenue DESC"},
      {"Q2: top products",
       "SELECT p.pname, SUM(s.qty) AS units "
       "FROM sales s JOIN products p ON s.pid = p.pid "
       "WHERE p.category = 'cat3' "
       "GROUP BY p.pname ORDER BY units DESC LIMIT 10"},
      {"Q3: big-ticket orders",
       "SELECT s.sid, s.amount FROM sales s "
       "WHERE s.amount > 900 ORDER BY s.amount DESC LIMIT 20"},
      {"Q4: average basket by segment",
       "SELECT c.segment, AVG(s.amount) AS avg_amount "
       "FROM sales s JOIN customers c ON s.cid = c.cid "
       "GROUP BY c.segment ORDER BY c.segment"},
  };

  for (const auto& q : queries) {
    std::cout << "==== " << q.title << "\n";
    gis.set_options(PlannerOptions::Full());
    auto result = gis.Query(q.sql);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << result->batch.ToString(8) << "\n";
    RunUnder(gis, "ship-everything", PlannerOptions::ShipEverything(),
             q.sql);
    RunUnder(gis, "filter-pushdown", PlannerOptions::FilterPushdownOnly(),
             q.sql);
    RunUnder(gis, "full optimizer", PlannerOptions::Full(), q.sql);
    std::cout << "\n";
  }

  gis.set_options(PlannerOptions::Full());
  std::cout << "==== plan for Q1\n" << *gis.Explain(queries[0].sql) << "\n";
  return 0;
}
