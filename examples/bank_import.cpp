/// \file bank_import.cpp
/// \brief Operational tooling demo: bulk-load CSV files into an
/// autonomous bank source, query the federation, snapshot the source to
/// disk, and restore it into a fresh system.
///
/// Run from the repository root (the CSV paths are relative):
///   ./build/examples/bank_import

#include <cstdio>
#include <iostream>

#include "core/global_system.h"
#include "workload/csv.h"

using namespace gisql;

namespace {

Status RunDemo(const std::string& data_dir) {
  GlobalSystem gis;
  GISQL_ASSIGN_OR_RETURN(
      ComponentSource * bank,
      gis.CreateSource("bank", SourceDialect::kRelational));

  // 1. DDL + CSV bulk load (dates and quoted cells included).
  GISQL_RETURN_NOT_OK(bank->ExecuteLocalSql(
      "CREATE TABLE branches (branch_id bigint, city varchar, "
      "opened date, manager varchar)"));
  GISQL_RETURN_NOT_OK(bank->ExecuteLocalSql(
      "CREATE TABLE accounts (acct_id bigint, branch_id bigint, "
      "owner varchar, balance double, frozen boolean)"));
  GISQL_ASSIGN_OR_RETURN(
      int64_t nb, LoadCsvFile(bank, "branches", data_dir + "/branches.csv"));
  GISQL_ASSIGN_OR_RETURN(
      int64_t na, LoadCsvFile(bank, "accounts", data_dir + "/accounts.csv"));
  std::cout << "loaded " << nb << " branches, " << na << " accounts\n\n";

  GISQL_RETURN_NOT_OK(gis.ImportSource("bank"));

  // 2. Federated analytics over the loaded data.
  GISQL_ASSIGN_OR_RETURN(
      QueryResult by_city,
      gis.Query("SELECT b.city, COUNT(*) AS accounts, "
                "SUM(a.balance) AS total "
                "FROM accounts a JOIN branches b "
                "ON a.branch_id = b.branch_id "
                "WHERE NOT a.frozen "
                "GROUP BY b.city ORDER BY total DESC"));
  std::cout << "Unfrozen balances by city:\n"
            << by_city.batch.ToString() << "\n";

  GISQL_ASSIGN_OR_RETURN(
      QueryResult vintage,
      gis.Query("SELECT city, YEAR(opened) AS since FROM branches "
                "WHERE opened < DATE '1988-01-01' ORDER BY opened"));
  std::cout << "Branches opened before 1988:\n"
            << vintage.batch.ToString() << "\n";

  // 3. Snapshot the autonomous source and restore it elsewhere.
  const std::string snapshot = data_dir + "/bank.snapshot";
  GISQL_RETURN_NOT_OK(bank->SaveSnapshot(snapshot));
  std::cout << "snapshot written to " << snapshot << "\n";

  GlobalSystem restored_gis;
  GISQL_ASSIGN_OR_RETURN(
      ComponentSource * restored,
      restored_gis.CreateSource("bank_dr", SourceDialect::kRelational));
  GISQL_RETURN_NOT_OK(restored->LoadSnapshot(snapshot));
  GISQL_RETURN_NOT_OK(restored_gis.ImportSource("bank_dr"));
  GISQL_ASSIGN_OR_RETURN(
      QueryResult check,
      restored_gis.Query("SELECT COUNT(*) FROM accounts"));
  std::cout << "restored system sees "
            << check.batch.rows()[0][0].ToString() << " accounts\n";
  std::remove(snapshot.c_str());
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string data_dir = argc > 1 ? argv[1] : "examples/data";
  if (Status st = RunDemo(data_dir); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    std::cerr << "hint: run from the repository root, or pass the data "
                 "directory as the first argument\n";
    return 1;
  }
  return 0;
}
