/// \file hospital_network.cpp
/// \brief Heterogeneity showcase: a hospital network integrating four
/// *different kinds* of information systems under one global schema —
/// the core scenario of the 1989 Global Information Systems vision.
///
///   ehr      RELATIONAL  patients(pid, name, ward, age)
///   lab      LEGACY      results(rid, pid, test, value)  — scan-only
///   archive  DOCUMENT    notes(nid, pid, author, body)   — filter+project
///   devices  KEYVALUE    readings(pid, heart_rate, spo2) — key lookups
///
/// The same SQL works against every dialect; EXPLAIN shows where the
/// mediator compensated for missing capabilities.

#include <iostream>

#include "core/global_system.h"

using namespace gisql;

namespace {

Status Build(GlobalSystem& gis) {
  GISQL_ASSIGN_OR_RETURN(ComponentSource * ehr,
                         gis.CreateSource("ehr", SourceDialect::kRelational));
  GISQL_RETURN_NOT_OK(ehr->ExecuteLocalSql(
      "CREATE TABLE patients (pid bigint, name varchar, ward varchar, "
      "age bigint)"));
  GISQL_RETURN_NOT_OK(ehr->ExecuteLocalSql(
      "INSERT INTO patients VALUES "
      "(1, 'Rivera', 'cardiology', 71), (2, 'Chen', 'oncology', 58), "
      "(3, 'Okafor', 'cardiology', 64), (4, 'Schmidt', 'neurology', 47), "
      "(5, 'Dubois', 'cardiology', 82)"));

  GISQL_ASSIGN_OR_RETURN(ComponentSource * lab,
                         gis.CreateSource("lab", SourceDialect::kLegacy));
  GISQL_RETURN_NOT_OK(lab->ExecuteLocalSql(
      "CREATE TABLE results (rid bigint, pid bigint, test varchar, "
      "value double)"));
  GISQL_RETURN_NOT_OK(lab->ExecuteLocalSql(
      "INSERT INTO results VALUES "
      "(10, 1, 'troponin', 0.32), (11, 1, 'bnp', 410.0), "
      "(12, 3, 'troponin', 0.07), (13, 5, 'troponin', 0.55), "
      "(14, 2, 'cbc', 4.1), (15, 4, 'mri_score', 2.0)"));

  GISQL_ASSIGN_OR_RETURN(
      ComponentSource * archive,
      gis.CreateSource("archive", SourceDialect::kDocument));
  GISQL_RETURN_NOT_OK(archive->ExecuteLocalSql(
      "CREATE TABLE notes (nid bigint, pid bigint, author varchar, "
      "body varchar)"));
  GISQL_RETURN_NOT_OK(archive->ExecuteLocalSql(
      "INSERT INTO notes VALUES "
      "(100, 1, 'dr_patel', 'elevated troponin, monitor closely'), "
      "(101, 5, 'dr_patel', 'chest pain on admission'), "
      "(102, 3, 'dr_kim', 'routine follow-up, stable')"));

  GISQL_ASSIGN_OR_RETURN(
      ComponentSource * devices,
      gis.CreateSource("devices", SourceDialect::kKeyValue));
  GISQL_RETURN_NOT_OK(devices->ExecuteLocalSql(
      "CREATE TABLE readings (pid bigint, heart_rate bigint, spo2 bigint)"));
  GISQL_RETURN_NOT_OK(devices->ExecuteLocalSql(
      "INSERT INTO readings VALUES (1, 96, 93), (2, 74, 98), (3, 68, 97), "
      "(4, 81, 99), (5, 104, 91)"));

  for (const char* s : {"ehr", "lab", "archive", "devices"}) {
    GISQL_RETURN_NOT_OK(gis.ImportSource(s));
  }
  return Status::OK();
}

}  // namespace

int main() {
  GlobalSystem gis;
  if (Status st = Build(gis); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "Integrated hospital schema:\n"
            << gis.catalog().ToString() << "\n";

  // Cross-system clinical question: cardiology patients with an elevated
  // troponin result, their latest vitals, and who wrote about them.
  const std::string query =
      "SELECT p.name, r.value AS troponin, d.heart_rate, n.author "
      "FROM patients p "
      "JOIN results r ON p.pid = r.pid "
      "JOIN readings d ON p.pid = d.pid "
      "LEFT JOIN notes n ON p.pid = n.pid "
      "WHERE p.ward = 'cardiology' AND r.test = 'troponin' "
      "  AND r.value > 0.1 "
      "ORDER BY r.value DESC";

  auto result = gis.Query(query);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "High-troponin cardiology patients:\n"
            << result->batch.ToString() << "\n";

  std::cout << "How the mediator decomposed it (note: the LEGACY lab "
               "source gets a bare scan\nand its filter runs at the "
               "mediator; the KEYVALUE device store is reduced by a\n"
               "key semijoin; the DOCUMENT archive accepted its filter):\n\n"
            << *gis.Explain(query);

  // A ward-level aggregate: pushdown happens only where supported.
  const std::string agg =
      "SELECT p.ward, COUNT(*) AS patients, AVG(d.heart_rate) AS avg_hr "
      "FROM patients p JOIN readings d ON p.pid = d.pid "
      "GROUP BY p.ward ORDER BY p.ward";
  auto agg_result = gis.Query(agg);
  if (!agg_result.ok()) {
    std::cerr << agg_result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nWard vitals summary:\n" << agg_result->batch.ToString();
  return 0;
}
