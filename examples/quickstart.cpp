/// \file quickstart.cpp
/// \brief Smallest possible gisql program: two autonomous sources, one
/// global schema, one federated query.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart

#include <iostream>

#include "core/global_system.h"

using namespace gisql;

int main() {
  // The GlobalSystem hosts the simulated network, the mediator, and the
  // component information systems.
  GlobalSystem gis;

  // 1. Create two autonomous sources. Each owns its private storage;
  //    the mediator can only talk to them over the wire protocol.
  auto hq = *gis.CreateSource("hq", SourceDialect::kRelational);
  auto warehouse = *gis.CreateSource("warehouse", SourceDialect::kDocument);

  // 2. Populate them locally (DDL/DML is a source-local privilege).
  for (const char* sql : {
           "CREATE TABLE customers (cid bigint, name varchar, city varchar)",
           "INSERT INTO customers VALUES (1, 'Ada', 'London'), "
           "(2, 'Grace', 'New York'), (3, 'Edsger', 'Austin')",
       }) {
    if (Status st = hq->ExecuteLocalSql(sql); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }
  for (const char* sql : {
           "CREATE TABLE shipments (sid bigint, cid bigint, weight double)",
           "INSERT INTO shipments VALUES (100, 1, 3.5), (101, 1, 1.25), "
           "(102, 3, 9.75), (103, 2, 0.5)",
       }) {
    if (Status st = warehouse->ExecuteLocalSql(sql); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }

  // 3. Import their export schemas into the global catalog.
  if (Status st = gis.ImportSource("hq"); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (Status st = gis.ImportSource("warehouse"); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << gis.catalog().ToString() << "\n";

  // 4. One SQL statement spanning both organizations.
  const std::string query =
      "SELECT c.name, SUM(s.weight) AS total_weight "
      "FROM customers c JOIN shipments s ON c.cid = s.cid "
      "GROUP BY c.name ORDER BY total_weight DESC";

  auto explain = gis.Explain(query);
  std::cout << "Plan:\n" << *explain << "\n";

  auto result = gis.Query(query);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << result->batch.ToString();
  std::cout << "\nsimulated latency: " << result->metrics.elapsed_ms
            << " ms, bytes over the wire: "
            << result->metrics.bytes_received << ", messages: "
            << result->metrics.messages << "\n";
  return 0;
}
